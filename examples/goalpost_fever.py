"""The paper's running example: goal-post fever (Sections 2 and 4.4).

Run:  python examples/goalpost_fever.py

Reproduces the argument of Figures 3-5 head to head:

* a value-based epsilon band accepts a pointwise-fluctuated copy of the
  exemplar but rejects every feature-preserving transformation;
* the divide-and-conquer representation classifies all transformed
  variants as *exact* matches of the two-peak pattern, because the
  pattern constrains behaviour, not values.
"""

from __future__ import annotations

from repro import InterpolationBreaker, PatternQuery, SequenceDatabase
from repro.baselines.euclidean import EpsilonMatcher
from repro.baselines.shift_scale import ShiftScaleMatcher
from repro.workloads import figure3_sequence, figure4_fluctuated, figure5_variants

GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"


def main() -> None:
    exemplar = figure3_sequence()
    fluctuated = figure4_fluctuated(delta=1.0)
    variants = figure5_variants(exemplar)

    print("candidate sequences:")
    print(f"  figure-4 copy: exemplar + pointwise noise within +/-1")
    for label, transform, __ in variants:
        print(f"  {label:<18} {transform!r}")

    # --- the old notion: values within an epsilon band ----------------
    value_matcher = EpsilonMatcher(exemplar, epsilon=1.0, align="time")
    shift_scale = ShiftScaleMatcher(exemplar, epsilon=0.25)

    print("\nvalue-based epsilon matching (Figure 1 notion, eps=1):")
    print(f"  figure-4 noisy copy : {'MATCH' if value_matcher.matches(fluctuated) else 'reject'}")
    for label, __, variant in variants:
        verdict = "MATCH" if value_matcher.matches(variant) else "reject"
        print(f"  {label:<18}: {verdict}")

    print("\nshift/scale-normalized matching ([GK95]/[ALSS95] notion):")
    for label, __, variant in variants:
        verdict = "MATCH" if shift_scale.matches(variant) else "reject"
        print(f"  {label:<18}: {verdict}")

    # --- the paper's notion: behaviour patterns -----------------------
    db = SequenceDatabase(breaker=InterpolationBreaker(epsilon=0.5))
    db.insert(exemplar.with_name("exemplar"))
    db.insert(fluctuated.with_name("figure-4-noisy"))
    for label, __, variant in variants:
        db.insert(variant)

    print(f"\ngeneralized approximate query {GOALPOST!r}:")
    matched = {m.name for m in db.query(PatternQuery(GOALPOST))}
    for sequence_id in db.ids():
        name = db.name_of(sequence_id)
        symbols = db.behavior_index.symbols_of(sequence_id)
        verdict = "EXACT MATCH" if name in matched else "reject"
        print(f"  {name:<18} symbols={symbols:<12} {verdict}")

    print(
        "\nevery feature-preserving transform is an exact member of the"
        "\nquery's equivalence class, while none survives value matching —"
        "\nthe paper's Figures 3-5 in one table."
    )


if __name__ == "__main__":
    main()
