"""Exemplar queries and the textual query language.

Run:  python examples/shape_and_language_queries.py

Paper Section 2.2: "the query can be an exemplar or an expression
denoting a pattern."  This example drives both: a ShapeQuery built from
an exemplar sequence (drawn, measured, or pulled from the database) and
the same questions phrased in the textual query language of
`repro.query.language`.
"""

from __future__ import annotations

from repro import InterpolationBreaker, SequenceDatabase, ShapeQuery, parse_query
from repro.core.transformations import AmplitudeScale, Compose, TimeScale, TimeShift
from repro.workloads import goalpost_fever, k_peak_sequence


def main() -> None:
    db = SequenceDatabase(breaker=InterpolationBreaker(0.1), theta=0.0, normalize=True)

    base = goalpost_fever(noise=0.0, name="patient-a")
    db.insert(base)
    db.insert(TimeShift(6.0)(base).with_name("patient-b (shifted)"))
    db.insert(TimeScale(2.0)(base).with_name("patient-c (dilated)"))
    db.insert(
        Compose([TimeScale(0.5), AmplitudeScale(2.2, baseline=98.0)])(base).with_name(
            "patient-d (contracted+scaled)"
        )
    )
    db.insert(k_peak_sequence([12.0], noise=0.0, name="patient-e (one spike)"))
    db.insert(k_peak_sequence([4.0, 12.0, 20.0], noise=0.0, name="patient-f (three spikes)"))

    # --- query by exemplar --------------------------------------------
    exemplar = goalpost_fever(noise=0.0)  # "a fever curve that looks like this"
    query = ShapeQuery(exemplar, duration_tolerance=0.05, amplitude_tolerance=0.05)
    print("exemplar query (two-peak fever curve, any shift/scale/tempo):")
    for match in db.query(query):
        dur = match.deviation_in("shape_duration").amount
        print(f"  {match.name:<30} {match.grade.value:<12} duration dev {dur:.4f}")

    # --- the same questions in the textual language --------------------
    print("\ntextual query language:")
    for text in (
        "PATTERN '(0|-)* + (0|-)^+ + (0|-)*'",
        "PEAKS 2 TOLERANCE 1",
        "INTERVAL 12 +/- 2",
        "SHAPE OF 0 DURATION 0.05 AMPLITUDE 0.05",
    ):
        matches = db.query(parse_query(text, db))
        names = [m.name for m in matches]
        print(f"  {text}")
        print(f"    -> {len(matches)} matches: {names[:4]}{' ...' if len(names) > 4 else ''}")


if __name__ == "__main__":
    main()
