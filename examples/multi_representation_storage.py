"""Storage economics: archive tier, local tier, multiple representations.

Run:  python examples/multi_representation_storage.py

Quantifies the paper's storage argument (Sections 1, 3 and 5.2): raw
sequences live on slow archival media, compact function-series
representations live locally, and the representation is cheap enough to
keep several variants per sequence tuned to different query classes.
"""

from __future__ import annotations

from repro import InterpolationBreaker, SequenceDatabase
from repro.segmentation import BezierBreaker
from repro.storage import RepresentationCatalog, representation_size_bytes, raw_size_bytes
from repro.workloads import ecg_corpus


def main() -> None:
    corpus = ecg_corpus(n_sequences=40, seed=23)

    db = SequenceDatabase(breaker=InterpolationBreaker(epsilon=10.0), theta=5.0)
    db.insert_all(corpus)
    report = db.storage_report()

    print(f"{report['sequences']} ECGs, {report['total_points']} samples total")
    print(f"  archive (raw)        : {report['raw_bytes']:>9} bytes")
    print(f"  local (line series)  : {report['representation_bytes']:>9} bytes "
          f"({report['byte_compression']:.2f}x smaller)")
    print(f"  paper convention     : {report['paper_convention_compression']:.1f}x "
          f"(3 scalars per segment vs 1 per sample)")

    # Cost of touching raw data vs representations.
    db.raw_sequence(0)
    db.local_store.retrieve(0)
    print(f"\nsimulated access cost: archive read "
          f"{db.archive.log.simulated_seconds:.1f} s vs local read "
          f"{db.local_store.log.simulated_seconds:.4f} s")

    # Multiple representations per sequence (Section 5.2): a coarse
    # eps=25 variant for fast peak queries, a Bezier variant for
    # graphics-flavoured shape queries.
    catalog = RepresentationCatalog()
    coarse_breaker = InterpolationBreaker(25.0)
    bezier_breaker = BezierBreaker(25.0)
    for sequence_id in db.ids()[:10]:
        raw = db.raw_sequence(sequence_id)
        catalog.put(sequence_id, "fine-eps10", db.representation_of(sequence_id))
        catalog.put(sequence_id, "coarse-eps25", coarse_breaker.represent(raw))
        catalog.put(sequence_id, "bezier-eps25", bezier_breaker.represent(raw, curve_kind="bezier"))

    print("\nmultiple representations per sequence (first 10 ECGs):")
    for variant in ("fine-eps10", "coarse-eps25", "bezier-eps25"):
        total = catalog.total_bytes(variant)
        print(f"  {variant:<13} {total:>8} bytes across {len(catalog.sequences_with(variant))} sequences")
    one_raw = raw_size_bytes(corpus[0])
    for variant in catalog.variants_of(0):
        size = representation_size_bytes(catalog.get(0, variant))
        print(f"\n  one ECG, {variant:<13}: {size:>6} bytes ({one_raw / size:.1f}x smaller than its {one_raw}-byte raw form)"
              if variant == "fine-eps10" else
              f"  one ECG, {variant:<13}: {size:>6} bytes")
    print("\neach representation is a fraction of the raw size and lives on the"
          "\nfast local tier; the raw ECG stays archived for finer resolution.")


if __name__ == "__main__":
    main()
