"""Quickstart: store sequences as function series and query by shape.

Run:  python examples/quickstart.py

Walks the paper's core loop end to end on a synthetic corpus:
ingest -> break -> represent -> index -> generalized approximate query.
"""

from __future__ import annotations

from repro import (
    InterpolationBreaker,
    IntervalQuery,
    PatternQuery,
    PeakCountQuery,
    SequenceDatabase,
)
from repro.workloads import fever_corpus

GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"  # the paper's two-peak pattern


def main() -> None:
    # A database configured like the paper's system: break sequences at
    # extrema with the interpolation algorithm (tolerance 0.5 degrees),
    # represent each segment by its regression line.
    db = SequenceDatabase(breaker=InterpolationBreaker(epsilon=0.5))

    corpus = fever_corpus(n_two_peak=8, n_one_peak=5, n_three_peak=5)
    db.insert_all(corpus)
    print(f"ingested {len(db)} temperature logs "
          f"({db.storage_report()['total_segments']} stored line segments)\n")

    # 1. The goal-post fever query as a pattern over slope signs.
    print(f"pattern query {GOALPOST!r}:")
    for match in db.query(PatternQuery(GOALPOST)):
        print(f"  {match.name:<14} {match.grade.value}")

    # 2. The same medical question as an explicit feature query, with an
    #    approximation dimension: allow a deviation of one peak.
    print("\npeak-count query (2 peaks, tolerance 1):")
    for match in db.query(PeakCountQuery(2, count_tolerance=1)):
        deviation = match.deviation_in("peak_count")
        print(f"  {match.name:<14} {match.grade.value:<12} off by {deviation.amount:g}")

    # 3. Time between the fever spikes: an interval query served by the
    #    inverted-file index (B-tree -> posting buckets).
    print("\ninterval query (12 +/- 2 hours between peaks):")
    for match in db.query(IntervalQuery(12.0, 2.0)):
        deviation = match.deviation_in("rr_interval")
        print(f"  {match.name:<14} {match.grade.value:<12} nearest interval off by {deviation.amount:.2f} h")

    # 4. Peek at one stored representation.
    rep = db.representation_of(0)
    print(f"\nrepresentation of {db.name_of(0)!r}: {len(rep)} segments, "
          f"symbols {rep.symbol_string(db.theta)!r}, "
          f"paper-convention compression {rep.compression_ratio():.1f}x")
    for segment in rep:
        print(f"  {segment.describe()}")

    # 5. Raw data stays archived for finer resolution — at a price.
    db.raw_sequence(0)
    print(f"\nsimulated archive latency paid so far: "
          f"{db.archive.log.simulated_seconds:.1f} s "
          f"(vs {db.local_store.log.simulated_seconds:.3f} s on the local tier)")


if __name__ == "__main__":
    main()
