"""A tour of every breaking algorithm on the same data.

Run:  python examples/breaking_algorithms_tour.py

Compares the offline template instantiations (interpolation, regression,
Bezier), the dynamic-programming optimum, and the online sliding-window
family on one noisy two-peak sequence — segment counts, fragmentation,
fidelity and the paper's qualitative ranking.
"""

from __future__ import annotations

import time

from repro import (
    BezierBreaker,
    DynamicProgrammingBreaker,
    InterpolationBreaker,
    RegressionBreaker,
    SlidingWindowBreaker,
)
from repro.segmentation import fragmentation_ratio
from repro.workloads import goalpost_fever, seismic_sequence, stock_sequence


def describe(name, breaker, sequence, represent_kind="regression"):
    start = time.perf_counter()
    boundaries = breaker.break_indices(sequence)
    elapsed_ms = (time.perf_counter() - start) * 1e3
    rep = breaker.represent(sequence, curve_kind=represent_kind)
    error = rep.reconstruction_error(sequence)
    print(
        f"  {name:<22} segments={len(boundaries):<4} "
        f"frag={fragmentation_ratio(boundaries):<5.2f} "
        f"max_err={error:<7.3f} time={elapsed_ms:7.2f} ms"
    )
    return rep


def main() -> None:
    fever = goalpost_fever(noise=0.3, seed=5)
    print(f"two-peak fever curve, n={len(fever)}, breaker tolerance 0.5:")
    describe("interpolation (paper)", InterpolationBreaker(0.5), fever)
    describe("regression", RegressionBreaker(0.5), fever)
    describe("bezier (Schneider)", BezierBreaker(0.5), fever, represent_kind="bezier")
    describe("dynamic programming", DynamicProgrammingBreaker(0.5, 2.0), fever)
    describe("online sliding window", SlidingWindowBreaker(0.5, window=8), fever)

    # Online streaming mode: feed one sample at a time.
    print("\nstreaming session (online breaker) on a stock series:")
    stock = stock_sequence(n_points=120, seed=3)
    session = SlidingWindowBreaker(1.5, window=10).session()
    closed = 0
    for t, v in stock:
        if session.feed(t, v):
            closed += 1
    boundaries = session.finish()
    print(f"  {closed} segments closed mid-stream, {len(boundaries)} total after finish()")

    # A longer seismic trace: where the O(peaks * n) vs O(n^2) gap shows.
    seismic, events = seismic_sequence(n_points=3000, event_positions=[1200], seed=8)
    print(f"\nseismic trace, n={len(seismic)} (one burst at 1200):")
    describe("interpolation (paper)", InterpolationBreaker(3.0), seismic)
    describe("online sliding window", SlidingWindowBreaker(3.0, window=12), seismic)
    print("  (dynamic programming at this length is the benchmark suite's job)")


if __name__ == "__main__":
    main()
