"""Cardiology workload: ECG breaking, peak tables, and R-R queries.

Run:  python examples/ecg_rr_intervals.py

Reproduces the paper's Section 5.2 pipeline on synthetic ECGs:
break 500-point ECG segments at tolerance 10, derive the per-peak table
(the paper's Table 1), extract R-R interval sequences, and answer
"find all ECGs with R-R intervals of length n +/- delta" through the
inverted-file index of Figure 10.
"""

from __future__ import annotations

from repro import InterpolationBreaker, IntervalQuery, SequenceDatabase
from repro.workloads import ecg_corpus, figure9_pair


def main() -> None:
    db = SequenceDatabase(breaker=InterpolationBreaker(epsilon=10.0), theta=5.0)

    top, bottom = figure9_pair()
    top_id = db.insert(top)
    bottom_id = db.insert(bottom)
    db.insert_all(ecg_corpus(n_sequences=60, seed=19))
    print(f"ingested {len(db)} ECG segments of 500 points each\n")

    # --- Figure 9: breaking ------------------------------------------
    for sequence_id in (top_id, bottom_id):
        rep = db.representation_of(sequence_id)
        print(f"{db.name_of(sequence_id)}: {len(rep)} segments at eps=10, "
              f"compression {rep.compression_ratio():.1f}x (paper convention)")

    # --- Table 1: peaks information -----------------------------------
    print(f"\npeaks information for {db.name_of(top_id)} (paper Table 1):")
    header = f"{'Rising Function':>16}  {'RStart':>14} {'REnd':>14}  {'Descending Fn':>16}  {'DStart':>14} {'DEnd':>14}"
    print(header)
    for row in db.peak_table_of(top_id):
        print(row.format())

    # --- R-R interval sequences ---------------------------------------
    print("\nR-R interval sequences (distances between successive peaks):")
    for sequence_id in (top_id, bottom_id):
        intervals = db.rr_intervals_of(sequence_id)
        print(f"  {db.name_of(sequence_id):<12} {[int(v) for v in intervals]}")

    # --- Figure 10: the inverted-file query ---------------------------
    target, delta = 135.0, 5.0
    print(f"\nquery: ECGs with some R-R interval in {target:g} +/- {delta:g} samples")
    matches = db.query(IntervalQuery(target, delta))
    print(f"  via B-tree + postings: {[m.name for m in matches][:8]}"
          f"{' ...' if len(matches) > 8 else ''}  ({len(matches)} total)")
    scan = db.scan_rr(target, delta)
    print(f"  via linear scan      : {len(scan)} sequences (identical: {sorted(m.sequence_id for m in matches) == scan})")

    report = db.storage_report()
    print(f"\nstorage: {report['total_points']} raw points -> "
          f"{report['total_segments']} segments; "
          f"byte compression {report['byte_compression']:.2f}x, "
          f"paper-convention {report['paper_convention_compression']:.1f}x")


if __name__ == "__main__":
    main()
