"""Core data model: sequences, segments, representations, features.

This package holds the paper's primary contribution — the
divide-and-conquer representation of sequences as series of fitted
functions, with features, transformations and tolerances layered on
top.
"""

from repro.core.errors import (
    FittingError,
    IndexError_,
    PatternSyntaxError,
    QueryError,
    ReproError,
    SegmentationError,
    SequenceError,
    StorageError,
    TransformationError,
)
from repro.core.features import (
    Peak,
    PeakTableRow,
    count_peaks,
    count_peaks_in_symbols,
    find_peaks,
    peak_table,
    raw_peak_indices,
    rr_intervals,
)
from repro.core.representation import FunctionSeriesRepresentation
from repro.core.segment import Segment
from repro.core.sequence import Sequence
from repro.core.shape import ShapeSignature, shape_signature
from repro.core.tolerance import DimensionDeviation, MatchGrade, Tolerance, grade_deviations
from repro.core.transformations import (
    AmplitudeScale,
    AmplitudeShift,
    BoundedNoise,
    Compose,
    TimeScale,
    TimeShift,
    Transformation,
    contraction,
    dilation,
)

__all__ = [
    "Sequence",
    "Segment",
    "FunctionSeriesRepresentation",
    "ShapeSignature",
    "shape_signature",
    "Peak",
    "PeakTableRow",
    "find_peaks",
    "count_peaks",
    "count_peaks_in_symbols",
    "peak_table",
    "rr_intervals",
    "raw_peak_indices",
    "Transformation",
    "TimeShift",
    "AmplitudeShift",
    "AmplitudeScale",
    "TimeScale",
    "dilation",
    "contraction",
    "BoundedNoise",
    "Compose",
    "MatchGrade",
    "Tolerance",
    "DimensionDeviation",
    "grade_deviations",
    "ReproError",
    "SequenceError",
    "FittingError",
    "SegmentationError",
    "PatternSyntaxError",
    "QueryError",
    "IndexError_",
    "StorageError",
    "TransformationError",
]
