"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so that callers can
catch every library-specific failure with a single ``except`` clause
while letting genuine programming errors (``TypeError`` and friends)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class SequenceError(ReproError):
    """Raised for malformed sequences (empty, unordered, NaN values)."""


class FittingError(ReproError):
    """Raised when a function cannot be fitted to a subsequence."""


class SegmentationError(ReproError):
    """Raised when a breaking algorithm cannot segment a sequence."""


class PatternSyntaxError(ReproError):
    """Raised for malformed pattern expressions over the slope alphabet."""


class QueryError(ReproError):
    """Raised for ill-specified queries (unknown dimension, bad tolerance)."""


class IndexError_(ReproError):
    """Raised for index integrity violations (duplicate keys where unique
    keys are required, lookups on a closed index, etc.).

    Named with a trailing underscore to avoid shadowing the built-in
    ``IndexError``.
    """


class StorageError(ReproError):
    """Raised by the archival store and the serialization codec."""


class EngineError(ReproError):
    """Raised by the execution engine for columnar-store integrity
    violations (unknown sequence ids, offset-table corruption)."""


class TransformationError(ReproError):
    """Raised when a transformation receives parameters outside its domain
    (for example a non-positive dilation factor)."""
