"""Feature extraction from function-series representations.

The representation is "centered around features of interest" so that
queries can address features directly (paper Section 4.1).  For the
medical domains of the paper the features are *peaks* and the derived
*R-R intervals*; this module extracts them from representations the way
Section 5.2 prescribes:

* a peak is a rising segment followed by a descending segment;
* the peak's position is whichever of the rising segment's end point
  (``REnd``) or the descending segment's start point (``DStart``) has
  the larger amplitude (the two can differ because the breakpoint
  belongs to exactly one side);
* per-sequence peak tables reproduce the paper's Table 1 and R-R
  interval sequences are first differences of the peak times.

A raw-data peak finder with a prominence threshold is included so tests
can validate the representation-level extraction against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import SequenceError
from repro.core.representation import (
    FunctionSeriesRepresentation,
    classify_slopes,
    run_start_mask,
)
from repro.core.segment import Segment
from repro.core.sequence import Sequence

__all__ = [
    "Peak",
    "PeakTableRow",
    "find_peaks",
    "find_peaks_many",
    "count_peaks",
    "count_peaks_in_symbols",
    "peak_table",
    "rr_intervals",
    "raw_peak_indices",
]


@dataclass(frozen=True)
class Peak:
    """A detected peak: the rise/fall segment pair plus its apex."""

    rising: Segment
    descending: Segment
    time: float
    amplitude: float


@dataclass(frozen=True)
class PeakTableRow:
    """One row of the paper's Table 1."""

    rising_equation: str
    rise_start: tuple[float, float]
    rise_end: tuple[float, float]
    descending_equation: str
    descent_start: tuple[float, float]
    descent_end: tuple[float, float]

    def format(self) -> str:
        def point(p: tuple[float, float]) -> str:
            return f"({p[0]:.0f}, {p[1]:.1f})"

        return (
            f"{self.rising_equation:>16}  {point(self.rise_start):>14} {point(self.rise_end):>14}  "
            f"{self.descending_equation:>16}  {point(self.descent_start):>14} {point(self.descent_end):>14}"
        )


def _segment_label(segment: Segment) -> str:
    formatter = getattr(segment.function, "format_equation", None)
    if callable(formatter):
        return formatter()
    return repr(segment.function)


def find_peaks(
    representation: FunctionSeriesRepresentation,
    theta: float = 0.0,
    skip_flats: bool = True,
) -> list[Peak]:
    """Peaks of a representation: rising segment then descending segment.

    Parameters
    ----------
    theta:
        Flatness threshold for the slope-sign classification; slopes in
        ``[-theta, theta]`` count as flat.
    skip_flats:
        When true, flat segments between a rise and the following fall
        do not break the peak (a temperature plateau at the top of a
        fever spike is still one peak); the apex is then taken from the
        rise end / fall start as usual.
    """
    peaks: list[Peak] = []
    segments = representation.segments
    i = 0
    while i < len(segments):
        if not segments[i].is_rising(theta):
            i += 1
            continue
        # Coalesce consecutive rising segments into one logical rise.
        rise_idx = i
        while rise_idx + 1 < len(segments) and segments[rise_idx + 1].is_rising(theta):
            rise_idx += 1
        j = rise_idx + 1
        if skip_flats:
            while j < len(segments) and segments[j].is_flat(theta):
                j += 1
        if j < len(segments) and segments[j].is_falling(theta):
            rising = segments[rise_idx]
            descending = segments[j]
            # Paper step 3: the apex is the higher of REnd and DStart.
            if rising.end_point[1] >= descending.start_point[1]:
                time, amplitude = rising.end_point
            else:
                time, amplitude = descending.start_point
            peaks.append(Peak(rising=rising, descending=descending, time=time, amplitude=amplitude))
            i = j
        else:
            i = rise_idx + 1
    return peaks


def find_peaks_many(
    representations: "list[FunctionSeriesRepresentation]",
    theta: float = 0.0,
    skip_flats: bool = True,
    codes: "np.ndarray | None" = None,
) -> "list[tuple[np.ndarray, np.ndarray]]":
    """Apex ``(times, amplitudes)`` of every peak, for a whole batch.

    The columnar twin of :func:`find_peaks`, built for bulk ingest: the
    batch's ``segment_columns`` are stacked, classified once with
    :func:`classify_slopes` and collapsed into behavioural runs with the
    shared :func:`run_start_mask` kernel (sequence boundaries always
    open a run), and the peak rule is evaluated as array predicates over
    the run columns — a ``'+'`` run peaks when the next run is ``'-'``,
    or (with ``skip_flats``) when a single ``'0'`` run separates them,
    which is how the scalar loop's flat-skipping plays out after run
    collapse.  The apex is the higher of the rising run's last-segment
    end point and the descending run's first-segment start point, read
    from the same column scalars the scalar path compares, so times and
    amplitudes are bit-identical to per-representation
    :func:`find_peaks` (whose :class:`Peak` records carry the full
    segment objects this batch form deliberately skips).

    ``codes`` may carry the batch's already-classified flat symbol
    codes (segment order, all representations concatenated) when the
    caller has classified them anyway — the database's bulk ingest
    shares one classification pass between the pattern indexes and the
    peaks.  Must equal ``classify_slopes`` of the stacked slope columns
    under the same ``theta``.
    """
    representations = list(representations)
    if not representations:
        return []
    columns = [representation.segment_columns() for representation in representations]
    counts = np.array([len(c["slope"]) for c in columns], dtype=np.int64)
    group_starts = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=group_starts[1:])
    if codes is None:
        codes = classify_slopes(np.concatenate([c["slope"] for c in columns]), theta)
    elif len(codes) != int(counts.sum()):
        raise SequenceError(
            f"precomputed codes cover {len(codes)} segments, batch has {int(counts.sum())}"
        )
    run_mask = run_start_mask(codes, group_starts)
    run_offsets = np.flatnonzero(run_mask)
    run_codes = codes[run_offsets]
    n_runs = len(run_offsets)
    # A representation always has at least one segment, so consecutive
    # reduceat slices are non-empty and the run->owner map is exact.
    runs_per_rep = np.add.reduceat(run_mask.astype(np.int64), group_starts)
    run_owner = np.repeat(np.arange(len(representations), dtype=np.int64), runs_per_rep)
    run_last = np.append(run_offsets[1:], len(codes)) - 1

    same_next = np.zeros(n_runs, dtype=bool)
    same_next[:-1] = run_owner[1:] == run_owner[:-1]
    same_next2 = np.zeros(n_runs, dtype=bool)
    same_next2[:-2] = run_owner[2:] == run_owner[:-2]
    next_code = np.zeros(n_runs, dtype=np.int8)
    next_code[:-1] = run_codes[1:]
    next_code2 = np.zeros(n_runs, dtype=np.int8)
    next_code2[:-2] = run_codes[2:]

    rising = run_codes == 1
    direct = same_next & (next_code == -1)
    via_flat = (
        same_next2 & (next_code == 0) & (next_code2 == -1)
        if skip_flats
        else np.zeros(n_runs, dtype=bool)
    )
    peak_runs = np.flatnonzero(rising & (direct | via_flat))
    fall_runs = peak_runs + np.where(direct[peak_runs], 1, 2)

    end_time = np.concatenate([c["end_time"] for c in columns])
    end_value = np.concatenate([c["end_value"] for c in columns])
    start_time = np.concatenate([c["start_time"] for c in columns])
    start_value = np.concatenate([c["start_value"] for c in columns])
    rise_segment = run_last[peak_runs]
    fall_segment = run_offsets[fall_runs]
    rise_value = end_value[rise_segment]
    fall_value = start_value[fall_segment]
    # Paper step 3: the apex is the higher of REnd and DStart.
    from_rise = rise_value >= fall_value
    times = np.where(from_rise, end_time[rise_segment], start_time[fall_segment])
    amplitudes = np.where(from_rise, rise_value, fall_value)

    peaks_per_rep = np.bincount(run_owner[peak_runs], minlength=len(representations))
    results: "list[tuple[np.ndarray, np.ndarray]]" = []
    position = 0
    for count in peaks_per_rep.tolist():
        results.append(
            (times[position : position + count], amplitudes[position : position + count])
        )
        position += count
    return results


def count_peaks(representation: FunctionSeriesRepresentation, theta: float = 0.0) -> int:
    """Number of peaks in a representation."""
    return len(find_peaks(representation, theta))


def count_peaks_in_symbols(symbols: str) -> int:
    """Peak count from a slope-sign string alone.

    A peak is a maximal run of ``'+'`` later followed by a ``'-'`` with
    only ``'0'`` in between — the symbolic counterpart of
    :func:`find_peaks`, used by the pattern-index query path.
    """
    count = 0
    state = "idle"  # idle -> rising -> (fall seen => peak)
    for symbol in symbols:
        if symbol == "+":
            state = "rising"
        elif symbol == "-":
            if state == "rising":
                count += 1
            state = "idle"
        # '0' preserves the current state (plateaus do not end a rise).
    return count


def peak_table(
    representation: FunctionSeriesRepresentation,
    theta: float = 0.0,
) -> list[PeakTableRow]:
    """The paper's Table 1 for one sequence: per-peak segment data."""
    rows = []
    for peak in find_peaks(representation, theta):
        rows.append(
            PeakTableRow(
                rising_equation=_segment_label(peak.rising),
                rise_start=peak.rising.start_point,
                rise_end=peak.rising.end_point,
                descending_equation=_segment_label(peak.descending),
                descent_start=peak.descending.start_point,
                descent_end=peak.descending.end_point,
            )
        )
    return rows


def rr_intervals(
    representation: FunctionSeriesRepresentation,
    theta: float = 0.0,
) -> np.ndarray:
    """Distances in time between successive peaks (the R-R sequence)."""
    times = [peak.time for peak in find_peaks(representation, theta)]
    return np.diff(np.asarray(times, dtype=float))


def raw_peak_indices(sequence: Sequence, prominence: float) -> list[int]:
    """Ground-truth local maxima with at least ``prominence`` of relief.

    Topographic prominence: from each local maximum walk outward on both
    sides until strictly higher ground (or the sequence edge); the lower
    of the two intervening minima is the peak's base, and the peak
    qualifies if it rises at least ``prominence`` above that base.  Used
    by tests to validate representation-level peaks — the library itself
    never needs raw data at query time.
    """
    values = sequence.values
    n = len(values)
    peaks = []
    i = 1
    while i < n - 1:
        if values[i] < values[i - 1]:
            i += 1
            continue
        # Walk a plateau to its right edge.
        j = i
        while j + 1 < n and values[j + 1] == values[j]:
            j += 1
        if j + 1 < n and values[j + 1] < values[j]:
            apex = float(values[i])
            # Left saddle: lowest point before strictly higher ground.
            left_base = apex
            k = i - 1
            while k >= 0 and values[k] <= apex:
                left_base = min(left_base, float(values[k]))
                k -= 1
            # Right saddle, symmetric.
            right_base = apex
            k = j + 1
            while k < n and values[k] <= apex:
                right_base = min(right_base, float(values[k]))
                k += 1
            if apex - max(left_base, right_base) >= prominence:
                peaks.append(int(i + np.argmax(values[i : j + 1])))
        i = j + 1
    return peaks
