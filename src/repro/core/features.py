"""Feature extraction from function-series representations.

The representation is "centered around features of interest" so that
queries can address features directly (paper Section 4.1).  For the
medical domains of the paper the features are *peaks* and the derived
*R-R intervals*; this module extracts them from representations the way
Section 5.2 prescribes:

* a peak is a rising segment followed by a descending segment;
* the peak's position is whichever of the rising segment's end point
  (``REnd``) or the descending segment's start point (``DStart``) has
  the larger amplitude (the two can differ because the breakpoint
  belongs to exactly one side);
* per-sequence peak tables reproduce the paper's Table 1 and R-R
  interval sequences are first differences of the peak times.

A raw-data peak finder with a prominence threshold is included so tests
can validate the representation-level extraction against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.representation import FunctionSeriesRepresentation
from repro.core.segment import Segment
from repro.core.sequence import Sequence

__all__ = [
    "Peak",
    "PeakTableRow",
    "find_peaks",
    "count_peaks",
    "count_peaks_in_symbols",
    "peak_table",
    "rr_intervals",
    "raw_peak_indices",
]


@dataclass(frozen=True)
class Peak:
    """A detected peak: the rise/fall segment pair plus its apex."""

    rising: Segment
    descending: Segment
    time: float
    amplitude: float


@dataclass(frozen=True)
class PeakTableRow:
    """One row of the paper's Table 1."""

    rising_equation: str
    rise_start: tuple[float, float]
    rise_end: tuple[float, float]
    descending_equation: str
    descent_start: tuple[float, float]
    descent_end: tuple[float, float]

    def format(self) -> str:
        def point(p: tuple[float, float]) -> str:
            return f"({p[0]:.0f}, {p[1]:.1f})"

        return (
            f"{self.rising_equation:>16}  {point(self.rise_start):>14} {point(self.rise_end):>14}  "
            f"{self.descending_equation:>16}  {point(self.descent_start):>14} {point(self.descent_end):>14}"
        )


def _segment_label(segment: Segment) -> str:
    formatter = getattr(segment.function, "format_equation", None)
    if callable(formatter):
        return formatter()
    return repr(segment.function)


def find_peaks(
    representation: FunctionSeriesRepresentation,
    theta: float = 0.0,
    skip_flats: bool = True,
) -> list[Peak]:
    """Peaks of a representation: rising segment then descending segment.

    Parameters
    ----------
    theta:
        Flatness threshold for the slope-sign classification; slopes in
        ``[-theta, theta]`` count as flat.
    skip_flats:
        When true, flat segments between a rise and the following fall
        do not break the peak (a temperature plateau at the top of a
        fever spike is still one peak); the apex is then taken from the
        rise end / fall start as usual.
    """
    peaks: list[Peak] = []
    segments = representation.segments
    i = 0
    while i < len(segments):
        if not segments[i].is_rising(theta):
            i += 1
            continue
        # Coalesce consecutive rising segments into one logical rise.
        rise_idx = i
        while rise_idx + 1 < len(segments) and segments[rise_idx + 1].is_rising(theta):
            rise_idx += 1
        j = rise_idx + 1
        if skip_flats:
            while j < len(segments) and segments[j].is_flat(theta):
                j += 1
        if j < len(segments) and segments[j].is_falling(theta):
            rising = segments[rise_idx]
            descending = segments[j]
            # Paper step 3: the apex is the higher of REnd and DStart.
            if rising.end_point[1] >= descending.start_point[1]:
                time, amplitude = rising.end_point
            else:
                time, amplitude = descending.start_point
            peaks.append(Peak(rising=rising, descending=descending, time=time, amplitude=amplitude))
            i = j
        else:
            i = rise_idx + 1
    return peaks


def count_peaks(representation: FunctionSeriesRepresentation, theta: float = 0.0) -> int:
    """Number of peaks in a representation."""
    return len(find_peaks(representation, theta))


def count_peaks_in_symbols(symbols: str) -> int:
    """Peak count from a slope-sign string alone.

    A peak is a maximal run of ``'+'`` later followed by a ``'-'`` with
    only ``'0'`` in between — the symbolic counterpart of
    :func:`find_peaks`, used by the pattern-index query path.
    """
    count = 0
    state = "idle"  # idle -> rising -> (fall seen => peak)
    for symbol in symbols:
        if symbol == "+":
            state = "rising"
        elif symbol == "-":
            if state == "rising":
                count += 1
            state = "idle"
        # '0' preserves the current state (plateaus do not end a rise).
    return count


def peak_table(
    representation: FunctionSeriesRepresentation,
    theta: float = 0.0,
) -> list[PeakTableRow]:
    """The paper's Table 1 for one sequence: per-peak segment data."""
    rows = []
    for peak in find_peaks(representation, theta):
        rows.append(
            PeakTableRow(
                rising_equation=_segment_label(peak.rising),
                rise_start=peak.rising.start_point,
                rise_end=peak.rising.end_point,
                descending_equation=_segment_label(peak.descending),
                descent_start=peak.descending.start_point,
                descent_end=peak.descending.end_point,
            )
        )
    return rows


def rr_intervals(
    representation: FunctionSeriesRepresentation,
    theta: float = 0.0,
) -> np.ndarray:
    """Distances in time between successive peaks (the R-R sequence)."""
    times = [peak.time for peak in find_peaks(representation, theta)]
    return np.diff(np.asarray(times, dtype=float))


def raw_peak_indices(sequence: Sequence, prominence: float) -> list[int]:
    """Ground-truth local maxima with at least ``prominence`` of relief.

    Topographic prominence: from each local maximum walk outward on both
    sides until strictly higher ground (or the sequence edge); the lower
    of the two intervening minima is the peak's base, and the peak
    qualifies if it rises at least ``prominence`` above that base.  Used
    by tests to validate representation-level peaks — the library itself
    never needs raw data at query time.
    """
    values = sequence.values
    n = len(values)
    peaks = []
    i = 1
    while i < n - 1:
        if values[i] < values[i - 1]:
            i += 1
            continue
        # Walk a plateau to its right edge.
        j = i
        while j + 1 < n and values[j + 1] == values[j]:
            j += 1
        if j + 1 < n and values[j + 1] < values[j]:
            apex = float(values[i])
            # Left saddle: lowest point before strictly higher ground.
            left_base = apex
            k = i - 1
            while k >= 0 and values[k] <= apex:
                left_base = min(left_base, float(values[k]))
                k -= 1
            # Right saddle, symmetric.
            right_base = apex
            k = j + 1
            while k < n and values[k] <= apex:
                right_base = min(right_base, float(values[k]))
                k += 1
            if apex - max(left_base, right_base) >= prominence:
                peaks.append(int(i + np.argmax(values[i : j + 1])))
        i = j + 1
    return peaks
