"""Per-dimension error tolerances and match grading (paper Section 2.2).

A generalized approximate query accepts results that "deviate from the
specified pattern in any of the dimensions which correspond to the
specified features ... within a domain-dependent error tolerance"
measured by "a metric function defined over each dimension".  A result
is therefore graded:

``EXACT``
    A member of the query's equivalence class — zero deviation in every
    feature dimension.
``APPROXIMATE``
    Non-zero deviation in at least one dimension but within every
    dimension's tolerance.
``REJECT``
    Deviation beyond tolerance in some dimension.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.errors import QueryError

__all__ = [
    "MatchGrade",
    "Tolerance",
    "DimensionDeviation",
    "grade_deviations",
    "WITHIN_EPSILON",
    "EXACT_EPSILON",
]

#: Slack added to a tolerance bound before comparing a deviation to it.
WITHIN_EPSILON = 1e-12
#: Largest deviation still considered zero (floating-point dust).
EXACT_EPSILON = 1e-12


class MatchGrade(enum.Enum):
    """How a candidate relates to a query's equivalence class."""

    EXACT = "exact"
    APPROXIMATE = "approximate"
    REJECT = "reject"


def _absolute_difference(a: float, b: float) -> float:
    """The default metric — a module-level function (not a lambda) so
    default-metric tolerances, and therefore queries, pickle across to
    process-pool workers."""
    return abs(a - b)


@dataclass(frozen=True)
class Tolerance:
    """A metric tolerance on one feature dimension.

    Attributes
    ----------
    dimension:
        Feature name ("peak_count", "rr_interval", "slope", ...).
    bound:
        Largest acceptable deviation along this dimension.
    metric:
        Distance between the queried and observed feature values;
        defaults to absolute difference, which is a metric on the reals.
    """

    dimension: str
    bound: float
    metric: Callable[[float, float], float] = _absolute_difference

    def __post_init__(self) -> None:
        if self.bound < 0:
            raise QueryError(f"tolerance bound for {self.dimension!r} must be non-negative")

    def deviation(self, wanted: float, observed: float) -> "DimensionDeviation":
        return DimensionDeviation(self.dimension, float(self.metric(wanted, observed)), self.bound)


@dataclass(frozen=True)
class DimensionDeviation:
    """Observed deviation along one dimension, with its allowance."""

    dimension: str
    amount: float
    bound: float

    @property
    def within(self) -> bool:
        return self.amount <= self.bound + WITHIN_EPSILON

    @property
    def exact(self) -> bool:
        """Zero deviation up to floating-point dust.

        Deviations are computed from float arithmetic over transformed
        copies of the same data; residues at the 1e-12 scale are
        numerical noise, not behavioural difference.
        """
        return self.amount <= EXACT_EPSILON


def grade_deviations(deviations: Iterable[DimensionDeviation]) -> MatchGrade:
    """Combine per-dimension deviations into a single grade."""
    deviations = list(deviations)
    if any(not d.within for d in deviations):
        return MatchGrade.REJECT
    if all(d.exact for d in deviations):
        return MatchGrade.EXACT
    return MatchGrade.APPROXIMATE
