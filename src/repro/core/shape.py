"""Shape signatures: transformation-invariant descriptions of behaviour.

Paper Section 2.2: "the query can be an exemplar or an expression
denoting a pattern."  Pattern expressions are handled by
:mod:`repro.patterns`; this module supplies the *exemplar* side.  A
:class:`ShapeSignature` condenses a function-series representation into

* the collapsed slope-sign string (one symbol per behavioural run), and
* per-run *relative* extents: each run's share of the total duration
  and of the total amplitude travel.

Relative extents are exactly invariant under the paper's
feature-preserving transformations — time/amplitude translation scales
nothing, amplitude scaling multiplies every rise and fall alike, and
dilation/contraction multiplies every duration alike — so two sequences
related by those transformations have *identical* signatures, and the
residual differences between two signatures are honest per-dimension
deviations (``shape_duration``, ``shape_amplitude``) for approximate
grading.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import QueryError
from repro.core.representation import FunctionSeriesRepresentation

__all__ = ["ShapeSignature", "shape_signature"]


@dataclass(frozen=True)
class ShapeSignature:
    """Scale-free behavioural fingerprint of a representation.

    Attributes
    ----------
    symbols:
        Collapsed slope-sign string (``"+-+-"`` for a two-peak curve).
    duration_profile:
        Per-run fraction of the total time span (sums to 1).
    amplitude_profile:
        Per-run fraction of the total absolute amplitude travel (sums
        to 1 when any run moves; all zeros for a dead-flat sequence).
    """

    symbols: str
    duration_profile: tuple[float, ...]
    amplitude_profile: tuple[float, ...]

    def __post_init__(self) -> None:
        if not (len(self.symbols) == len(self.duration_profile) == len(self.amplitude_profile)):
            raise QueryError("signature components disagree in length")

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------

    def matches_symbols(self, other: "ShapeSignature") -> bool:
        return self.symbols == other.symbols

    def duration_deviation(self, other: "ShapeSignature") -> float:
        """Largest per-run difference in duration share (0 when shapes
        are pure time-scalings of one another)."""
        self._require_comparable(other)
        a = np.asarray(self.duration_profile)
        b = np.asarray(other.duration_profile)
        return float(np.abs(a - b).max()) if len(a) else 0.0

    def amplitude_deviation(self, other: "ShapeSignature") -> float:
        """Largest per-run difference in amplitude share."""
        self._require_comparable(other)
        a = np.asarray(self.amplitude_profile)
        b = np.asarray(other.amplitude_profile)
        return float(np.abs(a - b).max()) if len(a) else 0.0

    def _require_comparable(self, other: "ShapeSignature") -> None:
        if self.symbols != other.symbols:
            raise QueryError(
                f"signatures are structurally different ({self.symbols!r} vs {other.symbols!r})"
            )

    def __str__(self) -> str:
        return self.symbols


def shape_signature(
    representation: FunctionSeriesRepresentation,
    theta: float = 0.0,
) -> ShapeSignature:
    """Build the scale-free signature of a representation.

    Consecutive segments with the same slope symbol merge into one run;
    each run contributes its time span and its absolute amplitude change
    (sum of per-segment endpoint deltas, so plateaus inside a rise do
    not cancel the rise).
    """
    runs: list[tuple[str, float, float]] = []  # (symbol, duration, travel)
    for segment in representation.segments:
        slope = segment.mean_slope()
        if slope > theta:
            symbol = "+"
        elif slope < -theta:
            symbol = "-"
        else:
            symbol = "0"
        duration = max(segment.duration, 0.0)
        travel = abs(segment.end_point[1] - segment.start_point[1])
        if runs and runs[-1][0] == symbol:
            prev_symbol, prev_duration, prev_travel = runs[-1]
            runs[-1] = (prev_symbol, prev_duration + duration, prev_travel + travel)
        else:
            runs.append((symbol, duration, travel))

    symbols = "".join(symbol for symbol, __, ___ in runs)
    total_duration = sum(duration for __, duration, ___ in runs)
    total_travel = sum(travel for __, ___, travel in runs)
    if total_duration <= 0:
        duration_profile = tuple(0.0 for __ in runs)
    else:
        duration_profile = tuple(duration / total_duration for __, duration, ___ in runs)
    if total_travel <= 0:
        amplitude_profile = tuple(0.0 for __ in runs)
    else:
        amplitude_profile = tuple(travel / total_travel for __, ___, travel in runs)
    return ShapeSignature(symbols, duration_profile, amplitude_profile)
