"""Shape signatures: transformation-invariant descriptions of behaviour.

Paper Section 2.2: "the query can be an exemplar or an expression
denoting a pattern."  Pattern expressions are handled by
:mod:`repro.patterns`; this module supplies the *exemplar* side.  A
:class:`ShapeSignature` condenses a function-series representation into

* the collapsed slope-sign string (one symbol per behavioural run), and
* per-run *relative* extents: each run's share of the total duration
  and of the total amplitude travel.

Relative extents are exactly invariant under the paper's
feature-preserving transformations — time/amplitude translation scales
nothing, amplitude scaling multiplies every rise and fall alike, and
dilation/contraction multiplies every duration alike — so two sequences
related by those transformations have *identical* signatures, and the
residual differences between two signatures are honest per-dimension
deviations (``shape_duration``, ``shape_amplitude``) for approximate
grading.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import QueryError
from repro.core.representation import (
    FunctionSeriesRepresentation,
    classify_slopes,
    decode_symbols,
    run_start_mask,
)

__all__ = ["ShapeSignature", "shape_signature", "profile_runs"]


@dataclass(frozen=True)
class ShapeSignature:
    """Scale-free behavioural fingerprint of a representation.

    Attributes
    ----------
    symbols:
        Collapsed slope-sign string (``"+-+-"`` for a two-peak curve).
    duration_profile:
        Per-run fraction of the total time span (sums to 1).
    amplitude_profile:
        Per-run fraction of the total absolute amplitude travel (sums
        to 1 when any run moves; all zeros for a dead-flat sequence).
    """

    symbols: str
    duration_profile: tuple[float, ...]
    amplitude_profile: tuple[float, ...]

    def __post_init__(self) -> None:
        if not (len(self.symbols) == len(self.duration_profile) == len(self.amplitude_profile)):
            raise QueryError("signature components disagree in length")

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------

    def matches_symbols(self, other: "ShapeSignature") -> bool:
        return self.symbols == other.symbols

    def duration_deviation(self, other: "ShapeSignature") -> float:
        """Largest per-run difference in duration share (0 when shapes
        are pure time-scalings of one another)."""
        self._require_comparable(other)
        a = np.asarray(self.duration_profile)
        b = np.asarray(other.duration_profile)
        return float(np.abs(a - b).max()) if len(a) else 0.0

    def amplitude_deviation(self, other: "ShapeSignature") -> float:
        """Largest per-run difference in amplitude share."""
        self._require_comparable(other)
        a = np.asarray(self.amplitude_profile)
        b = np.asarray(other.amplitude_profile)
        return float(np.abs(a - b).max()) if len(a) else 0.0

    def _require_comparable(self, other: "ShapeSignature") -> None:
        if self.symbols != other.symbols:
            raise QueryError(
                f"signatures are structurally different ({self.symbols!r} vs {other.symbols!r})"
            )

    def __str__(self) -> str:
        return self.symbols


def profile_runs(
    durations: np.ndarray,
    travels: np.ndarray,
    run_offsets: np.ndarray,
    group_offsets: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """Normalized per-run shares of per-group duration and travel totals.

    ``durations``/``travels`` hold one entry per segment for one or more
    concatenated groups (sequences); ``run_offsets`` marks the first
    segment of every behavioural run, ``group_offsets`` the first *run*
    of every group.  Returns the flattened run-major ``(duration_profile,
    amplitude_profile)`` arrays; a group whose total is zero gets an
    all-zero profile, exactly like the scalar definition.

    This is the one reduction kernel behind both the per-representation
    :func:`shape_signature` and the engine's batched shape grading
    stage.  Keeping them on the same :func:`numpy.add.reduceat` calls is
    what makes the vectorized stage *bit*-identical to the scalar path:
    NumPy's reductions are not guaranteed to associate like a
    left-to-right Python loop, but two reduceat calls over equally-sized
    contiguous slices always associate like each other.
    """
    run_durations = np.add.reduceat(durations, run_offsets)
    run_travels = np.add.reduceat(travels, run_offsets)
    total_durations = np.add.reduceat(run_durations, group_offsets)
    total_travels = np.add.reduceat(run_travels, group_offsets)
    runs_per_group = np.diff(np.append(group_offsets, len(run_offsets)))
    duration_divisors = np.repeat(total_durations, runs_per_group)
    travel_divisors = np.repeat(total_travels, runs_per_group)
    duration_profile = np.zeros(len(run_offsets))
    amplitude_profile = np.zeros(len(run_offsets))
    np.divide(
        run_durations, duration_divisors, out=duration_profile, where=duration_divisors > 0
    )
    np.divide(run_travels, travel_divisors, out=amplitude_profile, where=travel_divisors > 0)
    return duration_profile, amplitude_profile


def shape_signature(
    representation: FunctionSeriesRepresentation,
    theta: float = 0.0,
) -> ShapeSignature:
    """Build the scale-free signature of a representation.

    Consecutive segments with the same slope symbol merge into one run;
    each run contributes its time span and its absolute amplitude change
    (sum of per-segment endpoint deltas, so plateaus inside a rise do
    not cancel the rise).  Computed columnarly over
    :meth:`~repro.core.representation.FunctionSeriesRepresentation.segment_columns`
    with the same classification (:func:`classify_slopes`) and reduction
    (:func:`profile_runs`) the execution engine applies to its stored
    columns, so signatures and the vectorized shape stage can never
    disagree.
    """
    columns = representation.segment_columns()
    slopes = columns["slope"]
    n = len(slopes)
    if n == 0:
        return ShapeSignature("", (), ())
    codes = classify_slopes(slopes, theta)
    durations = np.maximum(columns["end_time"] - columns["start_time"], 0.0)
    travels = np.abs(columns["end_value"] - columns["start_value"])
    run_offsets = np.flatnonzero(run_start_mask(codes))
    symbols = decode_symbols(codes[run_offsets])
    duration_profile, amplitude_profile = profile_runs(
        durations, travels, run_offsets, np.array([0], dtype=np.int64)
    )
    return ShapeSignature(
        symbols,
        tuple(float(share) for share in duration_profile),
        tuple(float(share) for share in amplitude_profile),
    )
