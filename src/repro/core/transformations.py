"""Feature-preserving transformations (paper Section 2.2).

A generalized approximate query denotes a set of sequences *closed
under behaviour-preserving transformations*.  The paper's examples —
all implemented here — are:

* translation in time and amplitude,
* dilation and contraction (frequency changes),
* bounded deviations in time, amplitude and frequency, and
* any composition of the above.

Each transformation reports whether it preserves peak structure
(`preserves_peaks`), which is what the goal-post fever and R-R interval
queries rely on.  Bounded noise is *approximately* preserving: it keeps
peaks only while its bound stays below the breaker's tolerance.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.errors import TransformationError
from repro.core.sequence import Sequence

__all__ = [
    "Transformation",
    "TimeShift",
    "AmplitudeShift",
    "AmplitudeScale",
    "TimeScale",
    "dilation",
    "contraction",
    "BoundedNoise",
    "Compose",
]


class Transformation(abc.ABC):
    """A mapping from sequences to sequences."""

    #: Whether peak structure (count and ordering) survives exactly.
    preserves_peaks: bool = True

    @abc.abstractmethod
    def apply(self, sequence: Sequence) -> Sequence:
        """Transform ``sequence`` into a new sequence."""

    def __call__(self, sequence: Sequence) -> Sequence:
        return self.apply(sequence)

    def then(self, other: "Transformation") -> "Compose":
        """``other`` applied after this transformation."""
        return Compose([self, other])


class TimeShift(Transformation):
    """Translation in time: ``(t, v) -> (t + dt, v)``."""

    def __init__(self, dt: float) -> None:
        self.dt = float(dt)

    def apply(self, sequence: Sequence) -> Sequence:
        return Sequence(sequence.times + self.dt, sequence.values, name=sequence.name)

    def __repr__(self) -> str:
        return f"TimeShift({self.dt:g})"


class AmplitudeShift(Transformation):
    """Translation in amplitude: ``(t, v) -> (t, v + dv)``."""

    def __init__(self, dv: float) -> None:
        self.dv = float(dv)

    def apply(self, sequence: Sequence) -> Sequence:
        return Sequence(sequence.times, sequence.values + self.dv, name=sequence.name)

    def __repr__(self) -> str:
        return f"AmplitudeShift({self.dv:g})"


class AmplitudeScale(Transformation):
    """Scaling in amplitude about a baseline: ``v -> baseline + k*(v - baseline)``.

    A positive factor preserves peaks; zero or negative factors would
    flatten or invert them and are rejected.
    """

    def __init__(self, factor: float, baseline: float = 0.0) -> None:
        if factor <= 0:
            raise TransformationError("amplitude scale factor must be positive")
        self.factor = float(factor)
        self.baseline = float(baseline)

    def apply(self, sequence: Sequence) -> Sequence:
        values = self.baseline + self.factor * (sequence.values - self.baseline)
        return Sequence(sequence.times, values, name=sequence.name)

    def __repr__(self) -> str:
        return f"AmplitudeScale({self.factor:g}, baseline={self.baseline:g})"


class TimeScale(Transformation):
    """Dilation (factor > 1) or contraction (factor < 1) of time.

    Frequency changes in the paper's terms: dilation lowers frequency,
    contraction raises it.  Anchored at ``origin`` so composition with
    shifts is predictable.
    """

    def __init__(self, factor: float, origin: float = 0.0) -> None:
        if factor <= 0:
            raise TransformationError("time scale factor must be positive")
        self.factor = float(factor)
        self.origin = float(origin)

    def apply(self, sequence: Sequence) -> Sequence:
        times = self.origin + self.factor * (sequence.times - self.origin)
        return Sequence(times, sequence.values, name=sequence.name)

    def __repr__(self) -> str:
        return f"TimeScale({self.factor:g}, origin={self.origin:g})"


def dilation(factor: float, origin: float = 0.0) -> TimeScale:
    """A time dilation (slows the sequence down); requires factor > 1."""
    if factor <= 1:
        raise TransformationError("a dilation needs factor > 1")
    return TimeScale(factor, origin)


def contraction(factor: float, origin: float = 0.0) -> TimeScale:
    """A time contraction (speeds the sequence up); requires factor < 1."""
    if not 0 < factor < 1:
        raise TransformationError("a contraction needs 0 < factor < 1")
    return TimeScale(factor, origin)


class BoundedNoise(Transformation):
    """Pointwise amplitude deviations bounded by ``bound``.

    This is the paper's "deviation" transformation: it is only
    *approximately* feature-preserving, so ``preserves_peaks`` is False
    — peaks survive only while ``bound`` stays below the prominence of
    the features and the breaker's epsilon.
    """

    preserves_peaks = False

    def __init__(self, bound: float, seed: int = 0) -> None:
        if bound < 0:
            raise TransformationError("noise bound must be non-negative")
        self.bound = float(bound)
        self.seed = int(seed)

    def apply(self, sequence: Sequence) -> Sequence:
        rng = np.random.default_rng(self.seed)
        noise = rng.uniform(-self.bound, self.bound, size=len(sequence))
        return Sequence(sequence.times, sequence.values + noise, name=sequence.name)

    def __repr__(self) -> str:
        return f"BoundedNoise({self.bound:g}, seed={self.seed})"


class Compose(Transformation):
    """Apply transformations left to right."""

    def __init__(self, steps: "list[Transformation] | tuple[Transformation, ...]") -> None:
        if not steps:
            raise TransformationError("a composition needs at least one step")
        self.steps = tuple(steps)

    @property
    def preserves_peaks(self) -> bool:  # type: ignore[override]
        return all(step.preserves_peaks for step in self.steps)

    def apply(self, sequence: Sequence) -> Sequence:
        for step in self.steps:
            sequence = step.apply(sequence)
        return sequence

    def then(self, other: Transformation) -> "Compose":
        return Compose(self.steps + (other,))

    def __repr__(self) -> str:
        inner = ", ".join(repr(s) for s in self.steps)
        return f"Compose([{inner}])"
