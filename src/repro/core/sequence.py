"""The :class:`Sequence` data model.

A :class:`Sequence` is the library's unit of stored data: an ordered
series of ``(time, value)`` samples backed by numpy arrays.  It mirrors
the paper's notion of a *large data sequence* (Section 1): a time series
whose individual values "just happened to be what they are" and whose
interesting content lies in its shape.

Sequences are immutable by convention: every operation returns a new
``Sequence`` and the underlying arrays are flagged non-writeable so that
representations derived from a sequence can never be silently
invalidated.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.core.errors import SequenceError

__all__ = ["Sequence"]


class Sequence:
    """An ordered series of ``(time, value)`` samples.

    Parameters
    ----------
    times:
        Strictly increasing sample timestamps.
    values:
        Sample amplitudes, one per timestamp.
    name:
        Optional identifier used by the database and index layers.

    Raises
    ------
    SequenceError
        If the sequence is empty, the arrays disagree in length, any
        entry is non-finite, or the timestamps are not strictly
        increasing.
    """

    __slots__ = ("_times", "_values", "name")

    def __init__(
        self,
        times: Iterable[float],
        values: Iterable[float],
        name: str = "",
    ) -> None:
        times_arr = np.asarray(list(times) if not isinstance(times, np.ndarray) else times, dtype=float)
        values_arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
        if times_arr.ndim != 1 or values_arr.ndim != 1:
            raise SequenceError("times and values must be one-dimensional")
        if times_arr.size == 0:
            raise SequenceError("a sequence must contain at least one sample")
        if times_arr.size != values_arr.size:
            raise SequenceError(
                f"times ({times_arr.size}) and values ({values_arr.size}) disagree in length"
            )
        if not (np.isfinite(times_arr).all() and np.isfinite(values_arr).all()):
            raise SequenceError("sequences must not contain NaN or infinite samples")
        if times_arr.size > 1 and not (np.diff(times_arr) > 0).all():
            raise SequenceError("timestamps must be strictly increasing")
        times_arr = times_arr.copy()
        values_arr = values_arr.copy()
        times_arr.flags.writeable = False
        values_arr.flags.writeable = False
        self._times = times_arr
        self._values = values_arr
        self.name = name

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_values(cls, values: Iterable[float], name: str = "", start: float = 0.0, step: float = 1.0) -> "Sequence":
        """Build a sequence from values alone, on a uniform time grid."""
        values_arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
        times = start + step * np.arange(values_arr.size, dtype=float)
        return cls(times, values_arr, name=name)

    @classmethod
    def from_block(
        cls,
        values: "Iterable[Iterable[float]]",
        times: "Iterable[float] | None" = None,
        names: "Iterable[str] | None" = None,
    ) -> "list[Sequence]":
        """Build many same-grid sequences from one 2-D value block.

        The batched twin of :meth:`from_values` for columnar ingest
        front-ends: the whole block is validated in one vectorized pass
        (finiteness over the matrix, monotonicity over the shared time
        axis) and every row becomes a zero-copy view of the block — no
        per-sequence array copy, no per-sequence validation.  ``times``
        defaults to the unit grid ``0..n_samples-1`` and is shared by
        every returned sequence.
        """
        block = np.asarray(
            values if isinstance(values, np.ndarray) else list(values), dtype=float
        )
        if block.ndim != 2:
            raise SequenceError(f"value block must be 2-D, got shape {block.shape}")
        n_sequences, n_samples = block.shape
        if n_samples == 0:
            raise SequenceError("a sequence must contain at least one sample")
        if not np.isfinite(block).all():
            raise SequenceError("sequences must not contain NaN or infinite samples")
        if times is None:
            times_arr = np.arange(n_samples, dtype=float)
        else:
            times_arr = np.asarray(
                times if isinstance(times, np.ndarray) else list(times), dtype=float
            )
            if times_arr.shape != (n_samples,):
                raise SequenceError(
                    f"times cover {times_arr.shape} samples, block rows have {n_samples}"
                )
            if not np.isfinite(times_arr).all():
                raise SequenceError("sequences must not contain NaN or infinite samples")
            if n_samples > 1 and not (np.diff(times_arr) > 0).all():
                raise SequenceError("timestamps must be strictly increasing")
            times_arr = times_arr.copy()
        if names is None:
            name_list = [""] * n_sequences
        else:
            name_list = [str(name) for name in names]
            if len(name_list) != n_sequences:
                raise SequenceError(
                    f"names cover {len(name_list)} sequences, block has {n_sequences}"
                )
        block = block.copy()
        block.flags.writeable = False
        times_arr.flags.writeable = False
        sequences = []
        for i in range(n_sequences):
            # Rows of the frozen block satisfy every constructor
            # invariant by the block-level validation above; build the
            # views directly, like Sequence.window does.
            piece = object.__new__(cls)
            piece._times = times_arr
            piece._values = block[i]
            piece.name = name_list[i]
            sequences.append(piece)
        return sequences

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[float, float]], name: str = "") -> "Sequence":
        """Build a sequence from an iterable of ``(time, value)`` pairs."""
        pair_list = list(pairs)
        if not pair_list:
            raise SequenceError("a sequence must contain at least one sample")
        times = [p[0] for p in pair_list]
        values = [p[1] for p in pair_list]
        return cls(times, values, name=name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def times(self) -> np.ndarray:
        """Read-only array of timestamps."""
        return self._times

    @property
    def values(self) -> np.ndarray:
        """Read-only array of amplitudes."""
        return self._values

    @property
    def start_time(self) -> float:
        return float(self._times[0])

    @property
    def end_time(self) -> float:
        return float(self._times[-1])

    @property
    def duration(self) -> float:
        """Elapsed time between the first and last samples."""
        return self.end_time - self.start_time

    def __len__(self) -> int:
        return int(self._times.size)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        for t, v in zip(self._times, self._values):
            yield float(t), float(v)

    def __getitem__(self, index: int | slice) -> "tuple[float, float] | Sequence":
        if isinstance(index, slice):
            times = self._times[index]
            values = self._values[index]
            if times.size == 0:
                raise SequenceError("slicing produced an empty sequence")
            return Sequence(times, values, name=self.name)
        return float(self._times[index]), float(self._values[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sequence):
            return NotImplemented
        return (
            self._times.shape == other._times.shape
            and bool(np.array_equal(self._times, other._times))
            and bool(np.array_equal(self._values, other._values))
        )

    def __hash__(self) -> int:
        return hash((self._times.tobytes(), self._values.tobytes()))

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return (
            f"Sequence(n={len(self)},{label} t=[{self.start_time:g}, {self.end_time:g}], "
            f"v=[{self._values.min():g}, {self._values.max():g}])"
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    def mean(self) -> float:
        return float(self._values.mean())

    def variance(self) -> float:
        """Population variance of the amplitudes."""
        return float(self._values.var())

    def amplitude_range(self) -> tuple[float, float]:
        return float(self._values.min()), float(self._values.max())

    def is_uniform(self, rel_tol: float = 1e-9) -> bool:
        """Whether samples fall on a uniform time grid."""
        if len(self) < 3:
            return True
        steps = np.diff(self._times)
        # Inline |step - step0| <= rel_tol * |step0| — what np.allclose
        # (rtol=rel_tol, atol=0) computes for the finite values a
        # validated sequence guarantees, minus its dispatch overhead;
        # this runs once per archived sequence on the ingest path.
        first = steps[0]
        return bool((np.abs(steps - first) <= rel_tol * abs(first)).all())

    def sampling_step(self) -> float:
        """The grid step of a uniform sequence.

        Raises
        ------
        SequenceError
            If the sequence is not uniformly sampled.
        """
        if len(self) < 2:
            raise SequenceError("a single sample has no sampling step")
        if not self.is_uniform():
            raise SequenceError("sequence is not uniformly sampled")
        return float(self._times[1] - self._times[0])

    # ------------------------------------------------------------------
    # Shape-preserving operations (each returns a new Sequence)
    # ------------------------------------------------------------------

    def with_name(self, name: str) -> "Sequence":
        return Sequence(self._times, self._values, name=name)

    def slice_time(self, t_lo: float, t_hi: float) -> "Sequence":
        """Samples with ``t_lo <= time <= t_hi``."""
        mask = (self._times >= t_lo) & (self._times <= t_hi)
        if not mask.any():
            raise SequenceError(f"no samples in time window [{t_lo}, {t_hi}]")
        return Sequence(self._times[mask], self._values[mask], name=self.name)

    def subsequence(self, i_lo: int, i_hi: int) -> "Sequence":
        """Samples with positional index ``i_lo <= i <= i_hi`` (inclusive)."""
        if i_lo < 0 or i_hi >= len(self) or i_lo > i_hi:
            raise SequenceError(f"invalid index window [{i_lo}, {i_hi}] for length {len(self)}")
        return Sequence(self._times[i_lo : i_hi + 1], self._values[i_lo : i_hi + 1], name=self.name)

    def window(self, i_lo: int, i_hi: int) -> "Sequence":
        """Zero-copy view of samples ``i_lo <= i <= i_hi`` (inclusive).

        The hot-path twin of :meth:`subsequence`: the returned sequence
        shares this one's arrays instead of copying them, and skips
        revalidation — every constructor invariant (finiteness, strictly
        increasing times) holds by construction on a contiguous slice of
        an already-validated sequence, and the backing arrays are
        immutable, so the view can never be invalidated.  Values are
        bit-identical to :meth:`subsequence`, only cheaper to produce;
        the breaking and representation kernels call this thousands of
        times per sequence.
        """
        if i_lo < 0 or i_hi >= len(self) or i_lo > i_hi:
            raise SequenceError(f"invalid index window [{i_lo}, {i_hi}] for length {len(self)}")
        piece = object.__new__(Sequence)
        piece._times = self._times[i_lo : i_hi + 1]
        piece._values = self._values[i_lo : i_hi + 1]
        piece.name = self.name
        return piece

    def shifted_to_origin(self) -> "Sequence":
        """The same shape re-based to start at time 0.

        The paper requires every subsequence to be "shifted and regarded
        as if starting from time 0" before its representing functions are
        compared (Section 4.2, footnote).
        """
        return Sequence(self._times - self._times[0], self._values, name=self.name)

    def concatenate(self, other: "Sequence") -> "Sequence":
        """Append ``other``; its timestamps must all follow ours."""
        if other.start_time <= self.end_time:
            raise SequenceError(
                f"cannot concatenate: other starts at {other.start_time} "
                f"which does not follow {self.end_time}"
            )
        return Sequence(
            np.concatenate([self._times, other._times]),
            np.concatenate([self._values, other._values]),
            name=self.name,
        )

    def insert(self, time: float, value: float) -> "Sequence":
        """A new sequence with one extra sample (used by robustness tests)."""
        if np.any(self._times == time):
            raise SequenceError(f"a sample at time {time} already exists")
        idx = int(np.searchsorted(self._times, time))
        return Sequence(
            np.insert(self._times, idx, time),
            np.insert(self._values, idx, value),
            name=self.name,
        )

    def interpolate_at(self, time: float) -> float:
        """Linearly interpolated amplitude at ``time`` (clamped at ends)."""
        return float(np.interp(time, self._times, self._values))

    def resample(self, n: int) -> "Sequence":
        """Linear resampling onto ``n`` uniform points across the span."""
        if n < 2:
            raise SequenceError("resampling needs at least two target points")
        new_times = np.linspace(self.start_time, self.end_time, n)
        new_values = np.interp(new_times, self._times, self._values)
        return Sequence(new_times, new_values, name=self.name)
