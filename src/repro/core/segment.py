"""Segments: one broken-out subsequence plus its representing function.

A :class:`Segment` is the atom of the paper's representation: the
breaking algorithm decides where a subsequence starts and ends, a curve
fitter supplies the representing function, and everything the query
layer needs later — endpoints, slope behaviour, symbol classification —
is derived from those two ingredients.  The raw samples are *not*
retained (that is the point of the compression); only the start/end
points survive, exactly as in the paper's Table 1 where each peak row
carries ``(RStart, REnd, DStart, DEnd)`` point pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import SequenceError
from repro.core.sequence import Sequence
from repro.functions.base import FittedFunction

__all__ = ["Segment"]


@dataclass(frozen=True)
class Segment:
    """A subsequence summarized by a fitted function.

    Attributes
    ----------
    function:
        The representing function (line, polynomial, ...).
    start_index, end_index:
        Positional indices (inclusive) of the subsequence within the
        original sequence.
    start_point, end_point:
        ``(time, amplitude)`` of the first and last raw samples.  Kept
        verbatim because the paper's peak table and R-R machinery use
        the *sampled* endpoint amplitudes, not the fitted ones.
    """

    function: FittedFunction
    start_index: int
    end_index: int
    start_point: tuple[float, float]
    end_point: tuple[float, float]

    def __post_init__(self) -> None:
        if self.end_index < self.start_index:
            raise SequenceError(
                f"segment end index {self.end_index} precedes start index {self.start_index}"
            )
        if self.end_point[0] < self.start_point[0]:
            raise SequenceError("segment end time precedes start time")

    @classmethod
    def trusted(
        cls,
        function: FittedFunction,
        start_index: int,
        end_index: int,
        start_point: "tuple[float, float]",
        end_point: "tuple[float, float]",
    ) -> "Segment":
        """Construct without re-validating the index/time ordering.

        For bulk assembly from windows that are ordered by construction
        (a breaker's partition over a strictly-increasing time axis);
        field-for-field equal to the validated constructor's result.
        """
        segment = object.__new__(cls)
        object.__setattr__(segment, "function", function)
        object.__setattr__(segment, "start_index", start_index)
        object.__setattr__(segment, "end_index", end_index)
        object.__setattr__(segment, "start_point", start_point)
        object.__setattr__(segment, "end_point", end_point)
        return segment

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def point_count(self) -> int:
        """Number of raw samples the segment stands for."""
        return self.end_index - self.start_index + 1

    @property
    def start_time(self) -> float:
        return self.start_point[0]

    @property
    def end_time(self) -> float:
        return self.end_point[0]

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------

    def mean_slope(self) -> float:
        """Average slope of the representing function over the segment.

        For a linear function this is simply its slope; for other
        families it is the secant slope, which is what the slope-sign
        alphabet quantizes.
        """
        return self.function.mean_slope(self.start_time, self.end_time)

    def is_rising(self, theta: float = 0.0) -> bool:
        return self.mean_slope() > theta

    def is_falling(self, theta: float = 0.0) -> bool:
        return self.mean_slope() < -theta

    def is_flat(self, theta: float = 0.0) -> bool:
        return abs(self.mean_slope()) <= theta

    def value_at(self, t: float) -> float:
        """Representing-function amplitude at time ``t`` inside the span."""
        if not (self.start_time <= t <= self.end_time):
            raise SequenceError(
                f"time {t} outside segment span [{self.start_time}, {self.end_time}]"
            )
        return float(self.function(t))

    def reconstruct(self, points_per_segment: int = 0) -> Sequence:
        """Sample the representing function back into a sequence.

        With ``points_per_segment == 0`` the original sample count is
        used, supporting the paper's "predict/deduce unsampled points"
        requirement on representations (Section 3).
        """
        n = points_per_segment if points_per_segment > 1 else max(self.point_count, 2)
        times = np.linspace(self.start_time, self.end_time, n)
        return Sequence(times, self.function.sample(times))

    def max_deviation_from(self, sequence: Sequence) -> float:
        """Max pointwise error against the matching slice of the raw data."""
        return self.function.max_deviation(sequence.subsequence(self.start_index, self.end_index))

    def describe(self) -> str:
        """One-line description used by the benchmark tables."""
        fn = getattr(self.function, "format_equation", None)
        label = fn() if callable(fn) else repr(self.function)
        return (
            f"[{self.start_index:4d}..{self.end_index:4d}] "
            f"t=[{self.start_time:8.2f}, {self.end_time:8.2f}]  f(t)={label}"
        )
