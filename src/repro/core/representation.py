"""Function-series representations of sequences.

A :class:`FunctionSeriesRepresentation` is the paper's stored form of a
sequence: an ordered series of :class:`~repro.core.segment.Segment`
objects, each carrying a representing function plus its start/end
points.  It answers the questions the paper's machinery needs:

* the slope-sign symbol string over ``{+, -, 0}`` (Section 4.4),
* reconstruction / interpolation of unsampled points (Section 3),
* storage accounting for the compression claims (Section 5.2), and
* refitting — the paper *breaks* with interpolation lines but
  *represents* with regression lines, so a representation can be rebuilt
  from the same breakpoints with a different curve kind.
"""

from __future__ import annotations

from typing import Iterator, Sequence as TypingSequence

import numpy as np

from repro.core.errors import SequenceError
from repro.core.segment import Segment
from repro.core.sequence import Sequence
from repro.functions.fitting import get_fitter

__all__ = [
    "FunctionSeriesRepresentation",
    "SYMBOL_CODES",
    "classify_slopes",
    "decode_symbols",
    "symbols_from_slopes",
    "collapse_symbol_runs",
]

#: Slope-sign symbol → int8 code, the numeric form of the alphabet used
#: by the engine's symbol columns and transition tables.
SYMBOL_CODES = {"+": 1, "-": -1, "0": 0}

#: Code → symbol, indexed by ``code + 1``.
_CODE_TO_SYMBOL = np.array(["-", "0", "+"])


def classify_slopes(
    slopes: "TypingSequence[float] | np.ndarray", theta: float = 0.0
) -> np.ndarray:
    """Vectorized Section 4.4 classification: slopes → int8 symbol codes.

    The single source of the paper's rule: slopes above ``theta`` code
    to ``+1`` (rising), below ``-theta`` to ``-1`` (falling), ``0``
    (flat) otherwise.  Both the string form (:func:`symbols_from_slopes`)
    and the engine's symbol columns derive from this one function, so
    they can never disagree.
    """
    arr = np.asarray(slopes, dtype=np.float64)
    return np.where(arr > theta, 1, np.where(arr < -theta, -1, 0)).astype(np.int8)


def decode_symbols(codes: "np.ndarray | TypingSequence[int]") -> str:
    """Render int8 symbol codes back into a ``{+,-,0}`` string.

    Codes outside ``{-1, 0, +1}`` fail loudly: a corrupted symbol
    column must never render as a plausible-looking string.
    """
    arr = np.asarray(codes)
    if arr.size == 0:
        return ""
    index = arr.astype(np.int64) + 1
    bad = (index < 0) | (index >= len(_CODE_TO_SYMBOL)) | (index - 1 != arr)
    if bool(bad.any()):
        raise SequenceError(f"invalid symbol codes {np.unique(arr[bad]).tolist()}")
    return "".join(_CODE_TO_SYMBOL[index])


def collapse_symbol_runs(symbols: str) -> str:
    """Merge consecutive identical symbols into one behavioural run."""
    return "".join(s for i, s in enumerate(symbols) if i == 0 or s != symbols[i - 1])


def run_start_mask(
    codes: np.ndarray, group_starts: "np.ndarray | None" = None
) -> np.ndarray:
    """Boolean mask marking the first row of every symbol-code run.

    A row opens a run when its code differs from the previous row's —
    or when it is the first row of its group (``group_starts`` holds
    each non-empty group's first row), since runs never span groups.
    The one definition of run boundaries shared by the scalar shape
    signature, the engine's block run-collapse and the vectorized shape
    grading stage; their bit-for-bit agreement depends on it staying
    single-sourced.
    """
    n = len(codes)
    mask = np.empty(n, dtype=bool)
    if n == 0:
        return mask
    mask[0] = True
    np.not_equal(codes[1:], codes[:-1], out=mask[1:])
    if group_starts is not None:
        mask[group_starts] = True
    return mask


def symbols_from_slopes(
    slopes: "TypingSequence[float] | np.ndarray",
    theta: float = 0.0,
    collapse_runs: bool = False,
) -> str:
    """Slope-sign string over ``{'+', '-', '0'}`` from raw slope values.

    The string rendering of :func:`classify_slopes`.  Works on any
    slope array — a representation's own slopes or a column slice of
    the engine's columnar store — so both produce byte-identical
    strings.
    """
    symbols = decode_symbols(classify_slopes(slopes, theta))
    if collapse_runs:
        return collapse_symbol_runs(symbols)
    return symbols


def _prefill_linear_columns(
    representations: "list[FunctionSeriesRepresentation]",
    sequences: "TypingSequence[Sequence]",
    boundaries_list: "TypingSequence[TypingSequence[tuple[int, int]]]",
    line_slopes: "list[float]",
    line_intercepts: "list[float]",
) -> None:
    """Vectorized ``segment_columns`` for batches of line segments.

    Values are bit-identical to the lazy per-segment loop: the index
    and endpoint columns are gathers of the same stored scalars, and
    the mean-slope column evaluates the identical secant expression
    ``FittedFunction.mean_slope`` computes (falling back to the line's
    own slope — its derivative — for zero-duration single-point
    segments), elementwise over the whole sequence.
    """
    fn_slopes = np.asarray(line_slopes, dtype=np.float64)
    fn_intercepts = np.asarray(line_intercepts, dtype=np.float64)
    position = 0
    for representation, sequence, boundaries in zip(representations, sequences, boundaries_list):
        window = np.asarray(boundaries, dtype=np.int64).reshape(-1, 2)
        n = len(window)
        start_index = np.ascontiguousarray(window[:, 0])
        end_index = np.ascontiguousarray(window[:, 1])
        start_time = sequence.times[start_index]
        end_time = sequence.times[end_index]
        slopes = fn_slopes[position : position + n]
        intercepts = fn_intercepts[position : position + n]
        position += n
        span = end_time - start_time
        with np.errstate(invalid="ignore", divide="ignore"):
            secant = (
                (slopes * end_time + intercepts) - (slopes * start_time + intercepts)
            ) / span
        representation._columns = {
            "start_index": start_index,
            "end_index": end_index,
            "start_time": start_time,
            "end_time": end_time,
            "start_value": sequence.values[start_index],
            "end_value": sequence.values[end_index],
            "slope": np.where(span == 0.0, slopes, secant),
        }


class FunctionSeriesRepresentation:
    """An ordered series of function segments standing in for a sequence."""

    __slots__ = ("segments", "name", "source_length", "curve_kind", "epsilon", "_columns")

    def __init__(
        self,
        segments: TypingSequence[Segment],
        name: str = "",
        source_length: int = 0,
        curve_kind: str = "",
        epsilon: float = 0.0,
    ) -> None:
        seg_list = list(segments)
        if not seg_list:
            raise SequenceError("a representation needs at least one segment")
        for prev, nxt in zip(seg_list, seg_list[1:]):
            if nxt.start_index <= prev.end_index:
                raise SequenceError(
                    f"segments overlap: [{prev.start_index}..{prev.end_index}] then "
                    f"[{nxt.start_index}..{nxt.end_index}]"
                )
        self.segments = tuple(seg_list)
        self.name = name
        self.source_length = source_length or (seg_list[-1].end_index + 1)
        self.curve_kind = curve_kind
        self.epsilon = epsilon
        self._columns: "dict[str, np.ndarray] | None" = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_breakpoints(
        cls,
        sequence: Sequence,
        boundaries: TypingSequence[tuple[int, int]],
        curve_kind: str = "regression",
        epsilon: float = 0.0,
    ) -> "FunctionSeriesRepresentation":
        """Fit ``curve_kind`` to each ``(start, end)`` index window.

        This is the paper's two-phase flow: a breaking algorithm yields
        the boundaries, then any registered curve kind supplies the
        stored functions (regression lines in the paper's experiments).
        """
        fitter = get_fitter(curve_kind)
        segments = []
        for start, end in boundaries:
            piece = sequence.subsequence(start, end)
            if len(piece) == 1:
                # A single point cannot be fitted by most families; use a
                # regression (constant) line which all downstream code
                # treats uniformly.
                function = get_fitter("regression")(piece)
            else:
                function = fitter(piece)
            segments.append(
                Segment(
                    function=function,
                    start_index=start,
                    end_index=end,
                    start_point=piece[0],
                    end_point=piece[-1],
                )
            )
        return cls(
            segments,
            name=sequence.name,
            source_length=len(sequence),
            curve_kind=curve_kind,
            epsilon=epsilon,
        )

    @classmethod
    def from_breakpoints_many(
        cls,
        sequences: "TypingSequence[Sequence]",
        boundaries_list: "TypingSequence[TypingSequence[tuple[int, int]]]",
        curve_kind: str = "regression",
        epsilon: float = 0.0,
    ) -> "list[FunctionSeriesRepresentation]":
        """Batch twin of :meth:`from_breakpoints` with columnar assembly.

        Fits the same per-window curves (on zero-copy window views, so
        the fitted parameters are bit-identical to the scalar path) and,
        when every fitted function is a plain line, prefills each
        representation's :meth:`segment_columns` memo with vectorized
        column arrays — endpoint gathers and mean slopes computed in a
        handful of NumPy calls per sequence instead of a Python loop per
        segment.  The engine's column-block append then consumes those
        columns without ever touching the segment objects.
        """
        if len(sequences) != len(boundaries_list):
            raise SequenceError(
                f"sequences ({len(sequences)}) and boundaries ({len(boundaries_list)}) disagree"
            )
        from repro.functions.linear import (
            LinearFunction,
            fit_interpolation_line,
            fit_regression_line,
            regression_coefficients,
        )

        fitter = get_fitter(curve_kind)
        # The two linear workhorse kinds fit straight off the window's
        # array slices — no per-window Sequence construction, same
        # coefficients bit for bit (see regression_coefficients).
        fast_regression = fitter is fit_regression_line
        fast_interpolation = fitter is fit_interpolation_line
        representations: "list[FunctionSeriesRepresentation]" = []
        line_slopes: "list[float]" = []
        line_intercepts: "list[float]" = []
        all_linear = True
        for sequence, boundaries in zip(sequences, boundaries_list):
            times = sequence.times
            values = sequence.values
            length = len(sequence)
            segments = []
            for start, end in boundaries:
                if start < 0 or end >= length or start > end:
                    # Same rejection the scalar path gets from
                    # Sequence.subsequence — the fast paths below slice
                    # raw arrays and would otherwise wrap negatives.
                    raise SequenceError(
                        f"invalid index window [{start}, {end}] for length {length}"
                    )
                if end == start:
                    # A single point cannot be fitted by most families;
                    # use a regression (constant) line, like the scalar path.
                    function = LinearFunction(0.0, float(values[start]))
                elif fast_regression:
                    slope, intercept = regression_coefficients(
                        times[start : end + 1], values[start : end + 1]
                    )
                    function = LinearFunction(slope, intercept)
                elif fast_interpolation:
                    t0 = times[start]
                    slope = (values[end] - values[start]) / (times[end] - t0)
                    function = LinearFunction(slope, values[start] - slope * t0)
                else:
                    function = fitter(sequence.window(start, end))
                segments.append(
                    Segment.trusted(
                        function,
                        start,
                        end,
                        (float(times[start]), float(values[start])),
                        (float(times[end]), float(values[end])),
                    )
                )
                if all_linear:
                    if type(function) is LinearFunction:
                        line_slopes.append(function.slope)
                        line_intercepts.append(function.intercept)
                    else:
                        all_linear = False
            representations.append(
                cls(
                    segments,
                    name=sequence.name,
                    source_length=len(sequence),
                    curve_kind=curve_kind,
                    epsilon=epsilon,
                )
            )

        if all_linear:
            _prefill_linear_columns(
                representations, sequences, boundaries_list, line_slopes, line_intercepts
            )
        return representations

    @classmethod
    def from_breakpoints_reusing(
        cls,
        sequence: Sequence,
        boundaries: "TypingSequence[tuple[int, int]]",
        previous: "FunctionSeriesRepresentation",
        curve_kind: str = "regression",
        epsilon: float = 0.0,
    ) -> "FunctionSeriesRepresentation":
        """Suffix-only twin of :meth:`from_breakpoints` for appends.

        ``previous`` is the representation of a *prefix* of
        ``sequence`` (the pre-append data); every leading window of
        ``boundaries`` that matches one of ``previous``'s windows
        exactly reuses its fitted :class:`Segment` verbatim — segments
        are immutable and were fitted on identical samples, so reuse is
        bit-identical to refitting — and only the remaining (changed)
        suffix windows are fitted fresh.  The result equals
        ``from_breakpoints(sequence, boundaries, ...)`` byte for byte,
        at the cost of the suffix alone.
        """
        reuse = 0
        prev_segments = previous.segments
        for segment, (start, end) in zip(prev_segments, boundaries):
            if segment.start_index == start and segment.end_index == end:
                reuse += 1
            else:
                break
        segments = list(prev_segments[:reuse])
        if reuse < len(boundaries):
            # Fit the changed windows through the one canonical fitting
            # loop, so the two construction paths can never drift.
            segments.extend(
                cls.from_breakpoints(
                    sequence, boundaries[reuse:], curve_kind=curve_kind, epsilon=epsilon
                ).segments
            )
        return cls(
            segments,
            name=sequence.name,
            source_length=len(sequence),
            curve_kind=curve_kind,
            epsilon=epsilon,
        )

    def refit(self, sequence: Sequence, curve_kind: str) -> "FunctionSeriesRepresentation":
        """The same breakpoints, represented by a different curve kind."""
        boundaries = [(s.start_index, s.end_index) for s in self.segments]
        rep = FunctionSeriesRepresentation.from_breakpoints(
            sequence, boundaries, curve_kind=curve_kind, epsilon=self.epsilon
        )
        rep.name = self.name
        return rep

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments)

    def __getitem__(self, index: int) -> Segment:
        return self.segments[index]

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return (
            f"FunctionSeriesRepresentation(segments={len(self.segments)},{label} "
            f"kind={self.curve_kind!r}, source_length={self.source_length})"
        )

    # ------------------------------------------------------------------
    # Time geometry
    # ------------------------------------------------------------------

    @property
    def start_time(self) -> float:
        return self.segments[0].start_time

    @property
    def end_time(self) -> float:
        return self.segments[-1].end_time

    def breakpoints(self) -> list[int]:
        """Start indices of every segment after the first."""
        return [s.start_index for s in self.segments[1:]]

    def breakpoint_times(self) -> list[float]:
        return [s.start_time for s in self.segments[1:]]

    def segment_at(self, t: float) -> Segment:
        """The segment whose time span covers ``t``.

        Spans may have gaps (a breakpoint belongs to exactly one side);
        times in a gap resolve to the earlier segment.
        """
        if not (self.start_time <= t <= self.end_time):
            raise SequenceError(f"time {t} outside representation span")
        chosen = self.segments[0]
        for segment in self.segments:
            if segment.start_time > t:
                break
            chosen = segment
        return chosen

    # ------------------------------------------------------------------
    # Behaviour: symbols and slopes
    # ------------------------------------------------------------------

    def slopes(self) -> list[float]:
        """Mean slope of every segment, in order."""
        return [segment.mean_slope() for segment in self.segments]

    def segment_columns(self) -> "dict[str, np.ndarray]":
        """Array views of the per-segment scalars, one entry per column.

        The stacked form the execution engine stores: start/end indices,
        start/end ``(time, value)`` endpoints and mean slopes as
        contiguous NumPy arrays in segment order.  Values are exactly
        the scalars the per-segment accessors return, so vectorized
        consumers and the object API always agree.

        The columns are built once and memoized (segments are immutable
        after construction); treat the returned arrays as read-only —
        every consumer (the columnar store, shape signatures, exemplar
        digests) copies or derives rather than mutating them.
        """
        if self._columns is not None:
            return self._columns
        n = len(self.segments)
        columns = {
            "start_index": np.empty(n, dtype=np.int64),
            "end_index": np.empty(n, dtype=np.int64),
            "start_time": np.empty(n, dtype=np.float64),
            "end_time": np.empty(n, dtype=np.float64),
            "start_value": np.empty(n, dtype=np.float64),
            "end_value": np.empty(n, dtype=np.float64),
            "slope": np.empty(n, dtype=np.float64),
        }
        for i, segment in enumerate(self.segments):
            columns["start_index"][i] = segment.start_index
            columns["end_index"][i] = segment.end_index
            columns["start_time"][i] = segment.start_point[0]
            columns["start_value"][i] = segment.start_point[1]
            columns["end_time"][i] = segment.end_point[0]
            columns["end_value"][i] = segment.end_point[1]
            columns["slope"][i] = segment.mean_slope()
        self._columns = columns
        return columns

    def symbol_string(self, theta: float = 0.0, collapse_runs: bool = False) -> str:
        """Slope-sign classification over ``{'+', '-', '0'}``.

        ``theta`` is the paper's flatness threshold: slopes in
        ``[-theta, theta]`` are flat (``'0'``), above is ``'+'``, below
        is ``'-'`` (Section 4.4, "3 possible index values").

        With ``collapse_runs`` consecutive identical symbols merge into
        one: a monotone rise approximated by several consecutive linear
        pieces is still a single behavioural rise.  The paper's pattern
        queries (one ``'+'`` per peak flank) assume this collapsed view;
        positional indexes use the uncollapsed view, whose positions map
        one-to-one onto segments.
        """
        return symbols_from_slopes(self.slopes(), theta, collapse_runs=collapse_runs)

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------

    def interpolate_at(self, t: float) -> float:
        """Amplitude predicted by the representation at time ``t``."""
        segment = self.segment_at(t)
        t_clamped = min(max(t, segment.start_time), segment.end_time)
        return segment.value_at(t_clamped)

    def reconstruct(self) -> Sequence:
        """A sequence sampled from the representing functions.

        Each segment contributes as many points as it originally
        covered, so the reconstruction is index-aligned with the source
        and directly comparable to it.
        """
        times: list[np.ndarray] = []
        values: list[np.ndarray] = []
        for segment in self.segments:
            piece = segment.reconstruct()
            times.append(piece.times)
            values.append(piece.values)
        all_times = np.concatenate(times)
        all_values = np.concatenate(values)
        order = np.argsort(all_times, kind="stable")
        all_times = all_times[order]
        all_values = all_values[order]
        keep = np.concatenate([[True], np.diff(all_times) > 0])
        return Sequence(all_times[keep], all_values[keep], name=self.name)

    def reconstruction_error(self, sequence: Sequence) -> float:
        """Max deviation of the representation from the raw samples."""
        worst = 0.0
        for segment in self.segments:
            worst = max(worst, segment.max_deviation_from(sequence))
        return worst

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------

    def parameter_count(self, convention: str = "paper") -> int:
        """Total stored scalars under a storage-accounting convention.

        ``"paper"``
            Three scalars per segment — "each representation requires
            3 parameters (such as function coefficients and
            breakpoints)" (Section 5.2).  For a line that is slope,
            intercept and the breakpoint position.
        ``"full"``
            The honest count: every function parameter plus both
            endpoint ``(time, value)`` pairs, which is what the binary
            codec in :mod:`repro.storage.serialization` actually writes.
        """
        if convention == "paper":
            return 3 * len(self.segments)
        if convention == "full":
            per_segment_endpoints = 4  # start time/value + end time/value
            return sum(s.function.parameter_count + per_segment_endpoints for s in self.segments)
        raise SequenceError(f"unknown storage convention {convention!r}")

    def compression_ratio(self, convention: str = "paper") -> float:
        """Raw sample scalars divided by stored representation scalars.

        Raw storage is one scalar per sample (values on a known uniform
        grid), the convention under which the paper reports "about a
        factor of 8" for 500-point ECGs broken into ~20 segments.
        """
        return self.source_length / max(self.parameter_count(convention), 1)
