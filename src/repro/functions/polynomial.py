"""Polynomial function family.

The paper lists polynomials as the canonical lexicographically-ordered
family: "by degrees and coefficients, where degrees are more
significant" (Section 4.2).  Degree-``d`` least-squares fits are used by
the offline breaking template and by the online sliding-window breaker.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import FittingError
from repro.core.sequence import Sequence
from repro.functions.base import FittedFunction

__all__ = ["PolynomialFunction", "fit_polynomial"]


class PolynomialFunction(FittedFunction):
    """``f(t) = c[0]*t^d + c[1]*t^(d-1) + ... + c[d]`` (highest first)."""

    family = "poly"

    __slots__ = ("coefficients",)

    def __init__(self, coefficients: "tuple[float, ...] | list[float] | np.ndarray") -> None:
        coeffs = tuple(float(c) for c in coefficients)
        if not coeffs:
            raise FittingError("a polynomial needs at least one coefficient")
        # Normalize away leading zeros so degree is well defined (but keep
        # the constant polynomial as a single coefficient).
        while len(coeffs) > 1 and coeffs[0] == 0.0:
            coeffs = coeffs[1:]
        self.coefficients = coeffs

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    def __call__(self, t: "float | np.ndarray") -> "float | np.ndarray":
        result = np.polyval(self.coefficients, t)
        if np.ndim(result) == 0:
            return float(result)
        return result

    def derivative_at(self, t: "float | np.ndarray") -> "float | np.ndarray":
        deriv = np.polyder(np.asarray(self.coefficients, dtype=float))
        result = np.polyval(deriv, t)
        if np.ndim(result) == 0:
            return float(result)
        return result

    def derivative(self) -> "PolynomialFunction":
        """The derivative as a polynomial of its own."""
        if self.degree == 0:
            return PolynomialFunction((0.0,))
        return PolynomialFunction(np.polyder(np.asarray(self.coefficients, dtype=float)))

    def real_roots(self) -> list[float]:
        """Real roots of the polynomial, ascending."""
        if self.degree == 0:
            return []
        roots = np.roots(np.asarray(self.coefficients, dtype=float))
        real = sorted(float(r.real) for r in roots if abs(r.imag) < 1e-9)
        return real

    def extrema_in(self, t_lo: float, t_hi: float) -> list[float]:
        """Interior critical points within ``[t_lo, t_hi]``.

        The paper relies on "behavior of functions ... captured by
        derivatives, inflection points, extrema" (Section 4.2); this is
        the concrete hook for that.
        """
        return [r for r in self.derivative().real_roots() if t_lo < r < t_hi]

    def parameters(self) -> tuple[float, ...]:
        return self.coefficients

    def lexicographic_key(self) -> tuple[float, ...]:
        return (float(self.degree),) + self.coefficients


def fit_polynomial(sequence: Sequence, degree: int) -> PolynomialFunction:
    """Least-squares polynomial of the given degree.

    The requested degree is capped at ``len(sequence) - 1`` so that the
    fit is always determined; an exactly-interpolating polynomial is the
    correct degenerate answer for tiny subsequences.
    """
    if degree < 0:
        raise FittingError("degree must be non-negative")
    effective = min(degree, len(sequence) - 1)
    if effective == 0:
        return PolynomialFunction((float(sequence.values.mean()),))
    # Fit in a time frame centred on the segment to keep the normal
    # equations well conditioned for high-degree fits on long spans.
    t0 = sequence.times.mean()
    coeffs = np.polyfit(sequence.times - t0, sequence.values, effective)
    shifted = np.poly1d(coeffs)(np.poly1d([1.0, -t0]))
    return PolynomialFunction(np.atleast_1d(shifted.coeffs))
