"""Families of real-valued functions used to represent subsequences.

See paper Section 4.2 ("Function Sequences"): sequences are mapped to
sequences of continuous, differentiable functions, each family with a
lexicographic order that makes representations indexable.
"""

from repro.functions.base import FittedFunction
from repro.functions.bezier import CubicBezier, fit_bezier
from repro.functions.fitting import (
    ChordKernel,
    CurveFitter,
    available_kinds,
    get_chord_kernel,
    get_fitter,
    register_fitter,
)
from repro.functions.linear import (
    LinearFunction,
    fit_interpolation_line,
    fit_interpolation_lines,
    fit_regression_line,
)
from repro.functions.polynomial import PolynomialFunction, fit_polynomial
from repro.functions.sinusoid import Sinusoid, fit_sinusoid

__all__ = [
    "FittedFunction",
    "LinearFunction",
    "PolynomialFunction",
    "Sinusoid",
    "CubicBezier",
    "fit_interpolation_line",
    "fit_interpolation_lines",
    "fit_regression_line",
    "fit_polynomial",
    "fit_sinusoid",
    "fit_bezier",
    "CurveFitter",
    "ChordKernel",
    "get_fitter",
    "get_chord_kernel",
    "register_fitter",
    "available_kinds",
]
