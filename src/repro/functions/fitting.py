"""Curve-fitter registry.

The offline breaking template (paper Figure 8) is parameterized by "a
type of curve ``c``"; this module is the place where curve types are
named, looked up, and instantiated.  A *fitter* is any callable mapping
a :class:`~repro.core.sequence.Sequence` to a
:class:`~repro.functions.base.FittedFunction`.

Built-in curve kinds
--------------------

``"interpolation"``
    Endpoint interpolation line (the paper's preferred breaker curve).
``"regression"``
    Least-squares regression line (the paper's representation choice).
``"poly:<d>"``
    Least-squares polynomial of degree ``d`` (e.g. ``"poly:3"``).
``"bezier"``
    Cubic Bézier via Schneider's algorithm.
``"sinusoid"``
    Single sinusoid, FFT-seeded.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.errors import FittingError
from repro.core.sequence import Sequence
from repro.functions.base import FittedFunction
from repro.functions.bezier import fit_bezier
from repro.functions.linear import (
    fit_interpolation_line,
    fit_interpolation_lines,
    fit_regression_line,
)
from repro.functions.polynomial import fit_polynomial
from repro.functions.sinusoid import fit_sinusoid

__all__ = [
    "CurveFitter",
    "ChordKernel",
    "register_fitter",
    "get_fitter",
    "get_chord_kernel",
    "available_kinds",
]

CurveFitter = Callable[[Sequence], FittedFunction]

#: Batch chord fitter: endpoint columns ``(t0, v0, t1, v1)`` in, the
#: ``(slope, intercept)`` coefficient columns of the fitted lines out.
ChordKernel = Callable[..., tuple]

_REGISTRY: Dict[str, CurveFitter] = {
    "interpolation": fit_interpolation_line,
    "regression": fit_regression_line,
    "bezier": fit_bezier,
    "sinusoid": fit_sinusoid,
}

#: Curve kinds whose fit depends on the window *endpoints only*, with a
#: vectorized kernel producing bit-identical line coefficients.  The
#: frontier-batched breaker consults this table; kinds without an entry
#: (regression, bezier, polynomials, ...) automatically fall back to the
#: scalar per-window breaking path.
_CHORD_KERNELS: Dict[str, ChordKernel] = {
    "interpolation": fit_interpolation_lines,
}


def register_fitter(kind: str, fitter: CurveFitter) -> None:
    """Register a custom curve kind.

    Raises
    ------
    FittingError
        If the kind name is already taken (overwriting silently would
        invalidate stored representations that reference the kind).
    """
    if kind in _REGISTRY or kind.startswith("poly:"):
        raise FittingError(f"curve kind {kind!r} is already registered")
    _REGISTRY[kind] = fitter


def get_fitter(kind: str) -> CurveFitter:
    """Look up a fitter by kind name (supports ``"poly:<degree>"``)."""
    if kind.startswith("poly:"):
        try:
            degree = int(kind.split(":", 1)[1])
        except ValueError as exc:
            raise FittingError(f"bad polynomial kind {kind!r}; expected 'poly:<int>'") from exc
        if degree < 0:
            raise FittingError("polynomial degree must be non-negative")
        return lambda seq: fit_polynomial(seq, degree)
    try:
        return _REGISTRY[kind]
    except KeyError as exc:
        raise FittingError(
            f"unknown curve kind {kind!r}; available: {', '.join(available_kinds())}"
        ) from exc


def get_chord_kernel(kind: str) -> "ChordKernel | None":
    """The batch endpoint-chord kernel for ``kind``, or ``None``.

    ``None`` means the kind's fit cannot be expressed as a vectorized
    function of window endpoints alone; batch consumers must fall back
    to calling the scalar fitter per window.
    """
    return _CHORD_KERNELS.get(kind)


def available_kinds() -> list[str]:
    """All registered kind names (``poly:<d>`` kinds are implicit)."""
    return sorted(_REGISTRY) + ["poly:<degree>"]
