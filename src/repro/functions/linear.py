"""Linear functions: the workhorse representation of the paper.

The paper's implemented system breaks sequences with the *endpoint
interpolation line* and represents the resulting subsequences with the
*linear regression line* (Sections 4.4 and 5.1).  Both fits live here.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import FittingError
from repro.core.sequence import Sequence
from repro.functions.base import FittedFunction

__all__ = [
    "LinearFunction",
    "fit_interpolation_line",
    "fit_interpolation_lines",
    "fit_regression_line",
    "regression_coefficients",
]


class LinearFunction(FittedFunction):
    """The line ``f(t) = slope * t + intercept``."""

    family = "linear"

    __slots__ = ("slope", "intercept")

    def __init__(self, slope: float, intercept: float) -> None:
        self.slope = float(slope)
        self.intercept = float(intercept)

    def __call__(self, t: "float | np.ndarray") -> "float | np.ndarray":
        return self.slope * t + self.intercept

    def derivative_at(self, t: "float | np.ndarray") -> "float | np.ndarray":
        if isinstance(t, np.ndarray):
            return np.full_like(np.asarray(t, dtype=float), self.slope)
        return self.slope

    def parameters(self) -> tuple[float, ...]:
        return (self.slope, self.intercept)

    def lexicographic_key(self) -> tuple[float, ...]:
        # Slope is the behaviourally significant parameter: it determines
        # the slope-sign symbol used by the pattern index.
        return (self.slope, self.intercept)

    def shifted(self, dt: float) -> "LinearFunction":
        """The same line expressed in a time frame shifted by ``dt``.

        If ``g = f.shifted(dt)`` then ``g(t) == f(t + dt)``; used to
        re-base a segment's line to start at time 0 for comparison.
        """
        return LinearFunction(self.slope, self.intercept + self.slope * dt)

    def format_equation(self, digits: int = 3) -> str:
        """Human-readable ``"a*x+b"`` form as printed in paper Figures 6-9."""
        sign = "+" if self.intercept >= 0 else "-"
        return f"{self.slope:.{digits}g}x{sign}{abs(self.intercept):.{digits}g}"


def fit_interpolation_line(sequence: Sequence) -> LinearFunction:
    """The line through the first and last points of ``sequence``.

    This is the curve used by the paper's preferred breaking algorithm:
    "finding an interpolation line through two points does not require
    complicated processing of the whole sequence.  Only endpoints need
    to be considered" (Section 5.1).

    Raises
    ------
    FittingError
        If the sequence is a single point (no line is determined) —
        callers treat one-point subsequences as already-converged.
    """
    if len(sequence) < 2:
        raise FittingError("an interpolation line needs at least two points")
    t0, v0 = sequence[0]
    t1, v1 = sequence[-1]
    if t1 == t0:
        raise FittingError("degenerate time span")
    slope = (v1 - v0) / (t1 - t0)
    return LinearFunction(slope, v0 - slope * t0)


def fit_interpolation_lines(
    t0: np.ndarray, v0: np.ndarray, t1: np.ndarray, v1: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorized twin of :func:`fit_interpolation_line` over endpoint columns.

    Takes the first/last ``(time, value)`` of many windows as flat
    arrays and returns the ``(slope, intercept)`` coefficient columns of
    the chords through them.  The arithmetic is the same IEEE-754
    expression :func:`fit_interpolation_line` evaluates on Python
    floats, applied elementwise, so the coefficients are bit-identical
    to fitting each window one at a time — the property the batched
    breaking kernel's parity with the scalar breaker rests on.

    Callers guarantee ``t1 != t0`` per window (the breaking frontier
    only fits windows of two or more strictly-increasing timestamps).
    """
    slope = (v1 - v0) / (t1 - t0)
    return slope, v0 - slope * t0


def regression_coefficients(times: np.ndarray, values: np.ndarray) -> "tuple[float, float]":
    """``(slope, intercept)`` of the least-squares line through arrays.

    The array-level core of :func:`fit_regression_line`, callable
    without constructing a :class:`Sequence` — the batched
    representation assembly fits tens of thousands of tiny windows and
    cannot afford per-window object construction.  ``np.add.reduce`` is
    the same pairwise summation ``ndarray.mean`` dispatches to, so the
    coefficients are bit-identical to the mean-based formulation.

    Callers guarantee at least two samples.
    """
    n = times.size
    t_mean = np.add.reduce(times) / n
    v_mean = np.add.reduce(values) / n
    t_centered = times - t_mean
    denom = float(np.dot(t_centered, t_centered))
    if denom == 0.0:
        raise FittingError("degenerate time span")
    slope = float(np.dot(t_centered, values - v_mean)) / denom
    return slope, v_mean - slope * t_mean


def fit_regression_line(sequence: Sequence) -> LinearFunction:
    """Ordinary least-squares regression line through the sequence.

    For single-point input the fit degenerates to the constant function
    at that value, which is the natural zero-error representation.
    """
    if len(sequence) == 1:
        __, v = sequence[0]
        return LinearFunction(0.0, v)
    slope, intercept = regression_coefficients(sequence.times, sequence.values)
    return LinearFunction(slope, intercept)
