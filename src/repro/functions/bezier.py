"""Cubic Bézier curves and Schneider's automatic fitting algorithm.

The paper's offline breaking template (Figure 8) is "a generalization of
an algorithm for Bezier curve fitting [Sch90]" — Schneider's
*An Algorithm for Automatically Fitting Digitized Curves* from Graphic
Gems.  We implement the fitting core from scratch: chord-length
parameterization, least-squares placement of the two interior control
points along the end tangents, and Newton–Raphson reparameterization.

The paper modified the original algorithm in two ways (Section 5.1),
both honoured here and in :mod:`repro.segmentation`:

* no continuity is imposed between consecutive curves, and
* the split point belongs to exactly one of the two subsequences.

Because our sequences are functions of time, a fitted curve whose ``x``
component is monotone can be evaluated at a time ``t`` by inverting
``x(u) = t``; :meth:`CubicBezier.__call__` does so by bisection, which
lets Bézier segments share the :class:`~repro.functions.base.FittedFunction`
protocol with the other families.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import FittingError
from repro.core.sequence import Sequence
from repro.functions.base import FittedFunction

__all__ = ["CubicBezier", "fit_bezier"]


def _bernstein_matrix(u: np.ndarray) -> np.ndarray:
    """Rows of cubic Bernstein weights ``[B0(u), B1(u), B2(u), B3(u)]``."""
    u = np.asarray(u, dtype=float)
    v = 1.0 - u
    return np.column_stack([v**3, 3.0 * u * v**2, 3.0 * u**2 * v, u**3])


class CubicBezier(FittedFunction):
    """A cubic Bézier curve defined by four ``(x, y)`` control points."""

    family = "bezier"

    __slots__ = ("control_points",)

    def __init__(self, control_points: "np.ndarray | list[tuple[float, float]]") -> None:
        pts = np.asarray(control_points, dtype=float)
        if pts.shape != (4, 2):
            raise FittingError("a cubic Bezier needs exactly four (x, y) control points")
        self.control_points = pts

    # ------------------------------------------------------------------
    # Parametric form
    # ------------------------------------------------------------------

    def point_at(self, u: "float | np.ndarray") -> np.ndarray:
        """Point(s) on the curve at parameter ``u`` in ``[0, 1]``."""
        weights = _bernstein_matrix(np.atleast_1d(u))
        pts = weights @ self.control_points
        if np.ndim(u) == 0:
            return pts[0]
        return pts

    def tangent_at(self, u: "float | np.ndarray") -> np.ndarray:
        """Derivative ``dP/du`` of the parametric curve."""
        u_arr = np.atleast_1d(np.asarray(u, dtype=float))
        diffs = 3.0 * np.diff(self.control_points, axis=0)
        v = 1.0 - u_arr
        weights = np.column_stack([v**2, 2.0 * u_arr * v, u_arr**2])
        tangents = weights @ diffs
        if np.ndim(u) == 0:
            return tangents[0]
        return tangents

    # ------------------------------------------------------------------
    # FittedFunction protocol (time-series view)
    # ------------------------------------------------------------------

    def _solve_parameter(self, x: float, tol: float = 1e-10) -> float:
        """Invert ``x(u) = x`` by bisection; assumes x(u) is monotone."""
        x0 = float(self.control_points[0, 0])
        x3 = float(self.control_points[3, 0])
        if x <= min(x0, x3):
            return 0.0 if x0 <= x3 else 1.0
        if x >= max(x0, x3):
            return 1.0 if x0 <= x3 else 0.0
        ascending = x3 >= x0
        lo, hi = 0.0, 1.0
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            x_mid = float(self.point_at(mid)[0])
            if abs(x_mid - x) < tol:
                return mid
            if (x_mid < x) == ascending:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def __call__(self, t: "float | np.ndarray") -> "float | np.ndarray":
        if np.ndim(t) == 0:
            return float(self.point_at(self._solve_parameter(float(t)))[1])
        t_arr = np.asarray(t, dtype=float)
        return np.array([float(self.point_at(self._solve_parameter(float(x)))[1]) for x in t_arr])

    def derivative_at(self, t: "float | np.ndarray") -> "float | np.ndarray":
        def scalar(x: float) -> float:
            u = self._solve_parameter(x)
            dx, dy = (float(c) for c in self.tangent_at(u))
            if dx == 0.0:
                return float("inf") if dy > 0 else float("-inf") if dy < 0 else 0.0
            return dy / dx

        if np.ndim(t) == 0:
            return scalar(float(t))
        return np.array([scalar(float(x)) for x in np.asarray(t, dtype=float)])

    def parameters(self) -> tuple[float, ...]:
        return tuple(float(v) for v in self.control_points.ravel())

    def lexicographic_key(self) -> tuple[float, ...]:
        return self.parameters()


# ----------------------------------------------------------------------
# Schneider's fitting algorithm
# ----------------------------------------------------------------------


def _chord_length_parameterize(points: np.ndarray) -> np.ndarray:
    """Initial parameter assignment proportional to chord length."""
    deltas = np.linalg.norm(np.diff(points, axis=0), axis=1)
    cumulative = np.concatenate([[0.0], np.cumsum(deltas)])
    total = cumulative[-1]
    if total == 0.0:
        return np.linspace(0.0, 1.0, len(points))
    return cumulative / total


def _estimate_tangents(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unit tangents at the two endpoints of the digitized points."""
    left = points[min(1, len(points) - 1)] - points[0]
    right = points[-min(2, len(points)) if len(points) > 1 else -1] - points[-1]
    norm_left = np.linalg.norm(left)
    norm_right = np.linalg.norm(right)
    if norm_left == 0.0:
        left = np.array([1.0, 0.0])
        norm_left = 1.0
    if norm_right == 0.0:
        right = np.array([-1.0, 0.0])
        norm_right = 1.0
    return left / norm_left, right / norm_right


def _generate_bezier(points: np.ndarray, params: np.ndarray, tan_left: np.ndarray, tan_right: np.ndarray) -> CubicBezier:
    """Least-squares interior control points along the end tangents.

    Standard Schneider formulation: with ``P1 = P0 + a1*t1`` and
    ``P2 = P3 + a2*t2``, solve the 2x2 normal equations for
    ``(a1, a2)``; fall back to the Wu/Barsky heuristic (a third of the
    chord) when the system is singular or produces non-forward alphas.
    """
    first, last = points[0], points[-1]
    u = params
    v = 1.0 - u
    b0 = v**3
    b1 = 3.0 * u * v**2
    b2 = 3.0 * u**2 * v
    b3 = u**3

    a1 = tan_left[None, :] * b1[:, None]
    a2 = tan_right[None, :] * b2[:, None]

    c00 = float(np.sum(a1 * a1))
    c01 = float(np.sum(a1 * a2))
    c11 = float(np.sum(a2 * a2))

    base = (b0 + b1)[:, None] * first[None, :] + (b2 + b3)[:, None] * last[None, :]
    rhs = points - base
    x0 = float(np.sum(a1 * rhs))
    x1 = float(np.sum(a2 * rhs))

    det = c00 * c11 - c01 * c01
    chord = float(np.linalg.norm(last - first))
    fallback = chord / 3.0
    if abs(det) < 1e-12:
        alpha1 = alpha2 = fallback
    else:
        alpha1 = (x0 * c11 - x1 * c01) / det
        alpha2 = (c00 * x1 - c01 * x0) / det
        epsilon = 1e-6 * chord
        if alpha1 < epsilon or alpha2 < epsilon:
            alpha1 = alpha2 = fallback

    controls = np.vstack(
        [first, first + alpha1 * tan_left, last + alpha2 * tan_right, last]
    )
    return CubicBezier(controls)


def _reparameterize(points: np.ndarray, params: np.ndarray, curve: CubicBezier) -> np.ndarray:
    """One Newton–Raphson step improving each point's parameter."""
    new_params = params.copy()
    diffs1 = 3.0 * np.diff(curve.control_points, axis=0)
    diffs2 = 2.0 * np.diff(diffs1, axis=0)
    for i, (point, u) in enumerate(zip(points, params)):
        p = curve.point_at(u)
        v = 1.0 - u
        w1 = np.array([v**2, 2.0 * u * v, u**2])
        d1 = w1 @ diffs1
        w2 = np.array([v, u])
        d2 = w2 @ diffs2
        delta = p - point
        numerator = float(np.dot(delta, d1))
        denominator = float(np.dot(d1, d1) + np.dot(delta, d2))
        if denominator == 0.0:
            continue
        new_params[i] = min(1.0, max(0.0, u - numerator / denominator))
    return new_params


def fit_bezier(sequence: Sequence, reparameterize_iterations: int = 4) -> CubicBezier:
    """Fit one cubic Bézier segment to a sequence, Schneider-style.

    Raises
    ------
    FittingError
        If the sequence has fewer than two points.
    """
    if len(sequence) < 2:
        raise FittingError("a Bezier fit needs at least two points")
    points = np.column_stack([sequence.times, sequence.values])
    if len(points) == 2:
        # Degenerate: the curve is the straight chord.
        first, last = points
        third = (last - first) / 3.0
        return CubicBezier(np.vstack([first, first + third, last - third, last]))

    params = _chord_length_parameterize(points)
    tan_left, tan_right = _estimate_tangents(points)
    curve = _generate_bezier(points, params, tan_left, tan_right)
    best = curve
    best_err = float(np.max(np.linalg.norm(curve.point_at(params) - points, axis=1)))
    for _ in range(reparameterize_iterations):
        params = _reparameterize(points, params, curve)
        curve = _generate_bezier(points, params, tan_left, tan_right)
        err = float(np.max(np.linalg.norm(curve.point_at(params) - points, axis=1)))
        if err < best_err:
            best, best_err = curve, err
    return best
