"""Abstract base for the real-valued function families.

The paper (Section 4.2) represents each subsequence by a "well behaved"
real-valued function and relies on three properties of functions:

* significant compression — a function is a handful of parameters;
* simple lexicographic ordering *within a single family*, which makes
  representations indexable;
* behaviour capture — slopes, extrema and inflection points of the
  function stand in for the behaviour of the raw subsequence.

:class:`FittedFunction` encodes exactly those obligations: parameters,
evaluation, differentiation, residual computation against a sequence,
and a lexicographic sort key.
"""

from __future__ import annotations

import abc
from typing import Sequence as TypingSequence

import numpy as np

from repro.core.sequence import Sequence

__all__ = ["FittedFunction"]


class FittedFunction(abc.ABC):
    """A continuous, differentiable function fitted to a subsequence."""

    #: Short family tag (``"linear"``, ``"poly"``, ...) used by the codec
    #: and by lexicographic comparison across representations.
    family: str = "abstract"

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def __call__(self, t: "float | np.ndarray") -> "float | np.ndarray":
        """Evaluate the function at scalar or vector ``t``."""

    @abc.abstractmethod
    def derivative_at(self, t: "float | np.ndarray") -> "float | np.ndarray":
        """First derivative at ``t``."""

    @abc.abstractmethod
    def parameters(self) -> tuple[float, ...]:
        """The parameters that fully determine the function.

        The tuple is what the storage codec persists; its length is the
        per-segment storage cost the paper counts ("about 3 parameters"
        for a line plus breakpoint).
        """

    @abc.abstractmethod
    def lexicographic_key(self) -> tuple[float, ...]:
        """Sort key giving the family's lexicographic order.

        For polynomials the paper orders by degree first, then by
        coefficients from most to least significant (Section 4.2).
        """

    # ------------------------------------------------------------------
    # Shared behaviour
    # ------------------------------------------------------------------

    @property
    def parameter_count(self) -> int:
        return len(self.parameters())

    def residuals(self, sequence: Sequence) -> np.ndarray:
        """Signed pointwise errors ``value - f(time)`` over a sequence."""
        return sequence.values - np.asarray(self(sequence.times), dtype=float)

    def max_deviation(self, sequence: Sequence) -> float:
        """Largest absolute pointwise error over the sequence.

        This is the deviation the breaking template (paper Figure 8,
        step 2) compares against the error tolerance ``epsilon``.
        """
        return float(np.abs(self.residuals(sequence)).max())

    def argmax_deviation(self, sequence: Sequence) -> int:
        """Index of the sample farthest from the function."""
        return int(np.abs(self.residuals(sequence)).argmax())

    def rmse(self, sequence: Sequence) -> float:
        """Root-mean-square pointwise error over the sequence."""
        res = self.residuals(sequence)
        return float(np.sqrt(np.mean(res * res)))

    def mean_slope(self, t_lo: float, t_hi: float) -> float:
        """Average slope over ``[t_lo, t_hi]`` (secant of the function)."""
        if t_hi == t_lo:
            return float(self.derivative_at(t_lo))
        return float((self(t_hi) - self(t_lo)) / (t_hi - t_lo))

    def sample(self, times: TypingSequence[float]) -> np.ndarray:
        """Vectorized evaluation over an iterable of times."""
        return np.asarray(self(np.asarray(times, dtype=float)), dtype=float)

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FittedFunction):
            return NotImplemented
        return self.family == other.family and self.parameters() == other.parameters()

    def __hash__(self) -> int:
        return hash((self.family, self.parameters()))

    def __lt__(self, other: "FittedFunction") -> bool:
        """Lexicographic order; cross-family order falls back to the tag."""
        if self.family != other.family:
            return self.family < other.family
        return self.lexicographic_key() < other.lexicographic_key()

    def __repr__(self) -> str:
        params = ", ".join(f"{p:.6g}" for p in self.parameters())
        return f"{type(self).__name__}({params})"
