"""Sinusoid function family.

The paper lists sinusoids (ordered "by amplitude, frequency, phase") as
a second lexicographically-ordered family suitable for periodic domains
(Section 4.2).  Fitting uses an FFT-seeded frequency estimate refined by
a golden-section search, with amplitude/phase/offset solved exactly by
linear least squares at each candidate frequency.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import FittingError
from repro.core.sequence import Sequence
from repro.functions.base import FittedFunction

__all__ = ["Sinusoid", "fit_sinusoid"]


class Sinusoid(FittedFunction):
    """``f(t) = amplitude * sin(2*pi*frequency*t + phase) + offset``."""

    family = "sin"

    __slots__ = ("amplitude", "frequency", "phase", "offset")

    def __init__(self, amplitude: float, frequency: float, phase: float, offset: float = 0.0) -> None:
        if frequency < 0:
            raise FittingError("frequency must be non-negative")
        self.amplitude = float(amplitude)
        self.frequency = float(frequency)
        self.phase = float(phase) % (2.0 * np.pi)
        self.offset = float(offset)

    def __call__(self, t: "float | np.ndarray") -> "float | np.ndarray":
        result = self.amplitude * np.sin(2.0 * np.pi * self.frequency * t + self.phase) + self.offset
        if np.ndim(result) == 0:
            return float(result)
        return result

    def derivative_at(self, t: "float | np.ndarray") -> "float | np.ndarray":
        omega = 2.0 * np.pi * self.frequency
        result = self.amplitude * omega * np.cos(omega * t + self.phase)
        if np.ndim(result) == 0:
            return float(result)
        return result

    def parameters(self) -> tuple[float, ...]:
        return (self.amplitude, self.frequency, self.phase, self.offset)

    def lexicographic_key(self) -> tuple[float, ...]:
        # Paper order: amplitude, frequency, phase.
        return (self.amplitude, self.frequency, self.phase, self.offset)

    def period(self) -> float:
        if self.frequency == 0.0:
            return float("inf")
        return 1.0 / self.frequency


def _lstsq_at_frequency(times: np.ndarray, values: np.ndarray, freq: float) -> tuple[Sinusoid, float]:
    """Best sinusoid at a fixed frequency, and its residual SSE."""
    omega = 2.0 * np.pi * freq
    design = np.column_stack([np.sin(omega * times), np.cos(omega * times), np.ones_like(times)])
    coeffs, *_ = np.linalg.lstsq(design, values, rcond=None)
    a, b, c = (float(x) for x in coeffs)
    amplitude = float(np.hypot(a, b))
    phase = float(np.arctan2(b, a))
    model = Sinusoid(amplitude, freq, phase, c)
    resid = values - model.sample(times)
    return model, float(np.dot(resid, resid))


def fit_sinusoid(sequence: Sequence, refine_iterations: int = 40) -> Sinusoid:
    """Fit a single sinusoid to a (uniformly sampled) sequence.

    The dominant FFT bin seeds the frequency; a golden-section search in
    a one-bin neighbourhood refines it.  For constant data the fit
    degenerates to a zero-amplitude sinusoid at the mean.
    """
    if len(sequence) < 4:
        raise FittingError("a sinusoid fit needs at least four points")
    times = sequence.times
    values = sequence.values
    if float(values.var()) == 0.0:
        return Sinusoid(0.0, 0.0, 0.0, float(values.mean()))

    resampled = sequence if sequence.is_uniform() else sequence.resample(len(sequence))
    step = resampled.sampling_step()
    centered = resampled.values - resampled.values.mean()
    spectrum = np.abs(np.fft.rfft(centered))
    freqs = np.fft.rfftfreq(len(resampled), d=step)
    peak_bin = int(spectrum[1:].argmax()) + 1  # skip the DC bin
    seed = float(freqs[peak_bin])
    bin_width = float(freqs[1]) if len(freqs) > 1 else seed or 1.0

    lo = max(seed - bin_width, 1e-12)
    hi = seed + bin_width
    golden = (np.sqrt(5.0) - 1.0) / 2.0
    x1 = hi - golden * (hi - lo)
    x2 = lo + golden * (hi - lo)
    _, f1 = _lstsq_at_frequency(times, values, x1)
    _, f2 = _lstsq_at_frequency(times, values, x2)
    for _ in range(refine_iterations):
        if f1 <= f2:
            hi, x2, f2 = x2, x1, f1
            x1 = hi - golden * (hi - lo)
            _, f1 = _lstsq_at_frequency(times, values, x1)
        else:
            lo, x1, f1 = x1, x2, f2
            x2 = lo + golden * (hi - lo)
            _, f2 = _lstsq_at_frequency(times, values, x2)
    best_freq = x1 if f1 <= f2 else x2
    model, _ = _lstsq_at_frequency(times, values, best_freq)
    return model
