"""Wavelet transform and feature-preserving compression (paper Section 7).

The paper preprocesses with "compression (using the wavelet transform
[FS94, HJS94, Dau92])" and reports ongoing experiments "applying the
wavelet transform for compressing the sequences in a way that allows
extracting features from the compressed data".  This module implements
the discrete wavelet transform from scratch for two orthonormal bases:

* ``"haar"`` — the Haar wavelet;
* ``"db4"`` — Daubechies' 4-tap wavelet (two vanishing moments).

Both use periodic signal extension, so every level halves the length
exactly and the transforms are orthonormal (they preserve energy, which
property tests verify via Parseval's identity).  Compression keeps the
largest-magnitude detail coefficients and zeroes the rest.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.errors import SequenceError
from repro.core.sequence import Sequence

__all__ = [
    "dwt_level",
    "idwt_level",
    "wavedec",
    "waverec",
    "compress_wavelet",
    "WaveletCompression",
]

_SQRT2 = math.sqrt(2.0)
_SQRT3 = math.sqrt(3.0)

#: Orthonormal low-pass filters; high-pass follows by quadrature mirror.
_FILTERS: dict[str, np.ndarray] = {
    "haar": np.array([1.0 / _SQRT2, 1.0 / _SQRT2]),
    "db4": np.array(
        [
            (1.0 + _SQRT3) / (4.0 * _SQRT2),
            (3.0 + _SQRT3) / (4.0 * _SQRT2),
            (3.0 - _SQRT3) / (4.0 * _SQRT2),
            (1.0 - _SQRT3) / (4.0 * _SQRT2),
        ]
    ),
}


def _filters(wavelet: str) -> tuple[np.ndarray, np.ndarray]:
    try:
        low = _FILTERS[wavelet]
    except KeyError as exc:
        raise SequenceError(f"unknown wavelet {wavelet!r}; use one of {sorted(_FILTERS)}") from exc
    # Quadrature mirror: g[k] = (-1)^k * h[L-1-k].
    high = low[::-1].copy()
    high[1::2] *= -1.0
    return low, high


def dwt_level(values: np.ndarray, wavelet: str = "haar") -> tuple[np.ndarray, np.ndarray]:
    """One analysis level: ``values -> (approximation, detail)``.

    Uses periodic extension; input length must be even.
    """
    if len(values) % 2 != 0:
        raise SequenceError("one DWT level needs an even-length input")
    low, high = _filters(wavelet)
    n = len(values)
    taps = len(low)
    approx = np.zeros(n // 2)
    detail = np.zeros(n // 2)
    for i in range(n // 2):
        for k in range(taps):
            sample = values[(2 * i + k) % n]
            approx[i] += low[k] * sample
            detail[i] += high[k] * sample
    return approx, detail


def idwt_level(approx: np.ndarray, detail: np.ndarray, wavelet: str = "haar") -> np.ndarray:
    """One synthesis level: exact inverse of :func:`dwt_level`."""
    if len(approx) != len(detail):
        raise SequenceError("approximation and detail lengths differ")
    low, high = _filters(wavelet)
    half = len(approx)
    n = 2 * half
    taps = len(low)
    out = np.zeros(n)
    for i in range(half):
        for k in range(taps):
            out[(2 * i + k) % n] += low[k] * approx[i] + high[k] * detail[i]
    return out


def wavedec(values: np.ndarray, wavelet: str = "haar", levels: int = 0) -> list[np.ndarray]:
    """Multi-level decomposition ``[approx_L, detail_L, ..., detail_1]``.

    ``levels == 0`` means "as deep as the length allows" (each level
    requires the current length to be even).
    """
    values = np.asarray(values, dtype=float)
    coeffs: list[np.ndarray] = []
    current = values
    level = 0
    while len(current) >= 2 and len(current) % 2 == 0 and (levels == 0 or level < levels):
        current, detail = dwt_level(current, wavelet)
        coeffs.append(detail)
        level += 1
    if level == 0:
        raise SequenceError("sequence too short (or odd) for a wavelet decomposition")
    coeffs.append(current)
    coeffs.reverse()
    return coeffs


def waverec(coeffs: list[np.ndarray], wavelet: str = "haar") -> np.ndarray:
    """Inverse of :func:`wavedec`."""
    if len(coeffs) < 2:
        raise SequenceError("a decomposition has at least one detail band")
    current = coeffs[0]
    for detail in coeffs[1:]:
        current = idwt_level(current, detail, wavelet)
    return current


class WaveletCompression:
    """A thresholded wavelet decomposition of one sequence."""

    def __init__(
        self,
        coeffs: list[np.ndarray],
        wavelet: str,
        times: np.ndarray,
        name: str,
        kept: int,
        total: int,
    ) -> None:
        self.coeffs = coeffs
        self.wavelet = wavelet
        self.times = times
        self.name = name
        self.kept = kept
        self.total = total

    @property
    def compression_ratio(self) -> float:
        """Original coefficient count over retained (non-zero) count."""
        return self.total / max(self.kept, 1)

    def reconstruct(self) -> Sequence:
        values = waverec(self.coeffs, self.wavelet)
        return Sequence(self.times, values[: len(self.times)], name=self.name)


def compress_wavelet(
    sequence: Sequence,
    keep_fraction: float = 0.1,
    wavelet: str = "haar",
) -> WaveletCompression:
    """Keep the largest ``keep_fraction`` of coefficients by magnitude.

    Approximation coefficients are always retained (they carry the
    coarse shape the features live on); only detail coefficients
    compete for the remaining budget.
    """
    if not 0 < keep_fraction <= 1:
        raise SequenceError("keep_fraction must be in (0, 1]")
    coeffs = wavedec(sequence.values, wavelet)
    details = np.concatenate(coeffs[1:]) if len(coeffs) > 1 else np.array([])
    total = sum(len(c) for c in coeffs)
    budget = max(int(round(keep_fraction * total)) - len(coeffs[0]), 0)
    if budget >= len(details):
        kept_detail = len(details)
        threshold = 0.0
    elif budget == 0:
        kept_detail = 0
        threshold = float("inf")
    else:
        magnitudes = np.sort(np.abs(details))[::-1]
        threshold = float(magnitudes[budget - 1])
        kept_detail = int((np.abs(details) >= threshold).sum())
    new_coeffs = [coeffs[0].copy()]
    for band in coeffs[1:]:
        kept_band = band.copy()
        kept_band[np.abs(kept_band) < threshold] = 0.0
        new_coeffs.append(kept_band)
    return WaveletCompression(
        new_coeffs,
        wavelet,
        sequence.times.copy(),
        sequence.name,
        kept=len(coeffs[0]) + kept_detail,
        total=total,
    )
