"""Multiresolution analysis of sequences (paper Section 6 future work).

"Currently we are experimenting with multiresolution analysis and
applying the wavelet transform for compressing the sequences in a way
that allows extracting features from the compressed data rather than
from the original sequences."

:class:`MultiresolutionPyramid` realizes that experiment: level ``k``
holds the wavelet approximation of the signal at a ``2^k``-coarser
grid, rescaled back to the signal's amplitude (orthonormal analysis
multiplies local averages by ``sqrt(2)`` per level, which is divided
out), so each level is itself a :class:`~repro.core.sequence.Sequence`
that the breaking algorithms and feature extractors consume directly.
Features extracted at a coarse level come from ``2^k`` times fewer
samples — the compressed-domain feature extraction the paper aims for.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import SequenceError
from repro.core.sequence import Sequence
from repro.preprocessing.wavelets import dwt_level

__all__ = ["MultiresolutionPyramid"]


class MultiresolutionPyramid:
    """Dyadic pyramid of amplitude-true approximations of one sequence."""

    def __init__(self, levels: list[Sequence], wavelet: str) -> None:
        if not levels:
            raise SequenceError("a pyramid needs at least the base level")
        self._levels = levels
        self.wavelet = wavelet

    @classmethod
    def build(cls, sequence: Sequence, depth: int, wavelet: str = "db4") -> "MultiresolutionPyramid":
        """Decompose ``sequence`` into ``depth`` coarser levels.

        Level 0 is the sequence itself; level ``k`` has
        ``len(sequence) // 2^k`` samples.  The sequence must be
        uniformly sampled and long enough for the requested depth
        (each level halves an even length).
        """
        if depth < 0:
            raise SequenceError("depth must be non-negative")
        if not sequence.is_uniform():
            raise SequenceError("multiresolution analysis needs a uniform grid")
        levels = [sequence]
        values = sequence.values.copy()
        step = sequence.sampling_step() if len(sequence) > 1 else 1.0
        start = sequence.start_time
        for k in range(1, depth + 1):
            if len(values) < 2 or len(values) % 2 != 0:
                raise SequenceError(
                    f"cannot build level {k}: length {len(values)} is not an even number >= 2"
                )
            approx, __ = dwt_level(values, wavelet)
            values = approx
            # Undo the per-level sqrt(2) gain of the orthonormal filters
            # so amplitudes stay comparable across levels.
            rescaled = values / (2.0 ** (k / 2.0))
            level_step = step * 2**k
            times = start + level_step * (np.arange(len(values)) + 0.5) - step / 2.0
            levels.append(Sequence(times, rescaled, name=f"{sequence.name}@L{k}"))
        return cls(levels, wavelet)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of coarse levels (excluding the base)."""
        return len(self._levels) - 1

    def level(self, k: int) -> Sequence:
        """The sequence at level ``k`` (0 = original)."""
        if not 0 <= k < len(self._levels):
            raise SequenceError(f"level {k} outside [0, {self.depth}]")
        return self._levels[k]

    def __iter__(self):
        return iter(self._levels)

    def sample_counts(self) -> list[int]:
        return [len(level) for level in self._levels]

    def compression_at(self, k: int) -> float:
        """Sample-count reduction of level ``k`` vs the base."""
        return len(self.level(0)) / len(self.level(k))
