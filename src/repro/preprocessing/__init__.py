"""Preprocessing applied before breaking (paper Sections 4.3 and 7):
filtering, normalization, and wavelet compression."""

from repro.preprocessing.filters import exponential_smoothing, median_filter, moving_average
from repro.preprocessing.multiresolution import MultiresolutionPyramid
from repro.preprocessing.normalization import (
    min_max_normalize,
    normalization_parameters,
    znormalize,
)
from repro.preprocessing.wavelets import (
    WaveletCompression,
    compress_wavelet,
    dwt_level,
    idwt_level,
    wavedec,
    waverec,
)

__all__ = [
    "moving_average",
    "median_filter",
    "exponential_smoothing",
    "znormalize",
    "min_max_normalize",
    "normalization_parameters",
    "dwt_level",
    "idwt_level",
    "wavedec",
    "waverec",
    "compress_wavelet",
    "WaveletCompression",
    "MultiresolutionPyramid",
]
