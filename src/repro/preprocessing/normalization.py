"""Normalization (paper Section 7).

"Normalization (to have mean 0 and variance 1) ... is important both
for maintaining robustness of our breaking algorithms and also for
enhancing similarity and eliminating the differences between sequences
that are linear transformations (scaling and translation) of each
other."
"""

from __future__ import annotations

import numpy as np

from repro.core.sequence import Sequence

__all__ = ["znormalize", "min_max_normalize", "normalization_parameters"]


def znormalize(sequence: Sequence) -> Sequence:
    """Rescale amplitudes to mean 0 and variance 1.

    A constant sequence (zero variance) maps to all zeros — the unique
    mean-0 answer — rather than dividing by zero.
    """
    values = sequence.values
    mean = values.mean()
    std = values.std()
    # A sequence of identical floats is constant even when its computed
    # std is not exactly zero: the std of three copies of 0.1 is ~1e-17
    # of pure summation noise, and dividing by it would amplify that
    # noise into O(1) garbage.  Exact element equality is the precise
    # test — it can never flatten a genuine (representable) variation,
    # however small relative to the sequence's magnitude.
    if std == 0.0 or bool((values == values[0]).all()):
        normalized = np.zeros_like(values)
    else:
        normalized = (values - mean) / std
    return Sequence(sequence.times, normalized, name=sequence.name)


def min_max_normalize(sequence: Sequence, lo: float = 0.0, hi: float = 1.0) -> Sequence:
    """Rescale amplitudes linearly onto ``[lo, hi]``.

    A constant sequence maps to the midpoint of the target range.
    """
    values = sequence.values
    v_min = values.min()
    v_max = values.max()
    if v_max == v_min:
        normalized = np.full_like(values, 0.5 * (lo + hi))
    else:
        normalized = lo + (hi - lo) * (values - v_min) / (v_max - v_min)
    return Sequence(sequence.times, normalized, name=sequence.name)


def normalization_parameters(sequence: Sequence) -> tuple[float, float]:
    """The ``(mean, std)`` a z-normalization would remove.

    Kept alongside a normalized representation these two scalars let
    the original amplitudes be recovered, so normalization costs two
    parameters per sequence in the storage accounting.
    """
    return float(sequence.values.mean()), float(sequence.values.std())
