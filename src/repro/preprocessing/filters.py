"""Noise-elimination filters (paper Section 4.3 footnote and Section 7).

"To achieve robustness, various kinds of preprocessing are applied to
the sequences prior to breaking, such as filtering for eliminating
noise."  These are the standard smoothing filters used for that step;
each maps a sequence to a new sequence on the same time grid.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import SequenceError
from repro.core.sequence import Sequence

__all__ = ["moving_average", "median_filter", "exponential_smoothing"]


def _check_window(window: int, n: int) -> None:
    if window < 1:
        raise SequenceError("filter window must be at least 1")
    if window > n:
        raise SequenceError(f"filter window {window} exceeds sequence length {n}")


def moving_average(sequence: Sequence, window: int) -> Sequence:
    """Centered moving average with edge shrinking.

    Near the boundaries the window shrinks symmetrically so the output
    has the same length and no phantom boundary values.
    """
    _check_window(window, len(sequence))
    values = sequence.values
    n = len(values)
    half = window // 2
    prefix = np.concatenate([[0.0], np.cumsum(values)])
    out = np.empty(n)
    for i in range(n):
        lo = max(0, i - half)
        hi = min(n - 1, i + half)
        out[i] = (prefix[hi + 1] - prefix[lo]) / (hi - lo + 1)
    return Sequence(sequence.times, out, name=sequence.name)


def median_filter(sequence: Sequence, window: int) -> Sequence:
    """Centered running median; robust to impulse (spike) noise."""
    _check_window(window, len(sequence))
    values = sequence.values
    n = len(values)
    half = window // 2
    out = np.empty(n)
    for i in range(n):
        lo = max(0, i - half)
        hi = min(n - 1, i + half)
        out[i] = np.median(values[lo : hi + 1])
    return Sequence(sequence.times, out, name=sequence.name)


def exponential_smoothing(sequence: Sequence, alpha: float) -> Sequence:
    """First-order exponential smoothing (a simple low-pass).

    ``alpha`` in ``(0, 1]`` is the update weight: 1 leaves the sequence
    unchanged, smaller values smooth harder.
    """
    if not 0 < alpha <= 1:
        raise SequenceError("alpha must be in (0, 1]")
    values = sequence.values
    out = np.empty_like(values)
    out[0] = values[0]
    for i in range(1, len(values)):
        out[i] = alpha * values[i] + (1.0 - alpha) * out[i - 1]
    return Sequence(sequence.times, out, name=sequence.name)
