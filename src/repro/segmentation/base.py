"""Breaker interface and the paper's required breaker properties.

Section 4.3 of the paper demands three properties of any beneficial
breaking algorithm; this module gives them executable form so tests and
benchmarks can check them on every implementation:

*consistency*
    Similar sequences break at corresponding breakpoints — checked by
    :func:`breakpoints_correspond` across feature-preserving transforms.
*robustness*
    Adding a behaviour-preserving element shifts breakpoints by at most
    the number of added elements — checked by tests via
    :func:`breakpoints_correspond` with an index budget.
*avoids fragmentation*
    Most segments have length > 2 — quantified by
    :func:`fragmentation_ratio`.
"""

from __future__ import annotations

import abc
from typing import Sequence as TypingSequence

from repro.core.errors import SegmentationError
from repro.core.representation import FunctionSeriesRepresentation
from repro.core.sequence import Sequence
from repro.functions.fitting import get_fitter

__all__ = [
    "Breaker",
    "Boundaries",
    "is_partition",
    "fragmentation_ratio",
    "verify_tolerance",
    "breakpoints_correspond",
]

#: Inclusive ``(start_index, end_index)`` windows covering a sequence.
Boundaries = list[tuple[int, int]]


class Breaker(abc.ABC):
    """A breaking algorithm: sequence in, segment boundaries out."""

    #: Curve kind the breaker itself fits while deciding where to break.
    curve_kind: str = "interpolation"

    def __init__(self, epsilon: float) -> None:
        if epsilon < 0:
            raise SegmentationError("error tolerance epsilon must be non-negative")
        self.epsilon = float(epsilon)

    @abc.abstractmethod
    def break_indices(self, sequence: Sequence) -> Boundaries:
        """Partition ``sequence`` into inclusive index windows."""

    def break_indices_many(
        self, sequences: "TypingSequence[Sequence]"
    ) -> "list[Boundaries]":
        """Partition a whole batch of sequences.

        The base implementation loops :meth:`break_indices`; breakers
        whose per-window fit vectorizes (the interpolation chord, whose
        deviation profile is a closed-form function of window endpoints)
        override this with a frontier-batched kernel that processes
        every active window of the whole batch per round.  Either way
        the boundaries are identical to breaking one sequence at a time.
        """
        return [self.break_indices(sequence) for sequence in sequences]

    def extend_indices(
        self, sequence: Sequence, previous_boundaries: Boundaries
    ) -> Boundaries:
        """Boundaries for ``sequence`` after trailing samples were added.

        ``previous_boundaries`` is the full partition of a *prefix* of
        ``sequence`` (the pre-append break, trailing window closed at
        the old last sample).  The contract is strict: the result must
        equal :meth:`break_indices` of the whole extended sequence, bit
        for bit — the streaming append path's parity guarantee rests on
        it.

        The base implementation simply re-breaks from scratch, which is
        always correct.  *Online* breakers override it with a
        suffix-only rescan: their per-sample decisions depend only on
        the current open segment, so resuming from the last closed
        boundary provably reproduces the from-scratch break at the cost
        of the tail alone.
        """
        return self.break_indices(sequence)

    def extend_indices_many(
        self, items: "TypingSequence[tuple[Sequence, Boundaries]]"
    ) -> "list[Boundaries]":
        """Batch twin of :meth:`extend_indices`.

        ``items`` yields ``(extended_sequence, previous_boundaries)``
        pairs.  Breakers that override :meth:`extend_indices` are
        looped through their override (suffix-only work per sequence);
        otherwise the batch falls through to the frontier-batched
        :meth:`break_indices_many` full re-break — correct for every
        breaker, and still vectorized where the chord kernel exists.
        Online breakers may override this as well with a lock-step
        frontier over all suffixes at once.
        """
        items = list(items)
        if type(self).extend_indices is not Breaker.extend_indices:
            return [
                self.extend_indices(sequence, previous) for sequence, previous in items
            ]
        return self.break_indices_many([sequence for sequence, __ in items])

    def represent(
        self, sequence: Sequence, curve_kind: str | None = None
    ) -> FunctionSeriesRepresentation:
        """Break and then fit the stored representation.

        ``curve_kind`` defaults to the breaker's own curve; the paper's
        pipeline breaks with ``"interpolation"`` and represents with
        ``"regression"`` — pass the latter explicitly to mirror it.
        """
        boundaries = self.break_indices(sequence)
        return FunctionSeriesRepresentation.from_breakpoints(
            sequence,
            boundaries,
            curve_kind=curve_kind or self.curve_kind,
            epsilon=self.epsilon,
        )

    def represent_many(
        self, sequences: "TypingSequence[Sequence]", curve_kind: str | None = None
    ) -> "list[FunctionSeriesRepresentation]":
        """Break and represent a whole batch of sequences.

        The batch entry point the database's bulk ingest path and the
        engine benchmarks call.  Breaking goes through
        :meth:`break_indices_many` (frontier-batched where the breaker
        supports it) and the representations are assembled columnarly
        by :meth:`FunctionSeriesRepresentation.from_breakpoints_many`,
        which prefills the ``segment_columns`` arrays the engine's
        column-block append consumes.  Output is identical to calling
        :meth:`represent` per sequence — subclasses that override
        :meth:`represent` itself are detected and looped through their
        override, so per-sequence customizations keep applying to bulk
        ingest (override this method as well to batch them).
        """
        sequences = list(sequences)
        if type(self).represent is not Breaker.represent:
            return [self.represent(sequence, curve_kind=curve_kind) for sequence in sequences]
        boundaries = self.break_indices_many(sequences)
        return FunctionSeriesRepresentation.from_breakpoints_many(
            sequences,
            boundaries,
            curve_kind=curve_kind or self.curve_kind,
            epsilon=self.epsilon,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(epsilon={self.epsilon:g})"


# ----------------------------------------------------------------------
# Property checkers
# ----------------------------------------------------------------------


def is_partition(boundaries: Boundaries, length: int) -> bool:
    """Whether windows tile ``range(length)`` exactly, in order."""
    if not boundaries:
        return False
    if boundaries[0][0] != 0 or boundaries[-1][1] != length - 1:
        return False
    for (_, prev_end), (next_start, _) in zip(boundaries, boundaries[1:]):
        if next_start != prev_end + 1:
            return False
    return all(start <= end for start, end in boundaries)


def fragmentation_ratio(boundaries: Boundaries) -> float:
    """Fraction of segments of length <= 2 (lower is better).

    The paper requires "most resulting subsequences should be of length
    > 2" for the representation to compress at all.
    """
    if not boundaries:
        raise SegmentationError("no segments")
    short = sum(1 for start, end in boundaries if end - start + 1 <= 2)
    return short / len(boundaries)


def verify_tolerance(
    sequence: Sequence,
    boundaries: Boundaries,
    curve_kind: str,
    epsilon: float,
) -> bool:
    """Whether every window is within ``epsilon`` of its fitted curve."""
    fitter = get_fitter(curve_kind)
    for start, end in boundaries:
        piece = sequence.subsequence(start, end)
        if len(piece) < 2:
            continue
        if fitter(piece).max_deviation(piece) > epsilon + 1e-9:
            return False
    return True


def breakpoints_correspond(
    first: TypingSequence[int],
    second: TypingSequence[int],
    index_budget: int,
) -> bool:
    """Whether two breakpoint lists align within ``index_budget`` positions.

    Encodes the paper's robustness condition: adding or deleting
    behaviour-preserving elements "does no more than shift the
    breakpoints by at most the number of elements added/deleted".
    """
    if len(first) != len(second):
        return False
    return all(abs(a - b) <= index_budget for a, b in zip(first, second))
