"""Online breaking algorithms (paper Section 5.1, "Online algorithms").

The paper studied "one family of online algorithms, based on sliding a
window, interpolating a polynomial through it, and breaking the
sequence whenever it deviates significantly from the polynomial", noting
their merit (no post-processing pass) and their deficiency (possible
loss of accuracy versus the offline algorithms).

:class:`SlidingWindowBreaker` is that family: it consumes samples one at
a time, keeps a polynomial fitted over a trailing window of the current
segment, and closes the segment when the incoming sample deviates from
the polynomial's extrapolation by more than ``epsilon``.
"""

from __future__ import annotations

from repro.core.errors import SegmentationError
from repro.core.sequence import Sequence
from repro.functions.polynomial import fit_polynomial
from repro.segmentation.base import Boundaries, Breaker

__all__ = ["SlidingWindowBreaker", "OnlineSession", "IncrementalRegressionBreaker"]


class OnlineSession:
    """Incremental state for one pass over a stream of samples."""

    def __init__(self, breaker: "SlidingWindowBreaker") -> None:
        self._breaker = breaker
        self._times: list[float] = []
        self._values: list[float] = []
        self._segment_start = 0
        self._closed: Boundaries = []
        self._count = 0

    def feed(self, time: float, value: float) -> bool:
        """Consume one sample; returns True when a segment just closed."""
        breaker = self._breaker
        closed = False
        window_len = len(self._times)
        if window_len >= breaker.min_points:
            window_seq = Sequence(self._times, self._values)
            poly = fit_polynomial(window_seq, breaker.degree)
            predicted = float(poly(time))
            if abs(predicted - value) > breaker.epsilon:
                self._closed.append((self._segment_start, self._count - 1))
                self._segment_start = self._count
                self._times = []
                self._values = []
                closed = True
        self._times.append(time)
        self._values.append(value)
        if len(self._times) > breaker.window:
            # Slide: the polynomial tracks only the trailing window.
            self._times.pop(0)
            self._values.pop(0)
        self._count += 1
        return closed

    def finish(self) -> Boundaries:
        """Close the trailing segment and return all boundaries."""
        if self._count == 0:
            raise SegmentationError("no samples were fed")
        if self._segment_start <= self._count - 1:
            self._closed.append((self._segment_start, self._count - 1))
        return list(self._closed)


class IncrementalRegressionBreaker(Breaker):
    """Online breaking with an exact running regression line.

    The second member of the paper's online family ("we are still
    studying algorithms using a related approach"): instead of a
    trailing window, the regression line over the *entire current
    segment* is maintained incrementally from running sums (O(1) per
    sample).  A segment closes when the incoming sample deviates from
    the current line's extrapolation by more than ``epsilon``.

    Compared with :class:`SlidingWindowBreaker` this never forgets the
    segment's early samples, so slow drifts accumulate into a break
    instead of being tracked window by window.
    """

    curve_kind = "regression"

    def __init__(self, epsilon: float, min_points: int = 2) -> None:
        super().__init__(epsilon)
        if min_points < 2:
            raise SegmentationError("min_points must be at least 2")
        self.min_points = int(min_points)

    def break_indices(self, sequence: Sequence) -> Boundaries:
        boundaries: Boundaries = []
        start = 0
        # Running sums over the current segment.
        n = 0
        s_t = s_v = s_tt = s_tv = 0.0
        for i, (t, v) in enumerate(sequence):
            if n >= self.min_points:
                denom = n * s_tt - s_t * s_t
                if denom != 0.0:
                    slope = (n * s_tv - s_t * s_v) / denom
                    intercept = (s_v - slope * s_t) / n
                else:
                    slope = 0.0
                    intercept = s_v / n
                predicted = slope * t + intercept
                if abs(predicted - v) > self.epsilon:
                    boundaries.append((start, i - 1))
                    start = i
                    n = 0
                    s_t = s_v = s_tt = s_tv = 0.0
            n += 1
            s_t += t
            s_v += v
            s_tt += t * t
            s_tv += t * v
        boundaries.append((start, len(sequence) - 1))
        return boundaries


class SlidingWindowBreaker(Breaker):
    """Break online when a sample escapes the window polynomial.

    Parameters
    ----------
    epsilon:
        Deviation tolerance between the incoming sample and the value
        extrapolated from the window polynomial.
    window:
        Number of trailing samples the polynomial is fitted over.
    degree:
        Polynomial degree (1 reproduces the paper's linear experiments).
    """

    curve_kind = "regression"

    def __init__(self, epsilon: float, window: int = 8, degree: int = 1) -> None:
        super().__init__(epsilon)
        if window < 2:
            raise SegmentationError("window must cover at least two samples")
        if degree < 0:
            raise SegmentationError("degree must be non-negative")
        self.window = int(window)
        self.degree = int(degree)
        self.min_points = max(degree + 1, 2)

    def session(self) -> OnlineSession:
        """Start an incremental session (streaming API)."""
        return OnlineSession(self)

    def break_indices(self, sequence: Sequence) -> Boundaries:
        session = self.session()
        for time, value in sequence:
            session.feed(time, value)
        return session.finish()
