"""Online breaking algorithms (paper Section 5.1, "Online algorithms").

The paper studied "one family of online algorithms, based on sliding a
window, interpolating a polynomial through it, and breaking the
sequence whenever it deviates significantly from the polynomial", noting
their merit (no post-processing pass) and their deficiency (possible
loss of accuracy versus the offline algorithms).

:class:`SlidingWindowBreaker` is that family: it consumes samples one at
a time, keeps a polynomial fitted over a trailing window of the current
segment, and closes the segment when the incoming sample deviates from
the polynomial's extrapolation by more than ``epsilon``.

Both online breakers share the property the streaming append path
(:meth:`repro.query.database.SequenceDatabase.append`) is built on:
every per-sample decision depends only on the samples of the *current
open segment*.  When trailing samples are appended, rescanning from the
last closed boundary therefore reproduces the from-scratch break bit
for bit — :meth:`~repro.segmentation.base.Breaker.extend_indices` costs
the tail, not the sequence.  :class:`IncrementalRegressionBreaker`
additionally batches those rescans into a lock-step *frontier* (one
vectorized round per sample position across every appended sequence),
the online counterpart of the offline ``break_frontier`` kernel.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.errors import SegmentationError
from repro.core.sequence import Sequence
from repro.functions.polynomial import fit_polynomial
from repro.segmentation.base import Boundaries, Breaker

__all__ = ["SlidingWindowBreaker", "OnlineSession", "IncrementalRegressionBreaker"]


def _resume_index(previous_boundaries: Boundaries) -> "int | None":
    """Start of the trailing open segment in a previous break, or None.

    The previous break's last window was closed artificially at the old
    final sample; on the extended sequence that segment is still open,
    so an online rescan resumes at its start with fresh state — exactly
    the state the from-scratch scan holds at that sample.
    """
    if not previous_boundaries:
        return None
    return int(previous_boundaries[-1][0])


class OnlineSession:
    """Incremental state for one pass over a stream of samples."""

    def __init__(self, breaker: "SlidingWindowBreaker") -> None:
        self._breaker = breaker
        self._times: list[float] = []
        self._values: list[float] = []
        self._segment_start = 0
        self._closed: Boundaries = []
        self._count = 0

    def feed(self, time: float, value: float) -> bool:
        """Consume one sample; returns True when a segment just closed."""
        breaker = self._breaker
        closed = False
        window_len = len(self._times)
        if window_len >= breaker.min_points:
            window_seq = Sequence(self._times, self._values)
            poly = fit_polynomial(window_seq, breaker.degree)
            predicted = float(poly(time))
            if abs(predicted - value) > breaker.epsilon:
                self._closed.append((self._segment_start, self._count - 1))
                self._segment_start = self._count
                self._times = []
                self._values = []
                closed = True
        self._times.append(time)
        self._values.append(value)
        if len(self._times) > breaker.window:
            # Slide: the polynomial tracks only the trailing window.
            self._times.pop(0)
            self._values.pop(0)
        self._count += 1
        return closed

    def finish(self) -> Boundaries:
        """Close the trailing segment and return all boundaries."""
        if self._count == 0:
            raise SegmentationError("no samples were fed")
        if self._segment_start <= self._count - 1:
            self._closed.append((self._segment_start, self._count - 1))
        return list(self._closed)


class IncrementalRegressionBreaker(Breaker):
    """Online breaking with an exact running regression line.

    The second member of the paper's online family ("we are still
    studying algorithms using a related approach"): instead of a
    trailing window, the regression line over the *entire current
    segment* is maintained incrementally from running sums (O(1) per
    sample).  A segment closes when the incoming sample deviates from
    the current line's extrapolation by more than ``epsilon``.

    Compared with :class:`SlidingWindowBreaker` this never forgets the
    segment's early samples, so slow drifts accumulate into a break
    instead of being tracked window by window.
    """

    curve_kind = "regression"

    def __init__(self, epsilon: float, min_points: int = 2) -> None:
        super().__init__(epsilon)
        if min_points < 2:
            raise SegmentationError("min_points must be at least 2")
        self.min_points = int(min_points)

    def break_indices(self, sequence: Sequence) -> Boundaries:
        return self._scan(sequence.times, sequence.values, 0)

    def _scan(
        self,
        times: np.ndarray,
        values: np.ndarray,
        first: int,
        start: "int | None" = None,
        n: int = 0,
        s_t: float = 0.0,
        s_v: float = 0.0,
        s_tt: float = 0.0,
        s_tv: float = 0.0,
    ) -> Boundaries:
        """The running-sums scan from sample ``first``.

        State defaults to a fresh segment opening at ``first``; the
        frontier kernel passes mid-segment state to finish straggler
        lanes scalar-ly (float64 scalars convert to Python floats
        exactly, so the continuation is bit-identical).
        """
        boundaries: Boundaries = []
        if start is None:
            start = first
        length = len(times)
        for i in range(first, length):
            t = float(times[i])
            v = float(values[i])
            if n >= self.min_points:
                denom = n * s_tt - s_t * s_t
                if denom != 0.0:
                    slope = (n * s_tv - s_t * s_v) / denom
                    intercept = (s_v - slope * s_t) / n
                else:
                    slope = 0.0
                    intercept = s_v / n
                predicted = slope * t + intercept
                if abs(predicted - v) > self.epsilon:
                    boundaries.append((start, i - 1))
                    start = i
                    n = 0
                    s_t = s_v = s_tt = s_tv = 0.0
            n += 1
            s_t += t
            s_v += v
            s_tt += t * t
            s_tv += t * v
        boundaries.append((start, length - 1))
        return boundaries

    def extend_indices(
        self, sequence: Sequence, previous_boundaries: Boundaries
    ) -> Boundaries:
        """Suffix-only rescan: resume at the trailing open segment.

        The scan's state depends only on samples since the current
        segment start, so restarting there with fresh sums reproduces
        the from-scratch break of the extended sequence bit for bit.
        """
        resume = _resume_index(previous_boundaries)
        if resume is None:
            return self.break_indices(sequence)
        if not 0 <= resume < len(sequence):
            raise SegmentationError(
                f"previous boundaries end at {resume}, outside the extended "
                f"sequence of length {len(sequence)}"
            )
        return list(previous_boundaries[:-1]) + self._scan(
            sequence.times, sequence.values, resume
        )

    #: Below this many live lanes the vectorized round is all overhead;
    #: stragglers finish through the scalar scan with carried-over state.
    _MIN_FRONTIER = 8

    def extend_indices_many(
        self, items: "Iterable[tuple[Sequence, Boundaries]]"
    ) -> "list[Boundaries]":
        """Frontier-batched suffix rescans: all appends in lock-step.

        Round ``r`` advances every *live* lane's scan by one sample with
        vectorized state updates (running sums, regression prediction,
        deviation test) — the online counterpart of the offline
        ``break_frontier`` recursion.  Suffixes stay as one flat
        concatenated array (no padding to the longest lane), lanes
        retire from the frontier as their suffixes end, and once fewer
        than ``_MIN_FRONTIER`` lanes remain they finish through the
        scalar scan continuing from their vector state — so cost and
        memory are O(sum of suffix lengths), not O(lanes x longest).
        Elementwise float64 arithmetic matches the scalar scan's
        operation order exactly, so the boundaries are identical to
        per-sequence :meth:`extend_indices`.
        """
        items = list(items)
        if len(items) <= 2:
            # Frontier setup does not pay for itself on tiny batches.
            return [self.extend_indices(sequence, previous) for sequence, previous in items]
        n_items = len(items)
        resumes = np.empty(n_items, dtype=np.int64)
        prefixes: "list[Boundaries]" = []
        suffix_times: "list[np.ndarray]" = []
        suffix_values: "list[np.ndarray]" = []
        for j, (sequence, previous) in enumerate(items):
            resume = _resume_index(previous)
            if resume is None:
                resume = 0
                prefixes.append([])
            else:
                if not 0 <= resume < len(sequence):
                    raise SegmentationError(
                        f"previous boundaries end at {resume}, outside the extended "
                        f"sequence of length {len(sequence)}"
                    )
                prefixes.append(list(previous[:-1]))
            resumes[j] = resume
            suffix_times.append(np.asarray(sequence.times[resume:], dtype=np.float64))
            suffix_values.append(np.asarray(sequence.values[resume:], dtype=np.float64))

        suffix_lengths = np.array([len(t) for t in suffix_times], dtype=np.int64)
        flat_times = np.concatenate(suffix_times)
        flat_values = np.concatenate(suffix_values)
        lane_offsets = np.zeros(n_items, dtype=np.int64)
        np.cumsum(suffix_lengths[:-1], out=lane_offsets[1:])

        seg_start = resumes.copy()
        n_arr = np.zeros(n_items, dtype=np.int64)
        s_t = np.zeros(n_items)
        s_v = np.zeros(n_items)
        s_tt = np.zeros(n_items)
        s_tv = np.zeros(n_items)
        closed: "list[Boundaries]" = [[] for _ in range(n_items)]

        live = np.arange(n_items, dtype=np.int64)
        r = 0
        while len(live) >= self._MIN_FRONTIER:
            rows = lane_offsets[live] + r
            t = flat_times[rows]
            v = flat_values[rows]
            n_local = n_arr[live]
            st_local = s_t[live]
            sv_local = s_v[live]
            stt_local = s_tt[live]
            stv_local = s_tv[live]
            fit = n_local >= self.min_points
            if bool(fit.any()):
                n_f = n_local.astype(np.float64)
                denom = n_f * stt_local - st_local * st_local
                nz = denom != 0.0
                safe_denom = np.where(nz, denom, 1.0)
                safe_n = np.where(n_f == 0.0, 1.0, n_f)
                slope = np.where(nz, (n_f * stv_local - st_local * sv_local) / safe_denom, 0.0)
                intercept = np.where(
                    nz, (sv_local - slope * st_local) / safe_n, sv_local / safe_n
                )
                predicted = slope * t + intercept
                breaks = fit & (np.abs(predicted - v) > self.epsilon)
                if bool(breaks.any()):
                    broken = live[breaks]
                    for j in broken:
                        closed[j].append((int(seg_start[j]), int(resumes[j]) + r - 1))
                    seg_start[broken] = resumes[broken] + r
                    n_local[breaks] = 0
                    st_local[breaks] = 0.0
                    sv_local[breaks] = 0.0
                    stt_local[breaks] = 0.0
                    stv_local[breaks] = 0.0
            n_arr[live] = n_local + 1
            s_t[live] = st_local + t
            s_v[live] = sv_local + v
            s_tt[live] = stt_local + t * t
            s_tv[live] = stv_local + t * v
            r += 1
            alive = suffix_lengths[live] > r
            if not bool(alive.all()):
                live = live[alive]

        # Straggler lanes: continue each scalar scan from its carried
        # state (same floats, same operation order — bit-identical).
        scalar_tails: "dict[int, Boundaries]" = {}
        for j in live:
            local = self._scan(
                suffix_times[j],
                suffix_values[j],
                r,
                start=int(seg_start[j] - resumes[j]),
                n=int(n_arr[j]),
                s_t=float(s_t[j]),
                s_v=float(s_v[j]),
                s_tt=float(s_tt[j]),
                s_tv=float(s_tv[j]),
            )
            offset = int(resumes[j])
            scalar_tails[int(j)] = [(a + offset, b + offset) for a, b in local]

        results: "list[Boundaries]" = []
        for j in range(n_items):
            tail = scalar_tails.get(j)
            if tail is None:
                tail = [(int(seg_start[j]), int(resumes[j] + suffix_lengths[j]) - 1)]
            results.append(prefixes[j] + closed[j] + tail)
        return results


class SlidingWindowBreaker(Breaker):
    """Break online when a sample escapes the window polynomial.

    Parameters
    ----------
    epsilon:
        Deviation tolerance between the incoming sample and the value
        extrapolated from the window polynomial.
    window:
        Number of trailing samples the polynomial is fitted over.
    degree:
        Polynomial degree (1 reproduces the paper's linear experiments).
    """

    curve_kind = "regression"

    def __init__(self, epsilon: float, window: int = 8, degree: int = 1) -> None:
        super().__init__(epsilon)
        if window < 2:
            raise SegmentationError("window must cover at least two samples")
        if degree < 0:
            raise SegmentationError("degree must be non-negative")
        self.window = int(window)
        self.degree = int(degree)
        self.min_points = max(degree + 1, 2)

    def session(self) -> OnlineSession:
        """Start an incremental session (streaming API)."""
        return OnlineSession(self)

    def break_indices(self, sequence: Sequence) -> Boundaries:
        session = self.session()
        for time, value in sequence:
            session.feed(time, value)
        return session.finish()

    def extend_indices(
        self, sequence: Sequence, previous_boundaries: Boundaries
    ) -> Boundaries:
        """Suffix-only rescan: re-feed from the trailing open segment.

        The window is cleared whenever a segment closes, so a fresh
        session fed from the last boundary start holds exactly the
        state the from-scratch scan holds there; its (rebased)
        boundaries complete the previous break bit for bit.
        """
        resume = _resume_index(previous_boundaries)
        if resume is None:
            return self.break_indices(sequence)
        if not 0 <= resume < len(sequence):
            raise SegmentationError(
                f"previous boundaries end at {resume}, outside the extended "
                f"sequence of length {len(sequence)}"
            )
        session = self.session()
        times = sequence.times
        values = sequence.values
        for i in range(resume, len(sequence)):
            session.feed(float(times[i]), float(values[i]))
        tail = session.finish()
        return list(previous_boundaries[:-1]) + [
            (start + resume, end + resume) for start, end in tail
        ]
