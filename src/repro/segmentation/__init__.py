"""Breaking algorithms (paper Sections 4.3 and 5).

The offline family instantiates the recursive curve-fitting template of
paper Figure 8 with different curve types; the online family slides a
window polynomial; the dynamic-programming breaker is the slow optimal
baseline the paper compares against.
"""

from repro.segmentation.base import (
    Boundaries,
    Breaker,
    breakpoints_correspond,
    fragmentation_ratio,
    is_partition,
    verify_tolerance,
)
from repro.segmentation.bezier_breaker import BezierBreaker
from repro.segmentation.dynamic import DynamicProgrammingBreaker
from repro.segmentation.interpolation import InterpolationBreaker
from repro.segmentation.offline import RecursiveCurveFitBreaker, break_frontier
from repro.segmentation.online import (
    IncrementalRegressionBreaker,
    OnlineSession,
    SlidingWindowBreaker,
)
from repro.segmentation.regression import RegressionBreaker

__all__ = [
    "Boundaries",
    "Breaker",
    "RecursiveCurveFitBreaker",
    "break_frontier",
    "InterpolationBreaker",
    "RegressionBreaker",
    "BezierBreaker",
    "DynamicProgrammingBreaker",
    "SlidingWindowBreaker",
    "IncrementalRegressionBreaker",
    "OnlineSession",
    "is_partition",
    "fragmentation_ratio",
    "verify_tolerance",
    "breakpoints_correspond",
]
