"""Bézier-curve breaker — the paper's modified Schneider algorithm.

The Figure-8 template instantiated with cubic Bézier curves fitted by
Schneider's algorithm (chord-length parameterization plus
Newton–Raphson refinement), with the paper's two modifications: no
continuity between consecutive curves, and the split point assigned to
exactly one side.  Bézier segments suit graphics-flavoured queries about
"the way sequences look" and generalize to non-functional and
multidimensional sequences; for plain time series the linear breakers
are faster and were preferred by the paper.
"""

from __future__ import annotations

from repro.segmentation.offline import RecursiveCurveFitBreaker

__all__ = ["BezierBreaker"]


class BezierBreaker(RecursiveCurveFitBreaker):
    """Break where a fitted cubic Bézier deviates beyond epsilon."""

    def __init__(self, epsilon: float, split_side: str = "closer") -> None:
        super().__init__(epsilon, curve_kind="bezier", split_side=split_side)
