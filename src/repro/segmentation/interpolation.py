"""The linear-interpolation breaker — the paper's recommended algorithm.

Instantiates the Figure-8 template with the endpoint interpolation
line.  As Section 5.1 explains, a non-vertical line through a
subsequence leaves extremum points farthest from it, so the algorithm
"effectively breaks sequences at extremum points": every recursion peels
off a maximum above the line or a minimum below it, and after the
recursion those extrema are segment endpoints.  Consequences the paper
highlights, all tested in this repository:

* breaks land at (prominent) extrema — minor wiggles below ``epsilon``
  never split a segment, so little local extrema are ignored;
* no fragmentation "unless it is justified by extremely abrupt changes";
* only endpoints are needed per fit, so the run time is
  ``O(number_of_peaks * n)`` rather than the dynamic-programming
  baseline's quadratic cost.
"""

from __future__ import annotations

from repro.segmentation.offline import RecursiveCurveFitBreaker

__all__ = ["InterpolationBreaker"]


class InterpolationBreaker(RecursiveCurveFitBreaker):
    """Break at extrema using endpoint interpolation lines."""

    def __init__(self, epsilon: float, split_side: str = "closer") -> None:
        super().__init__(epsilon, curve_kind="interpolation", split_side=split_side)
