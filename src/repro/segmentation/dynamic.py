"""Dynamic-programming segmentation — the paper's slow optimal baseline.

Section 5.1 mentions "another approach we have taken, using dynamic
programming, minimizing a cost function of the form
``a * (#segments) + b * (distance from approximating line)``" and notes
it is much slower than the interpolation breaker.  This module
implements that baseline exactly:

* the per-segment distance is the sum of squared errors against the
  segment's least-squares regression line, computed in O(1) per
  candidate window from prefix sums, giving an O(n^2) algorithm overall
  (already asymptotically slower than the interpolation breaker's
  ``O(peaks * n)``);
* the DP chooses the partition minimizing the total cost, so it is an
  *optimal* reference against which the greedy breakers' segment counts
  and errors can be compared.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import SegmentationError
from repro.core.sequence import Sequence
from repro.segmentation.base import Boundaries, Breaker

__all__ = ["DynamicProgrammingBreaker", "regression_sse_table_prefix"]


class _PrefixSums:
    """Prefix sums enabling O(1) regression SSE for any index window."""

    def __init__(self, times: np.ndarray, values: np.ndarray) -> None:
        self.n = len(times)
        self.s_t = np.concatenate([[0.0], np.cumsum(times)])
        self.s_v = np.concatenate([[0.0], np.cumsum(values)])
        self.s_tt = np.concatenate([[0.0], np.cumsum(times * times)])
        self.s_tv = np.concatenate([[0.0], np.cumsum(times * values)])
        self.s_vv = np.concatenate([[0.0], np.cumsum(values * values)])

    def sse(self, i: int, j: int) -> float:
        """Regression-line SSE over the inclusive window ``[i, j]``."""
        n = j - i + 1
        if n < 2:
            return 0.0
        st = self.s_t[j + 1] - self.s_t[i]
        sv = self.s_v[j + 1] - self.s_v[i]
        stt = self.s_tt[j + 1] - self.s_tt[i]
        stv = self.s_tv[j + 1] - self.s_tv[i]
        svv = self.s_vv[j + 1] - self.s_vv[i]
        t_var = stt - st * st / n
        v_var = svv - sv * sv / n
        covar = stv - st * sv / n
        if t_var <= 0.0:
            return max(v_var, 0.0)
        residual = v_var - covar * covar / t_var
        return max(float(residual), 0.0)


def regression_sse_table_prefix(sequence: Sequence) -> _PrefixSums:
    """Expose the prefix-sum helper (used by tests to validate the SSE)."""
    return _PrefixSums(sequence.times, sequence.values)


class DynamicProgrammingBreaker(Breaker):
    """Optimal segmentation under ``a * segments + b * error``.

    Parameters
    ----------
    segment_penalty:
        The ``a`` coefficient — cost charged per segment; larger values
        produce fewer, coarser segments.
    error_weight:
        The ``b`` coefficient multiplying the summed regression SSE.
    epsilon:
        Retained for interface parity with the greedy breakers and used
        when converting the result into a representation; the DP itself
        optimizes the explicit cost, not a max-deviation bound.
    """

    curve_kind = "regression"

    def __init__(self, segment_penalty: float = 1.0, error_weight: float = 1.0, epsilon: float = 0.0) -> None:
        super().__init__(epsilon)
        if segment_penalty <= 0:
            raise SegmentationError("segment_penalty must be positive")
        if error_weight < 0:
            raise SegmentationError("error_weight must be non-negative")
        self.segment_penalty = float(segment_penalty)
        self.error_weight = float(error_weight)

    def break_indices(self, sequence: Sequence) -> Boundaries:
        n = len(sequence)
        if n == 1:
            return [(0, 0)]
        prefix = _PrefixSums(sequence.times, sequence.values)
        # best[j] = minimal cost of segmenting samples [0, j-1];
        # choice[j] = start index of the last segment in that optimum.
        best = np.full(n + 1, np.inf)
        best[0] = 0.0
        choice = np.zeros(n + 1, dtype=int)
        for j in range(1, n + 1):
            for i in range(j):
                cost = best[i] + self.segment_penalty + self.error_weight * prefix.sse(i, j - 1)
                if cost < best[j]:
                    best[j] = cost
                    choice[j] = i
        boundaries: Boundaries = []
        j = n
        while j > 0:
            i = int(choice[j])
            boundaries.append((i, j - 1))
            j = i
        boundaries.reverse()
        return boundaries

    def total_cost(self, sequence: Sequence, boundaries: Boundaries) -> float:
        """Evaluate the DP objective for any candidate partition."""
        prefix = _PrefixSums(sequence.times, sequence.values)
        error = sum(prefix.sse(i, j) for i, j in boundaries)
        return self.segment_penalty * len(boundaries) + self.error_weight * error
