"""Linear-regression breaker.

The Figure-8 template instantiated with least-squares regression lines.
The paper implemented this variant alongside interpolation and found the
interpolation version "simpler and produces better results"
(Section 5.1); this implementation exists both for completeness and so
benchmarks can reproduce that comparison.
"""

from __future__ import annotations

from repro.segmentation.offline import RecursiveCurveFitBreaker

__all__ = ["RegressionBreaker"]


class RegressionBreaker(RecursiveCurveFitBreaker):
    """Break where the least-squares line deviates beyond epsilon."""

    def __init__(self, epsilon: float, split_side: str = "closer") -> None:
        super().__init__(epsilon, curve_kind="regression", split_side=split_side)
