"""The offline recursive curve-fitting template (paper Figure 8).

This is the paper's generalization of Schneider's Bézier-fitting
algorithm to an arbitrary curve type ``c``:

1. Fit a curve of type ``c`` to ``S``.
2. Find the point of maximum deviation from the curve.
3. If the deviation is below the tolerance, ``S`` is one segment.
4. Otherwise fit curves to the subsequences on either side of the
   point, associate the point with whichever side's curve it is closer
   to (the paper's adjustment — steps 4a–4c), and recurse.

Unlike the original Schneider algorithm, no continuity is imposed
between neighbouring curves and the split point belongs to exactly one
subsequence (both modifications are called out in Section 5.1).

Two execution strategies share the algorithm:

* the scalar path (:meth:`RecursiveCurveFitBreaker.break_indices`)
  recurses one window at a time, for any registered curve kind;
* the frontier-batched path (:func:`break_frontier`, used by
  :meth:`RecursiveCurveFitBreaker.break_indices_many` when the curve
  kind has a chord kernel) keeps every active ``(sequence, start,
  end)`` window of a whole batch in flat NumPy arrays and runs one
  vectorized fit + per-window ``reduceat`` deviation reduction per
  recursion round.  Windows that converge retire from the frontier;
  the rest split and re-enter.  Every floating-point expression is the
  elementwise image of the scalar path's, so the resulting boundaries
  are bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.core.errors import FittingError, SegmentationError
from repro.core.sequence import Sequence
from repro.functions.fitting import get_chord_kernel, get_fitter
from repro.segmentation.base import Boundaries, Breaker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.functions.fitting import ChordKernel

__all__ = ["RecursiveCurveFitBreaker", "break_frontier"]

#: Sentinel distinguishing "window never fitted" from "fit failed".
_MISSING = object()


class RecursiveCurveFitBreaker(Breaker):
    """Figure-8 template parameterized by a registered curve kind.

    Parameters
    ----------
    epsilon:
        Maximum tolerated pointwise deviation between a subsequence and
        its fitted curve (the ``delta`` of paper Figure 8).
    curve_kind:
        Any kind accepted by :func:`repro.functions.fitting.get_fitter`.
    split_side:
        ``"closer"`` applies the paper's steps 4a–4c (the split point
        joins whichever side fits it better); ``"left"`` and ``"right"``
        are ablation modes that always assign it to one side.
    """

    #: Reuse the ``"closer"`` decision's left/right trial fits when the
    #: matching child window is popped from the stack, instead of
    #: refitting it from scratch.  Class-level so tests can flip it off
    #: to measure the saving; the boundaries are identical either way
    #: (the fits are deterministic).
    reuse_trial_fits: bool = True

    def __init__(self, epsilon: float, curve_kind: str = "interpolation", split_side: str = "closer") -> None:
        super().__init__(epsilon)
        if split_side not in ("closer", "left", "right"):
            raise SegmentationError(f"unknown split_side {split_side!r}")
        self.curve_kind = curve_kind
        self.split_side = split_side
        self._fitter = get_fitter(curve_kind)

    def break_indices(self, sequence: Sequence) -> Boundaries:
        segments: Boundaries = []
        # Explicit stack instead of recursion: ECG-scale inputs with a
        # tight epsilon can split thousands of times.
        stack = [(0, len(sequence) - 1)]
        resolved: list[tuple[int, int]] = []
        # Per-call fit memo: the "closer" side decision trial-fits both
        # candidate child windows; when a child window is later popped,
        # its fit is taken from here instead of being recomputed.
        fit_memo: "dict[tuple[int, int], object] | None" = (
            {} if self.reuse_trial_fits else None
        )
        while stack:
            start, end = stack.pop()
            split = self._split_point(sequence, start, end, fit_memo)
            if split is None:
                resolved.append((start, end))
                continue
            left_end, right_start = split
            # Push right first so the left half is processed first,
            # keeping the traversal in index order is not required —
            # resolved windows are sorted below.
            stack.append((right_start, end))
            stack.append((start, left_end))
        segments = sorted(resolved)
        return segments

    def break_indices_many(self, sequences: "Iterable[Sequence]") -> "list[Boundaries]":
        """Batch breaking: frontier-vectorized when the curve allows it.

        Curve kinds with a registered chord kernel (the endpoint
        interpolation line) break the whole batch through
        :func:`break_frontier`; all other kinds — and any third-party
        registered fitter — fall back to the scalar per-sequence loop
        automatically.  Boundaries are identical on both paths.
        """
        sequences = list(sequences)
        kernel = get_chord_kernel(self.curve_kind)
        if kernel is None or not sequences:
            return super().break_indices_many(sequences)
        return break_frontier(sequences, kernel, self.epsilon, self.split_side)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _split_point(
        self,
        sequence: Sequence,
        start: int,
        end: int,
        fit_memo: "dict[tuple[int, int], object] | None" = None,
    ) -> "tuple[int, int] | None":
        """Where to split ``[start, end]``, or ``None`` if it converged.

        Returns ``(left_end, right_start)`` index pair; the split sample
        belongs to exactly one side.
        """
        n = end - start + 1
        if n <= 2:
            return None
        piece = sequence.window(start, end)
        cached = _MISSING if fit_memo is None else fit_memo.pop((start, end), _MISSING)
        if cached is _MISSING:
            try:
                curve = self._fitter(piece)
            except FittingError:
                return None
        elif cached is None:
            # The trial fit already failed on this exact window.
            return None
        else:
            curve = cached
        deviation = curve.max_deviation(piece)
        if deviation <= self.epsilon:
            return None

        worst = start + curve.argmax_deviation(piece)
        # The worst point must be interior so both sides are non-empty.
        worst = min(max(worst, start + 1), end - 1)
        side = self._choose_side(sequence, start, end, worst, fit_memo)
        if side == "left":
            return worst, worst + 1
        return worst - 1, worst

    def _choose_side(
        self,
        sequence: Sequence,
        start: int,
        end: int,
        worst: int,
        fit_memo: "dict[tuple[int, int], object] | None" = None,
    ) -> str:
        """Paper steps 4a–4c: which subsequence owns the split sample."""
        if self.split_side != "closer":
            return self.split_side
        t, v = sequence[worst]
        left_fit = self._try_fit(sequence, start, worst - 1)
        right_fit = self._try_fit(sequence, worst, end)
        if fit_memo is not None:
            # Whichever side wins, at least one trial window becomes a
            # child verbatim ("right" reuses both); remember the fits so
            # popping the child does not repeat them.
            fit_memo[(start, worst - 1)] = left_fit
            fit_memo[(worst, end)] = right_fit
        if left_fit is None and right_fit is None:
            return "right"
        if left_fit is None:
            return "right"
        if right_fit is None:
            return "left"
        dist_left = abs(float(left_fit(t)) - v)
        dist_right = abs(float(right_fit(t)) - v)
        return "left" if dist_left <= dist_right else "right"

    def _try_fit(self, sequence: Sequence, start: int, end: int):
        if end < start:
            return None
        piece = sequence.window(start, end)
        if len(piece) < 2:
            return None
        try:
            return self._fitter(piece)
        except FittingError:
            return None


# ----------------------------------------------------------------------
# Frontier-batched breaking
# ----------------------------------------------------------------------


def break_frontier(
    sequences: "list[Sequence]",
    chord_kernel: "ChordKernel",
    epsilon: float,
    split_side: str,
) -> "list[Boundaries]":
    """Break every sequence of a batch in lock-step frontier rounds.

    All active ``(owner, start, end)`` windows across the batch live in
    flat int64 arrays over one concatenated time/value worklist.  Each
    round fits every window's chord at once (``chord_kernel`` returns
    the line-coefficient columns), evaluates the point-to-chord
    residuals over the flattened window points in one pass, and reduces
    them per window with ``np.maximum.reduceat``.  Windows at or below
    the tolerance retire; the rest locate their first point of maximum
    deviation (``minimum.reduceat`` over masked positions — the same
    first-occurrence tie-break as ``np.argmax``), pick a side exactly
    like :meth:`RecursiveCurveFitBreaker._choose_side`, and split into
    two child windows for the next round.

    Every arithmetic expression is the elementwise twin of the scalar
    path's, so the returned boundaries are bit-identical to calling
    ``break_indices`` per sequence.
    """
    if split_side not in ("closer", "left", "right"):
        raise SegmentationError(f"unknown split_side {split_side!r}")
    n_seqs = len(sequences)
    lengths = np.array([len(s) for s in sequences], dtype=np.int64)
    seq_offsets = np.zeros(n_seqs, dtype=np.int64)
    np.cumsum(lengths[:-1], out=seq_offsets[1:])
    times = np.concatenate([s.times for s in sequences])
    values = np.concatenate([s.values for s in sequences])

    owners = np.arange(n_seqs, dtype=np.int64)
    starts = np.zeros(n_seqs, dtype=np.int64)
    ends = lengths - 1
    resolved_owners: "list[np.ndarray]" = []
    resolved_starts: "list[np.ndarray]" = []
    resolved_ends: "list[np.ndarray]" = []

    def retire(mask: np.ndarray) -> None:
        resolved_owners.append(owners[mask])
        resolved_starts.append(starts[mask])
        resolved_ends.append(ends[mask])

    while owners.size:
        window_lengths = ends - starts + 1
        # Windows of one or two points never split (the scalar template
        # returns before fitting them).
        trivial = window_lengths <= 2
        if bool(trivial.any()):
            retire(trivial)
            keep = ~trivial
            owners, starts, ends = owners[keep], starts[keep], ends[keep]
            window_lengths = window_lengths[keep]
        if not owners.size:
            break

        base = seq_offsets[owners]
        lo = base + starts
        hi = base + ends
        slope, intercept = chord_kernel(times[lo], values[lo], times[hi], values[hi])

        # Flatten every active window's points into one worklist.
        total = int(window_lengths.sum())
        offsets = np.zeros(owners.size, dtype=np.int64)
        np.cumsum(window_lengths[:-1], out=offsets[1:])
        flat = np.arange(total, dtype=np.int64) + np.repeat(lo - offsets, window_lengths)
        t = times[flat]
        residual = np.abs(
            values[flat]
            - (np.repeat(slope, window_lengths) * t + np.repeat(intercept, window_lengths))
        )
        deviation = np.maximum.reduceat(residual, offsets)

        converged = deviation <= epsilon
        if bool(converged.any()):
            retire(converged)
        split = ~converged
        if not bool(split.any()):
            break

        # First index of the per-window maximum — np.argmax's tie-break.
        positions = np.arange(total, dtype=np.int64)
        candidates = np.where(
            residual == np.repeat(deviation, window_lengths), positions, total
        )
        first = np.minimum.reduceat(candidates, offsets)
        worst = starts + (first - offsets)
        # The worst point must be interior so both sides are non-empty.
        worst = np.minimum(np.maximum(worst, starts + 1), ends - 1)

        owners_s = owners[split]
        starts_s = starts[split]
        ends_s = ends[split]
        worst_s = worst[split]
        side_left = _choose_side_columns(
            times, values, chord_kernel, split_side, base[split], starts_s, ends_s, worst_s
        )

        left_ends = np.where(side_left, worst_s, worst_s - 1)
        owners = np.concatenate([owners_s, owners_s])
        starts = np.concatenate([starts_s, left_ends + 1])
        ends = np.concatenate([left_ends, ends_s])

    all_owners = np.concatenate(resolved_owners) if resolved_owners else np.empty(0, np.int64)
    all_starts = np.concatenate(resolved_starts) if resolved_starts else np.empty(0, np.int64)
    all_ends = np.concatenate(resolved_ends) if resolved_ends else np.empty(0, np.int64)
    order = np.lexsort((all_starts, all_owners))
    all_starts = all_starts[order].tolist()
    all_ends = all_ends[order].tolist()
    counts = np.bincount(all_owners, minlength=n_seqs)

    boundaries: "list[Boundaries]" = []
    position = 0
    for count in counts.tolist():
        boundaries.append(
            list(zip(all_starts[position : position + count], all_ends[position : position + count]))
        )
        position += count
    return boundaries


def _choose_side_columns(
    times: np.ndarray,
    values: np.ndarray,
    chord_kernel: "ChordKernel",
    split_side: str,
    base: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    worst: np.ndarray,
) -> np.ndarray:
    """Vectorized steps 4a–4c: True where the split sample goes left.

    Mirrors :meth:`RecursiveCurveFitBreaker._choose_side` columnwise:
    trial chords over ``[start, worst-1]`` and ``[worst, end]``, the
    split sample joining whichever side's curve passes closer to it
    (ties go left).  A left window of fewer than two points cannot be
    fitted, which the scalar path resolves as "right"; the right window
    always spans at least two points, so it always fits.
    """
    if split_side == "left":
        return np.ones(len(starts), dtype=bool)
    if split_side == "right":
        return np.zeros(len(starts), dtype=bool)
    at_worst = base + worst
    t_worst = times[at_worst]
    v_worst = values[at_worst]
    has_left = worst - starts >= 2
    with np.errstate(divide="ignore", invalid="ignore"):
        # Degenerate left windows produce NaN/inf coefficients here;
        # ``has_left`` masks them out below, matching the scalar path's
        # "left fit is None -> right" rule.
        left_slope, left_intercept = chord_kernel(
            times[base + starts],
            values[base + starts],
            times[at_worst - 1],
            values[at_worst - 1],
        )
        right_slope, right_intercept = chord_kernel(
            t_worst, v_worst, times[base + ends], values[base + ends]
        )
        dist_left = np.abs(left_slope * t_worst + left_intercept - v_worst)
        dist_right = np.abs(right_slope * t_worst + right_intercept - v_worst)
        return has_left & (dist_left <= dist_right)
