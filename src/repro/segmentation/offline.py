"""The offline recursive curve-fitting template (paper Figure 8).

This is the paper's generalization of Schneider's Bézier-fitting
algorithm to an arbitrary curve type ``c``:

1. Fit a curve of type ``c`` to ``S``.
2. Find the point of maximum deviation from the curve.
3. If the deviation is below the tolerance, ``S`` is one segment.
4. Otherwise fit curves to the subsequences on either side of the
   point, associate the point with whichever side's curve it is closer
   to (the paper's adjustment — steps 4a–4c), and recurse.

Unlike the original Schneider algorithm, no continuity is imposed
between neighbouring curves and the split point belongs to exactly one
subsequence (both modifications are called out in Section 5.1).
"""

from __future__ import annotations

from repro.core.errors import FittingError, SegmentationError
from repro.core.sequence import Sequence
from repro.functions.fitting import get_fitter
from repro.segmentation.base import Boundaries, Breaker

__all__ = ["RecursiveCurveFitBreaker"]


class RecursiveCurveFitBreaker(Breaker):
    """Figure-8 template parameterized by a registered curve kind.

    Parameters
    ----------
    epsilon:
        Maximum tolerated pointwise deviation between a subsequence and
        its fitted curve (the ``delta`` of paper Figure 8).
    curve_kind:
        Any kind accepted by :func:`repro.functions.fitting.get_fitter`.
    split_side:
        ``"closer"`` applies the paper's steps 4a–4c (the split point
        joins whichever side fits it better); ``"left"`` and ``"right"``
        are ablation modes that always assign it to one side.
    """

    def __init__(self, epsilon: float, curve_kind: str = "interpolation", split_side: str = "closer") -> None:
        super().__init__(epsilon)
        if split_side not in ("closer", "left", "right"):
            raise SegmentationError(f"unknown split_side {split_side!r}")
        self.curve_kind = curve_kind
        self.split_side = split_side
        self._fitter = get_fitter(curve_kind)

    def break_indices(self, sequence: Sequence) -> Boundaries:
        segments: Boundaries = []
        # Explicit stack instead of recursion: ECG-scale inputs with a
        # tight epsilon can split thousands of times.
        stack = [(0, len(sequence) - 1)]
        resolved: list[tuple[int, int]] = []
        while stack:
            start, end = stack.pop()
            split = self._split_point(sequence, start, end)
            if split is None:
                resolved.append((start, end))
                continue
            left_end, right_start = split
            # Push right first so the left half is processed first,
            # keeping the traversal in index order is not required —
            # resolved windows are sorted below.
            stack.append((right_start, end))
            stack.append((start, left_end))
        segments = sorted(resolved)
        return segments

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _split_point(self, sequence: Sequence, start: int, end: int) -> "tuple[int, int] | None":
        """Where to split ``[start, end]``, or ``None`` if it converged.

        Returns ``(left_end, right_start)`` index pair; the split sample
        belongs to exactly one side.
        """
        n = end - start + 1
        if n <= 2:
            return None
        piece = sequence.subsequence(start, end)
        try:
            curve = self._fitter(piece)
        except FittingError:
            return None
        deviation = curve.max_deviation(piece)
        if deviation <= self.epsilon:
            return None

        worst = start + curve.argmax_deviation(piece)
        # The worst point must be interior so both sides are non-empty.
        worst = min(max(worst, start + 1), end - 1)
        side = self._choose_side(sequence, start, end, worst)
        if side == "left":
            return worst, worst + 1
        return worst - 1, worst

    def _choose_side(self, sequence: Sequence, start: int, end: int, worst: int) -> str:
        """Paper steps 4a–4c: which subsequence owns the split sample."""
        if self.split_side != "closer":
            return self.split_side
        t, v = sequence[worst]
        left_fit = self._try_fit(sequence, start, worst - 1)
        right_fit = self._try_fit(sequence, worst, end)
        if left_fit is None and right_fit is None:
            return "right"
        if left_fit is None:
            return "right"
        if right_fit is None:
            return "left"
        dist_left = abs(float(left_fit(t)) - v)
        dist_right = abs(float(right_fit(t)) - v)
        return "left" if dist_left <= dist_right else "right"

    def _try_fit(self, sequence: Sequence, start: int, end: int):
        if end < start:
            return None
        piece = sequence.subsequence(start, end)
        if len(piece) < 2:
            return None
        try:
            return self._fitter(piece)
        except FittingError:
            return None
