"""Operational tooling: the standalone reproduction report.

Import :mod:`repro.tools.report` directly (or run
``python -m repro.tools.report``); nothing is re-exported here so that
``-m`` execution does not double-import the module.
"""
