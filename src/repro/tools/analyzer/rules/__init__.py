"""Rule modules — importing this package registers every rule."""

from repro.tools.analyzer.rules import (  # noqa: F401  (registration side effect)
    cache_epoch,
    determinism,
    fingerprint_completeness,
    journalled_mutation,
    scatter_purity,
    shm_lifecycle,
    succinct_sync,
)
