"""RL004 — scatter purity.

The parallel executor (PR 3) scatters the per-shard plan stages onto a
thread pool.  Stage callables therefore run concurrently — one task
per shard, but the *same query object* is shared by every task — so a
stage that assigns ``self.*``, a ``nonlocal``, or a module global is a
data race waiting for a second shard: results become dependent on
thread interleaving, which breaks the engine's answers-identical-for-
any-worker-count guarantee.

Scatter-reachable callables are found statically:

* methods bound into the *scattered* ``QueryPlan`` stage slots —
  ``prefilter=self._m`` / ``vector_filter=self._m`` / ``topk=self._m``
  / ``collect=self._m`` (``probe`` runs once on the caller's thread
  and ``residual`` materializes at gather time, so neither is
  scattered);
* nested functions defined inside methods of executor classes (any
  class defining ``_scatter`` or overriding it) — the per-shard task
  thunks themselves;
* everything transitively reachable from those through ``self`` calls
  or bound-method references within the same class.

Flagged inside a reachable callable: assignments (plain, augmented or
annotated) whose target is ``self.<attr>`` or a subscript of one, and
``global`` / ``nonlocal`` declarations.  Memo writes that are provably
warmed on the caller's thread before the stages run (the
``plan()``-time warm-up pattern) are legitimate — suppress them at the
function level with ``# repro: ignore[RL004]`` and a comment naming
the warm-up site, which documents the invariant where it lives.
"""

from __future__ import annotations

import ast

from repro.tools.analyzer.findings import Finding
from repro.tools.analyzer.project import ClassModel, Project, is_self_attribute
from repro.tools.analyzer.registry import rule

RULE_ID = "RL004"

#: QueryPlan stage slots whose callables run on scatter worker threads.
SCATTERED_STAGE_KEYWORDS = ("prefilter", "vector_filter", "topk", "collect")


def plan_stage_seeds(model: ClassModel, keywords: "tuple[str, ...]") -> "set[str]":
    """Methods of ``model`` bound into ``QueryPlan(...)`` stage slots."""
    seeds: "set[str]" = set()
    for func in list(model.methods.values()) + list(model.properties.values()):
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            called = node.func
            called_name = (
                called.id
                if isinstance(called, ast.Name)
                else getattr(called, "attr", "")
            )
            if called_name != "QueryPlan":
                continue
            for keyword in node.keywords:
                if keyword.arg in keywords:
                    attr = is_self_attribute(keyword.value)
                    if attr is not None:
                        seeds.add(attr)
    return seeds


def _is_executor_class(model: ClassModel) -> bool:
    return "_scatter" in model.methods or any(
        base.endswith("Executor") for base in model.base_names
    )


def _impure_statements(func: ast.AST) -> "list[tuple[int, int, str]]":
    """(line, col, description) for every impure write in a callable."""
    hits: "list[tuple[int, int, str]]" = []
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            if isinstance(node, ast.AnnAssign) and node.value is None:
                continue
            for target in targets:
                root = target
                while isinstance(root, (ast.Subscript, ast.Attribute)) and not (
                    is_self_attribute(root)
                ):
                    root = root.value
                attr = is_self_attribute(root)
                if attr is not None:
                    hits.append(
                        (
                            node.lineno,
                            node.col_offset,
                            f"assigns self.{attr}",
                        )
                    )
        elif isinstance(node, ast.Global):
            hits.append(
                (node.lineno, node.col_offset, f"declares global {', '.join(node.names)}")
            )
        elif isinstance(node, ast.Nonlocal):
            hits.append(
                (
                    node.lineno,
                    node.col_offset,
                    f"declares nonlocal {', '.join(node.names)}",
                )
            )
    return hits


@rule(
    RULE_ID,
    "scatter-purity",
    "callables reachable from the scatter path must not assign self state, "
    "nonlocals or module globals (thread-pool race)",
)
def check(project: Project) -> "list[Finding]":
    findings: "list[Finding]" = []
    for model in project.all_classes():
        reachable: "dict[str, ast.AST]" = {}
        seeds = plan_stage_seeds(model, SCATTERED_STAGE_KEYWORDS)
        for name in model.reachable_methods(seeds):
            func = model.method_like(name)
            if func is not None:
                reachable[name] = func
        if _is_executor_class(model):
            # The scatter task thunks: nested callables inside methods.
            for method_name, method in model.methods.items():
                for node in ast.walk(method):
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not method:
                        reachable[f"{method_name}.<{node.name}>"] = node
                    elif isinstance(node, ast.Lambda):
                        reachable[f"{method_name}.<lambda:{node.lineno}>"] = node
        for name in sorted(reachable):
            func = reachable[name]
            for line, col, description in _impure_statements(func):
                findings.append(
                    Finding(
                        path=model.path,
                        line=line,
                        col=col,
                        rule_id=RULE_ID,
                        message=(
                            f"{model.name}.{name} runs on the scatter thread-pool "
                            f"path but {description}; shared-state writes race "
                            f"across shard workers"
                        ),
                    )
                )
    return findings
