"""RL006 — shm-lifecycle.

Named shared-memory blocks are system-global resources: a block that is
never closed leaks a file under ``/dev/shm`` until reboot, and a block
unlinked by two parties tears the mapping out from under whichever one
believed it still owned the name.  The engine's contract
(:mod:`repro.engine.shm`) is therefore:

* every ``SharedMemory`` construction is **contained**: it happens
  inside a class that defines ``close()`` (an owning arena/attachment
  cache whose lifecycle releases it), as a ``with`` context item, or as
  the immediate value of a ``return`` statement (a helper handing
  ownership straight back to such an owner);
* ``unlink()`` is owned by **exactly one party per module** — the class
  that creates blocks.  Unlink calls in any other class, or in
  module-level functions, are flagged: a second unlinker is a
  use-after-free factory.

The rule scopes itself by *import*: only modules importing
``multiprocessing.shared_memory`` are scanned, so ``Path.unlink()``
and friends elsewhere never false-positive.
"""

from __future__ import annotations

import ast

from repro.tools.analyzer.findings import Finding
from repro.tools.analyzer.project import ModuleInfo, Project
from repro.tools.analyzer.registry import rule

RULE_ID = "RL006"


def _imports_shared_memory(module: ModuleInfo) -> bool:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            if any(alias.name == "multiprocessing.shared_memory" for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module == "multiprocessing.shared_memory":
                return True
            if node.module == "multiprocessing" and any(
                alias.name == "shared_memory" for alias in node.names
            ):
                return True
    return False


def _is_shared_memory_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "SharedMemory"
    if isinstance(func, ast.Attribute):
        return func.attr == "SharedMemory"
    return False


def _is_unlink_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "unlink"
    )


def _class_defines_close(node: ast.ClassDef) -> bool:
    return any(
        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt.name == "close"
        for stmt in node.body
    )


class _LifecycleScanner(ast.NodeVisitor):
    """Collects constructions and unlink sites with their enclosing class."""

    def __init__(self) -> None:
        self._class_stack: "list[ast.ClassDef]" = []
        #: (call node, enclosing class or None, construction is contained)
        self.constructions: "list[tuple[ast.Call, ast.ClassDef | None, bool]]" = []
        #: (call node, enclosing class or None)
        self.unlinks: "list[tuple[ast.Call, ast.ClassDef | None]]" = []
        self._containment_depth = 0

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node)
        self.generic_visit(node)
        self._class_stack.pop()

    def _enclosing(self) -> "ast.ClassDef | None":
        return self._class_stack[-1] if self._class_stack else None

    def visit_With(self, node: ast.With) -> None:
        # A `with SharedMemory(...)` item releases on every exit path by
        # construction; so does anything nested under it that the with
        # body closes — but only the items themselves are exempted.
        for item in node.items:
            if _is_shared_memory_call(item.context_expr):
                self._containment_depth += 1
                self.visit(item.context_expr)
                self._containment_depth -= 1
            else:
                self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)

    def visit_Return(self, node: ast.Return) -> None:
        # `return SharedMemory(...)` hands ownership to the caller; the
        # containment requirement moves to the call site's class.
        if node.value is not None and _is_shared_memory_call(node.value):
            self._containment_depth += 1
            self.generic_visit(node)
            self._containment_depth -= 1
            return
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if _is_shared_memory_call(node):
            enclosing = self._enclosing()
            contained = self._containment_depth > 0 or (
                enclosing is not None and _class_defines_close(enclosing)
            )
            self.constructions.append((node, enclosing, contained))
        elif _is_unlink_call(node):
            self.unlinks.append((node, self._enclosing()))
        self.generic_visit(node)


def _module_findings(module: ModuleInfo) -> "list[Finding]":
    scanner = _LifecycleScanner()
    scanner.visit(module.tree)
    findings: "list[Finding]" = []

    for call, __, contained in scanner.constructions:
        if not contained:
            findings.append(
                Finding(
                    path=module.path,
                    line=call.lineno,
                    col=call.col_offset,
                    rule_id=RULE_ID,
                    message=(
                        "SharedMemory constructed outside an owning class with "
                        "close() (and not a with-item or returned to one); the "
                        "block leaks on exit paths"
                    ),
                )
            )

    creator_classes = {
        enclosing for __, enclosing, _c in scanner.constructions if enclosing is not None
    }
    unlink_owners = {enclosing for __, enclosing in scanner.unlinks if enclosing is not None}
    # The legitimate unlinker is the creating class; with no creator in
    # the module, a single unlinking class is accepted as the owner.
    if creator_classes:
        allowed = unlink_owners & creator_classes
    elif len(unlink_owners) == 1:
        allowed = unlink_owners
    else:
        allowed = set()
    for call, enclosing in scanner.unlinks:
        if enclosing is None:
            findings.append(
                Finding(
                    path=module.path,
                    line=call.lineno,
                    col=call.col_offset,
                    rule_id=RULE_ID,
                    message=(
                        "unlink() outside any class; shared-memory names must "
                        "be unlinked by their single owning class"
                    ),
                )
            )
        elif enclosing not in allowed:
            findings.append(
                Finding(
                    path=module.path,
                    line=call.lineno,
                    col=call.col_offset,
                    rule_id=RULE_ID,
                    message=(
                        f"unlink() in class {enclosing.name!r}, which does not "
                        "create the blocks; exactly one party per module may "
                        "unlink"
                    ),
                )
            )
    return findings


@rule(
    RULE_ID,
    "shm-lifecycle",
    "shared-memory blocks are released by an owning close() on all exit "
    "paths; unlink() is owned by exactly one class per module",
)
def check(project: Project) -> "list[Finding]":
    findings: "list[Finding]" = []
    for module in project.modules:
        if not _imports_shared_memory(module):
            continue
        findings.extend(_module_findings(module))
    return findings
