"""RL005 — determinism.

The engine's answers are defined to be byte-identical across shard
counts, worker counts and cache states; every ordered result is sorted
by an explicit total key.  Two constructs quietly break that:

* **Bare set iteration materialized in order** — ``list(set(...))``,
  ``tuple({...})``, a comprehension over a set, or a loop that appends
  set elements to a list.  Set iteration order depends on insertion
  history and hash seeding; the fix is ``sorted(...)``, which is why
  every legitimate site in the engine already spells it that way.
  Materializations directly inside ``sorted`` / ``min`` / ``max`` /
  ``sum`` are not flagged: those consumers erase iteration order.
* **Unstable array sorts in merge/tie-break modules** —
  ``np.argsort`` defaults to an unstable introsort, so equal keys
  (tied grades, equal bounds) permute by partition luck.  Modules on
  the merge path must pass ``kind="stable"`` (or ``"mergesort"``).
  ``np.lexsort`` is stable by contract and value-sorting a scalar
  array (``np.sort``) has no observable tie order, so neither is
  flagged.

The set check runs repo-wide; the sort check is scoped to modules
whose path matches :data:`MERGE_MODULE_MARKERS`, the merge/tie-break
surfaces where equal keys are routine.
"""

from __future__ import annotations

import ast

from repro.tools.analyzer.findings import Finding
from repro.tools.analyzer.project import ModuleInfo, Project
from repro.tools.analyzer.registry import rule

RULE_ID = "RL005"

#: Path fragments naming merge/tie-break modules (unstable-sort scope).
MERGE_MODULE_MARKERS = (
    "executor",
    "sharding",
    "parallel",
    "clustering",
    "cache",
    "results",
    "merge",
    "index",
)

_STABLE_KINDS = frozenset({"stable", "mergesort"})


def _is_set_literal_or_call(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    return False


class _SetTracker(ast.NodeVisitor):
    """Flags ordered materializations of set-typed expressions.

    Set-typed locals are tracked per function scope: a name assigned a
    set expression (and never reassigned to anything else) is
    set-typed.  Binary ops over set-typed operands (``|&-^``) stay
    set-typed.
    """

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.findings: "list[Finding]" = []
        self._set_names: "list[set[str]]" = [set()]
        self._sorted_depth = 0

    def _is_set_typed(self, node: ast.AST) -> bool:
        if _is_set_literal_or_call(node):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in reversed(self._set_names))
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_typed(node.left) or self._is_set_typed(node.right)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in ("union", "intersection", "difference", "symmetric_difference"):
                return self._is_set_typed(node.func.value)
        return False

    def _flag(self, node: ast.AST, what: str) -> None:
        self.findings.append(
            Finding(
                path=self.module.path,
                line=node.lineno,
                col=node.col_offset,
                rule_id=RULE_ID,
                message=(
                    f"{what} iterates a bare set into an ordered result; "
                    f"set order is hash-dependent — sort first "
                    f"(e.g. sorted(...))"
                ),
            )
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._set_names.append(set())
        self.generic_visit(node)
        self._set_names.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                if self._is_set_typed(node.value):
                    self._set_names[-1].add(target.id)
                else:
                    self._set_names[-1].discard(target.id)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id in ("sorted", "min", "max", "sum"):
            # sorted() imposes a total order; min/max/sum are
            # order-insensitive reductions.  Materializations directly
            # under them are harmless.
            self._sorted_depth += 1
            self.generic_visit(node)
            self._sorted_depth -= 1
            return
        if self._sorted_depth == 0:
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1
                and self._is_set_typed(node.args[0])
            ):
                self._flag(node, f"{node.func.id}(...) over a set")
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and len(node.args) == 1
                and self._is_set_typed(node.args[0])
            ):
                self._flag(node, "str.join over a set")
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST, generators: "list[ast.comprehension]") -> None:
        if self._sorted_depth:
            return
        for generator in generators:
            if self._is_set_typed(generator.iter):
                self._flag(node, "a comprehension")

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        # Only flagged when the consumer imposes order; sorted(...) and
        # set(...) consumers are fine.  Conservatively skip bare
        # generator expressions — the list()/tuple() visitor catches the
        # ordering consumers that matter.
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_typed(node.iter):
            appends = any(
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr in ("append", "extend", "insert")
                for stmt in node.body
                for inner in ast.walk(stmt)
            )
            if appends:
                self._flag(node, "a for-loop building a list")
        self.generic_visit(node)


def _argsort_findings(module: ModuleInfo) -> "list[Finding]":
    findings: "list[Finding]" = []
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr != "argsort":
            continue
        kinds = [
            keyword.value
            for keyword in node.keywords
            if keyword.arg == "kind"
        ]
        stable = any(
            isinstance(kind, ast.Constant) and kind.value in _STABLE_KINDS
            for kind in kinds
        )
        if not stable:
            findings.append(
                Finding(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=RULE_ID,
                    message=(
                        "argsort without kind=\"stable\" in a merge/tie-break "
                        "module; equal keys would permute non-deterministically"
                    ),
                )
            )
    return findings


@rule(
    RULE_ID,
    "determinism",
    "no ordered results from bare set iteration; argsort in merge/tie-break "
    "modules must be stable",
)
def check(project: Project) -> "list[Finding]":
    findings: "list[Finding]" = []
    for module in project.modules:
        tracker = _SetTracker(module)
        tracker.visit(module.tree)
        findings.extend(tracker.findings)
        if any(marker in module.path for marker in MERGE_MODULE_MARKERS):
            findings.extend(_argsort_findings(module))
    return findings
