"""RL007 — succinct-sync.

The succinct symbol backend (:mod:`repro.engine.succinct`) keeps a
wavelet-matrix mirror of the store's symbol columns.  Unlike the
cluster index, its staleness protocol is *eager at the notification
edge*: the index must snapshot the pre-mutation layout **before** the
column write lands (copy-on-write is impossible after the fact), so
every mutation path through a succinct-backed store has to tell the
index about the write — by calling the mark-stale hook or touching
``self._succinct`` directly — in the same method that performs it.
A path that forgets leaves the wavelet matrices answering over a
layout that no longer exists, and count/position answers silently
diverge from the scan oracle.

The rule applies to *succinct-backed store classes* — classes whose
``__init__`` assigns ``_succinct`` and at least one attribute from a
``_ColumnSet(...)`` constructor — and checks that every method which
directly rewrites column storage (the same mutation grammar as RL001:
mutating calls on a column-set attribute, or subscript writes through
a column-set attribute or column-view property) also *notifies the
succinct index*: a call to a ``self._succinct*`` method (e.g.
``self._succinct_mark_stale()``), a method call on ``self._succinct``
itself (e.g. ``self._succinct.note_mutation()``), or an assignment to
``self._succinct``.  Methods that only delegate to such a mutator are
exempt — the notification duty travels with the direct write.
``__init__`` is exempt: binding the column sets constructs the
pre-index baseline.
"""

from __future__ import annotations

import ast

from repro.tools.analyzer.findings import Finding
from repro.tools.analyzer.project import ClassModel, Project, is_self_attribute
from repro.tools.analyzer.registry import rule
from repro.tools.analyzer.rules.journalled_mutation import MUTATING_COLUMN_CALLS

RULE_ID = "RL007"


def _is_succinct_store(model: ClassModel) -> bool:
    return "_succinct" in model.init_attrs and bool(_column_set_attrs(model))


def _column_set_attrs(model: ClassModel) -> "set[str]":
    """Attributes initialised from a ``_ColumnSet(...)`` constructor."""
    attrs: "set[str]" = set()
    for name, value in model.init_attrs.items():
        if isinstance(value, ast.Call):
            func = value.func
            called = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            if called == "_ColumnSet":
                attrs.add(name)
    return attrs


def _subscript_root_attr(target: ast.AST) -> "str | None":
    while isinstance(target, ast.Subscript):
        target = target.value
    return is_self_attribute(target)


def _directly_mutates(
    func: ast.FunctionDef, column_sets: "set[str]", column_views: "set[str]"
) -> "tuple[int, int] | None":
    """(line, col) of the first direct column write in ``func``."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            called = node.func
            if (
                isinstance(called, ast.Attribute)
                and called.attr in MUTATING_COLUMN_CALLS
                and is_self_attribute(called.value) in column_sets
            ):
                return node.lineno, node.col_offset
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                root = _subscript_root_attr(target)
                if root is not None and (root in column_sets or root in column_views):
                    return node.lineno, node.col_offset
    return None


def _notifies_succinct(func: ast.FunctionDef) -> bool:
    """Whether ``func`` tells the succinct index about the mutation."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            # self._succinct_mark_stale() / self._succinct_anything().
            attr = is_self_attribute(node.func)
            if attr is not None and attr.startswith("_succinct"):
                return True
            # self._succinct.note_mutation() and friends.
            if (
                isinstance(node.func, ast.Attribute)
                and is_self_attribute(node.func.value) == "_succinct"
            ):
                return True
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            if any(is_self_attribute(target) == "_succinct" for target in targets):
                return True
    return False


@rule(
    RULE_ID,
    "succinct-sync",
    "column mutations in a succinct-backed store must notify the succinct "
    "symbol index (mark-stale hook or a self._succinct call) in the same method",
)
def check(project: Project) -> "list[Finding]":
    findings: "list[Finding]" = []
    for model in project.all_classes():
        if not _is_succinct_store(model):
            continue
        column_sets = _column_set_attrs(model)
        column_views = {
            name
            for name in model.properties
            if model.property_backing(name) & column_sets
        }
        for name in sorted(model.methods):
            if name == "__init__":
                continue
            func = model.methods[name]
            site = _directly_mutates(func, column_sets, column_views)
            if site is None or _notifies_succinct(func):
                continue
            findings.append(
                Finding(
                    path=model.path,
                    line=func.lineno,
                    col=func.col_offset,
                    rule_id=RULE_ID,
                    message=(
                        f"{model.name}.{name} rewrites column storage (line "
                        f"{site[0]}) without notifying the succinct symbol "
                        f"index; the wavelet-matrix mirror cannot snapshot "
                        f"the pre-mutation layout after the write lands"
                    ),
                )
            )
    return findings
