"""RL001 — journalled-mutation.

The byte-parity contract behind the delta-revalidated result cache
(PR 5) is that *every* columnar-store mutation bumps ``_generation``
and records the touched sequence ids in the store's
:class:`~repro.engine.journal.MutationJournal`.  A mutation path that
forgets either leaves cached answers silently stale.

The rule applies to *journalled store classes* — classes whose
``__init__`` assigns both ``_generation`` and ``_journal`` — and
checks two things:

1. **Whitelist** — when the class has a mutator whitelist entry (the
   shipped :class:`~repro.engine.columnar.ColumnarSegmentStore` does),
   any method that writes column storage without being whitelisted is
   an error.  New mutation surfaces must be reviewed into the list,
   not discovered in review.
2. **Journal-on-all-paths** — every mutating method must, on every
   exit path that performed a mutation, both bump ``self._generation``
   and call ``self._journal.record(...)``.  The check walks an
   abstract state (mutated / bumped / recorded) through the method
   body: branches merge conservatively (a bump counts only if it
   happens on *all* merged branches), loop bodies may execute zero
   times (mutations inside count, bumps inside do not), and ``raise``
   exits are exempt (a validation failure before or during a mutation
   is the caller's problem, not a journalling one).

Column mutations are: mutating calls (``extend`` / ``delete_range`` /
``delete_where`` / ``replace_range``) on an attribute initialised from
``_ColumnSet(...)``; subscript writes through a column-view property
(a property whose getter reads a column-set attribute); and calls to a
private helper of the same class that itself mutates (the helper is
exempt from journalling — its journalled callers own the bump).
``__init__`` is exempt throughout: binding the column sets is how the
generation-0 baseline comes to exist, and no cached answer can predate
construction.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace

from repro.tools.analyzer.findings import Finding
from repro.tools.analyzer.project import ClassModel, Project, is_self_attribute
from repro.tools.analyzer.registry import rule

RULE_ID = "RL001"

#: _ColumnSet methods that rewrite rows.
MUTATING_COLUMN_CALLS = frozenset(
    {"extend", "delete_range", "delete_where", "replace_range"}
)

#: Reviewed mutation surfaces per store class.  A journalled class with
#: an entry here may only mutate columns through these methods; classes
#: without an entry skip the whitelist check (the journalling check
#: still applies to every mutating method).
MUTATOR_WHITELIST: "dict[str, frozenset[str]]" = {
    "ColumnarSegmentStore": frozenset(
        {
            "insert",
            "extend",
            "delete",
            "delete_many",
            "replace",
            "replace_many",
            "_replace_one",
        }
    ),
}


def _is_journalled_store(model: ClassModel) -> bool:
    return "_generation" in model.init_attrs and "_journal" in model.init_attrs


def _column_set_attrs(model: ClassModel) -> "set[str]":
    """Attributes initialised from a ``_ColumnSet(...)`` constructor."""
    attrs: "set[str]" = set()
    for name, value in model.init_attrs.items():
        if isinstance(value, ast.Call):
            func = value.func
            called = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            if called == "_ColumnSet":
                attrs.add(name)
    return attrs


def _column_view_properties(model: ClassModel, column_sets: "set[str]") -> "set[str]":
    """Properties whose getter reads a column-set attribute."""
    return {
        name
        for name in model.properties
        if model.property_backing(name) & column_sets
    }


def _subscript_root_attr(target: ast.AST) -> "str | None":
    """``self.<attr>`` at the root of a subscripted assignment target."""
    while isinstance(target, ast.Subscript):
        target = target.value
    return is_self_attribute(target)


class _MutationScanner:
    """Classifies statements of one journalled class's methods."""

    def __init__(self, model: ClassModel) -> None:
        self.model = model
        self.column_sets = _column_set_attrs(model)
        self.column_views = _column_view_properties(model, self.column_sets)
        # Fixpoint over helper calls: a method mutates if it touches
        # columns directly or calls a same-class method that mutates.
        # __init__ is exempt: it binds the column sets in the first
        # place, establishing the generation-0 baseline that no cached
        # answer can predate.
        self.direct_mutators = {
            name
            for name, func in model.methods.items()
            if name != "__init__" and self._directly_mutates(func)
        }
        self.mutators = set(self.direct_mutators)
        changed = True
        while changed:
            changed = False
            for name, func in model.methods.items():
                if name in self.mutators or name == "__init__":
                    continue
                if model.self_calls(func) & self.mutators:
                    # Only *private* helpers propagate mutation to their
                    # callers; a call to a public mutator delegates the
                    # journalling duty along with the mutation.
                    if any(
                        called in self.mutators and called.startswith("_")
                        for called in model.self_calls(func)
                    ):
                        self.mutators.add(name)
                        changed = True
        # Private mutating helpers with a mutating caller journal
        # through that caller.
        self.exempt_helpers = {
            name
            for name in self.mutators
            if name.startswith("_")
            and any(
                name in model.self_calls(func)
                for caller, func in model.methods.items()
                if caller != name and caller in self.mutators
            )
        }

    def _directly_mutates(self, func: ast.FunctionDef) -> bool:
        for node in ast.walk(func):
            if self.is_mutation(node):
                return True
        return False

    def is_mutation(self, node: ast.AST) -> bool:
        """Whether one AST node directly rewrites column storage."""
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_COLUMN_CALLS
                and is_self_attribute(func.value) in self.column_sets
            ):
                return True
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                root = _subscript_root_attr(target)
                if root is not None and (
                    root in self.column_views or root in self.column_sets
                ):
                    return True
        return False

    def is_helper_mutation_call(self, node: ast.AST) -> bool:
        """A call to a private mutating helper of the same class."""
        if isinstance(node, ast.Call):
            attr = is_self_attribute(node.func)
            return (
                attr is not None
                and attr.startswith("_")
                and attr in self.mutators
                and attr in self.model.methods
            )
        return False


@dataclass(frozen=True)
class _State:
    mutated: bool = False
    bumped: bool = False
    recorded: bool = False

    def join(self, other: "_State") -> "_State":
        # Conservative merge at control-flow joins: a mutation on either
        # branch taints, a bump/record counts only when on both.
        return _State(
            mutated=self.mutated or other.mutated,
            bumped=self.bumped and other.bumped,
            recorded=self.recorded and other.recorded,
        )

    @property
    def violating(self) -> bool:
        return self.mutated and not (self.bumped and self.recorded)


def _is_generation_bump(stmt: ast.stmt) -> bool:
    if isinstance(stmt, ast.AugAssign):
        return is_self_attribute(stmt.target) == "_generation"
    if isinstance(stmt, ast.Assign):
        return any(is_self_attribute(target) == "_generation" for target in stmt.targets)
    return False


def _is_journal_record(stmt: ast.stmt) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if (
                node.func.attr == "record"
                and is_self_attribute(node.func.value) == "_journal"
            ):
                return True
    return False


class _PathChecker:
    """Walks a method body tracking (mutated, bumped, recorded)."""

    def __init__(self, scanner: _MutationScanner) -> None:
        self.scanner = scanner
        #: (line, col) of exits whose state violates the contract.
        self.violations: "list[tuple[int, int, _State]]" = []

    def check(self, func: ast.FunctionDef) -> None:
        final = self._walk_body(func.body, _State())
        if final is not None and final.violating:
            # Fell off the end of the function with an unjournalled
            # mutation: report at the function head.
            self.violations.append((func.lineno, func.col_offset, final))

    def _effects(self, stmt: ast.stmt, state: _State) -> _State:
        """Statement-local effects, ignoring control flow."""
        mutated = state.mutated
        for node in ast.walk(stmt):
            if self.scanner.is_mutation(node) or self.scanner.is_helper_mutation_call(node):
                mutated = True
        bumped = state.bumped or _is_generation_bump(stmt)
        recorded = state.recorded or _is_journal_record(stmt)
        return _State(mutated=mutated, bumped=bumped, recorded=recorded)

    def _walk_body(self, body: "list[ast.stmt]", state: "_State | None") -> "_State | None":
        """Returns the fall-through state, or None if all paths exited."""
        for stmt in body:
            if state is None:
                return None
            state = self._walk_stmt(stmt, state)
        return state

    def _walk_stmt(self, stmt: ast.stmt, state: _State) -> "_State | None":
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Defining a nested callable executes nothing from its body.
            return state
        if isinstance(stmt, ast.Return):
            exit_state = self._effects(stmt, state)
            if exit_state.violating:
                self.violations.append((stmt.lineno, stmt.col_offset, exit_state))
            return None
        if isinstance(stmt, ast.Raise):
            # Error exits are exempt: validation raises before (or
            # mid-) mutation are surfaced to the caller as failures.
            return None
        if isinstance(stmt, ast.If):
            branch_states = [
                self._walk_body(stmt.body, self._condition_effects(stmt.test, state)),
                self._walk_body(stmt.orelse, self._condition_effects(stmt.test, state)),
            ]
            live = [branch for branch in branch_states if branch is not None]
            if not live:
                return None
            merged = live[0]
            for branch in live[1:]:
                merged = merged.join(branch)
            return merged
        if isinstance(stmt, (ast.For, ast.While)):
            # Loop bodies may run zero times: mutations inside count
            # (they may happen), bumps/records inside do not (they may
            # not).  The else-branch runs on normal loop exit.
            header = self._condition_effects(
                stmt.iter if isinstance(stmt, ast.For) else stmt.test, state
            )
            body_state = self._walk_body(stmt.body, header)
            after = header
            if body_state is not None:
                after = replace(after, mutated=after.mutated or body_state.mutated)
            return self._walk_body(stmt.orelse, after)
        if isinstance(stmt, ast.With):
            with_state = state
            for item in stmt.items:
                with_state = self._effects_expr(item.context_expr, with_state)
            return self._walk_body(stmt.body, with_state)
        if isinstance(stmt, ast.Try):
            body_state = self._walk_body(stmt.body, state)
            results = [] if body_state is None else [body_state]
            body_may_mutate = any(
                self.scanner.is_mutation(node) or self.scanner.is_helper_mutation_call(node)
                for inner in stmt.body
                for node in ast.walk(inner)
            )
            for handler in stmt.handlers:
                # A handler may have caught the exception at any point
                # in the body — assume the worst (mutated) if the body
                # could mutate at all.
                handler_entry = (
                    replace(state, mutated=True) if body_may_mutate else state
                )
                handler_state = self._walk_body(handler.body, handler_entry)
                if handler_state is not None:
                    results.append(handler_state)
            if not results:
                merged: "_State | None" = None
            else:
                merged = results[0]
                for candidate in results[1:]:
                    merged = merged.join(candidate)
            if stmt.finalbody:
                return self._walk_body(stmt.finalbody, merged if merged is not None else state)
            return merged
        return self._effects(stmt, state)

    def _condition_effects(self, expr: "ast.AST | None", state: _State) -> _State:
        if expr is None:
            return state
        return self._effects_expr(expr, state)

    def _effects_expr(self, expr: ast.AST, state: _State) -> _State:
        mutated = state.mutated
        for node in ast.walk(expr):
            if self.scanner.is_mutation(node) or self.scanner.is_helper_mutation_call(node):
                mutated = True
        return replace(state, mutated=mutated)


@rule(
    RULE_ID,
    "journalled-mutation",
    "column-store mutations must be whitelisted and must bump _generation "
    "and record the touched ids in the mutation journal on every path",
)
def check(project: Project) -> "list[Finding]":
    findings: "list[Finding]" = []
    for model in project.all_classes():
        if not _is_journalled_store(model):
            continue
        scanner = _MutationScanner(model)
        whitelist = MUTATOR_WHITELIST.get(model.name)
        for name in sorted(scanner.direct_mutators):
            func = model.methods[name]
            if whitelist is not None and name not in whitelist:
                findings.append(
                    Finding(
                        path=model.path,
                        line=func.lineno,
                        col=func.col_offset,
                        rule_id=RULE_ID,
                        message=(
                            f"{model.name}.{name} writes column storage but is not "
                            f"a whitelisted mutator; route the write through a "
                            f"journalled mutator or review it into the whitelist"
                        ),
                    )
                )
        for name in sorted(scanner.mutators):
            if name in scanner.exempt_helpers:
                continue
            func = model.methods[name]
            checker = _PathChecker(scanner)
            checker.check(func)
            for line, col, state in checker.violations:
                missing = []
                if not state.bumped:
                    missing.append("bump self._generation")
                if not state.recorded:
                    missing.append("call self._journal.record(...)")
                findings.append(
                    Finding(
                        path=model.path,
                        line=line,
                        col=col,
                        rule_id=RULE_ID,
                        message=(
                            f"{model.name}.{name} mutates column storage on a path "
                            f"that does not {' or '.join(missing)}; stale cached "
                            f"answers would survive this mutation"
                        ),
                    )
                )
    return findings
