"""RL003 — cache-epoch coverage.

``SequenceDatabase.cache_epoch()`` is the token every cached query
answer is keyed on: it must name *everything* an answer depends on.
The store's data generation covers mutations; the rest of the tuple
must cover pipeline configuration.  A stage callable that reads a
config attribute the epoch does not cover produces answers the cache
can never know to invalidate — exactly the stale-memo class of bug
PR 2 patched after the fact.

The rule reconstructs both sides from source:

* **Epoch components** — the ``self`` attributes read inside
  ``cache_epoch`` (property indirection resolved, so ``self.theta``
  covers ``_theta``).
* **Config attributes** — ``SequenceDatabase`` attributes assigned in
  ``__init__`` directly from a constructor parameter (bare name or a
  builtin scalar cast of one).  Constructed components (indexes,
  stores) are not config: their contents are covered by the data
  generation.

A config attribute is *covered* when it (or a property reading it) is
an epoch component, or when reassigning it routes through a property
setter that bumps an epoch component (the ``breaker`` /
``_config_epoch`` pattern).  Every read of an uncovered config
attribute off the database parameter inside a *stage callable* —
methods bound into ``QueryPlan(...)`` stage arguments, plus everything
transitively reachable from them through ``self`` — is an error.
"""

from __future__ import annotations

import ast

from repro.tools.analyzer.findings import Finding
from repro.tools.analyzer.project import ClassModel, Project, is_self_attribute
from repro.tools.analyzer.registry import rule
from repro.tools.analyzer.rules.scatter_purity import plan_stage_seeds

RULE_ID = "RL003"

#: Builtin casts that keep a constructor-parameter assignment "scalar
#: config" rather than a constructed component.
_SCALAR_CASTS = frozenset({"float", "int", "bool", "str", "tuple"})

#: QueryPlan stage keywords whose callables read the database during
#: evaluation (residual included: it runs per sequence at gather time).
STAGE_KEYWORDS = ("probe", "prefilter", "vector_filter", "residual", "topk")


def _database_model(project: Project) -> "ClassModel | None":
    for model in project.classes_named("SequenceDatabase"):
        if "cache_epoch" in model.methods:
            return model
    return None


def _epoch_components(model: ClassModel) -> "set[str]":
    func = model.methods["cache_epoch"]
    components: "set[str]" = set()
    for attr in model.attr_reads(func):
        components.add(attr)
        components.update(model.resolve_attr(attr))
    return components


def _config_attrs(model: ClassModel) -> "set[str]":
    init = model.methods.get("__init__")
    if init is None:
        return set()
    params = {
        arg.arg
        for arg in init.args.posonlyargs + init.args.args + init.args.kwonlyargs
        if arg.arg != "self"
    }

    def from_param(value: ast.AST) -> bool:
        if isinstance(value, ast.Name):
            return value.id in params
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _SCALAR_CASTS
            and len(value.args) == 1
        ):
            return from_param(value.args[0])
        return False

    return {attr for attr, value in model.init_attrs.items() if from_param(value)}


def _setter_covered(model: ClassModel, attr: str, epoch: "set[str]") -> bool:
    """Reassignment routes through a setter that bumps an epoch part."""
    for name, setter in model.setters.items():
        assigns: "set[str]" = set()
        bumps: "set[str]" = set()
        for node in ast.walk(setter):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    maybe = is_self_attribute(target)
                    if maybe is not None:
                        assigns.add(maybe)
            elif isinstance(node, ast.AugAssign):
                maybe = is_self_attribute(node.target)
                if maybe is not None:
                    bumps.add(maybe)
        if attr in assigns and bumps & epoch:
            return True
    return False


def _covered_config(model: ClassModel) -> "tuple[set[str], set[str]]":
    """(config attrs, the covered subset), public aliases included."""
    epoch = _epoch_components(model)
    config = _config_attrs(model)
    covered: "set[str]" = set()
    aliases: "dict[str, set[str]]" = {
        name: model.property_backing(name) for name in model.properties
    }
    for attr in config:
        if attr in epoch:
            covered.add(attr)
        elif any(attr in backing and name in epoch for name, backing in aliases.items()):
            covered.add(attr)
        elif _setter_covered(model, attr, epoch):
            covered.add(attr)
    # A read through a public property alias counts as a read of its
    # backing attr; expose the alias -> attr mapping via names.
    full_config = set(config)
    for name, backing in aliases.items():
        if backing & config:
            full_config.add(name)
            if backing & covered or name in epoch:
                covered.add(name)
    return full_config, covered


def _database_param(func: ast.FunctionDef) -> "str | None":
    for arg in func.args.posonlyargs + func.args.args:
        if arg.arg == "database":
            return arg.arg
    return None


@rule(
    RULE_ID,
    "cache-epoch-coverage",
    "database config attributes read inside plan stage callables must be "
    "components of SequenceDatabase.cache_epoch()",
)
def check(project: Project) -> "list[Finding]":
    database = _database_model(project)
    if database is None:
        return []
    config, covered = _covered_config(database)
    uncovered = config - covered
    findings: "list[Finding]" = []
    for model in project.all_classes():
        seeds = plan_stage_seeds(model, STAGE_KEYWORDS)
        if not seeds:
            continue
        for name in sorted(model.reachable_methods(seeds)):
            func = model.method_like(name)
            if func is None:
                continue
            param = _database_param(func)
            if param is None:
                continue
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == param
                    and node.attr in uncovered
                ):
                    findings.append(
                        Finding(
                            path=model.path,
                            line=node.lineno,
                            col=node.col_offset,
                            rule_id=RULE_ID,
                            message=(
                                f"{model.name}.{name} reads database.{node.attr} "
                                f"inside a plan stage, but {node.attr} is not a "
                                f"component of cache_epoch(); cached answers "
                                f"would survive a config change"
                            ),
                        )
                    )
    return findings
