"""RL002 — fingerprint-completeness.

The plan-result cache memoizes query answers keyed on
``Query.fingerprint()`` (PR 2): two queries with equal fingerprints
*must* answer identically against the same store state.  That breaks
in two ways, both seen in past reviews:

* a parameter that changes what the query matches but is **missing
  from the fingerprint** — two different queries share a cache entry;
* a query-defining parameter that is **mutable after construction** —
  the fingerprint was computed from a value the query no longer uses.

The rule applies to direct subclasses of ``Query`` that define
``fingerprint`` (a query without one inherits ``None`` and is
uncacheable, which is always safe).  *Query-defining parameters* are
instance attributes assigned in ``__init__`` and never reassigned
elsewhere in the class; attributes also written outside ``__init__``
are derived memos (lazily computed digests, per-database caches) and
are exempt — but only when private, since a publicly reassignable
attribute is an implicit setter.  For each query-defining parameter
read anywhere on the evaluation path — ``plan`` / ``grade`` /
``candidates`` and every method transitively reachable from them,
with property indirection resolved — the rule requires:

1. the attribute (directly or through a read-only property) is read
   inside ``fingerprint``;
2. no property setter targets it;
3. it is private (name-mangled conventionally with a leading
   underscore) — a bare public attribute can be assigned by anyone,
   which is a public setter in all but syntax.
"""

from __future__ import annotations

from repro.tools.analyzer.findings import Finding
from repro.tools.analyzer.project import ClassModel, Project
from repro.tools.analyzer.registry import rule

RULE_ID = "RL002"

#: Methods whose reads define the evaluation path.
EVALUATION_ROOTS = ("plan", "grade", "candidates")


def _is_query_subclass(model: ClassModel) -> bool:
    return "Query" in model.base_names


def _evaluation_reads(model: ClassModel) -> "set[str]":
    """Underlying attrs read on the evaluation path (property-resolved)."""
    reachable = model.reachable_methods(set(EVALUATION_ROOTS))
    reachable.discard("__init__")
    reachable.discard("fingerprint")
    reads: "set[str]" = set()
    for name in reachable:
        func = model.method_like(name)
        if func is None:
            continue
        for attr in model.attr_reads(func):
            reads.update(model.resolve_attr(attr))
    return reads


def _fingerprint_reads(model: ClassModel) -> "set[str]":
    func = model.methods.get("fingerprint")
    if func is None:
        return set()
    reads: "set[str]" = set()
    for attr in model.attr_reads(func):
        reads.update(model.resolve_attr(attr))
    return reads


def _public_alias(model: ClassModel, attr: str) -> "str | None":
    """A public read-only property exposing ``attr``, if any."""
    for name in model.properties:
        if attr in model.property_backing(name):
            return name
    return None


@rule(
    RULE_ID,
    "fingerprint-completeness",
    "every query-defining parameter read on the evaluation path must appear "
    "in fingerprint() and be immutable after construction",
)
def check(project: Project) -> "list[Finding]":
    findings: "list[Finding]" = []
    for model in project.all_classes():
        if not _is_query_subclass(model) or "fingerprint" not in model.methods:
            continue
        eval_reads = _evaluation_reads(model)
        fingerprint_reads = _fingerprint_reads(model)
        setter_assigned = {
            attr: name
            for name in model.setters
            for attr in _setter_targets(model, name)
        }
        init = model.methods.get("__init__")
        init_line = init.lineno if init is not None else model.node.lineno
        for attr in sorted(model.init_attrs):
            if attr not in eval_reads:
                continue
            value = model.init_attrs[attr]
            line = getattr(value, "lineno", init_line)
            col = getattr(value, "col_offset", 0)
            if attr in setter_assigned:
                setter = model.setters[setter_assigned[attr]]
                findings.append(
                    Finding(
                        path=model.path,
                        line=setter.lineno,
                        col=setter.col_offset,
                        rule_id=RULE_ID,
                        message=(
                            f"{model.name}.{setter_assigned[attr]} is a public "
                            f"setter for query-defining parameter {attr}; query "
                            f"parameters must be fixed at construction"
                        ),
                    )
                )
                continue
            reassigners = model.assigned_outside_init.get(attr, set())
            if reassigners:
                if attr.startswith("_"):
                    # Private derived memo (digest, per-database cache):
                    # recomputed from the defining parameters, so the
                    # fingerprint does not need it.
                    continue
                findings.append(
                    Finding(
                        path=model.path,
                        line=line,
                        col=col,
                        rule_id=RULE_ID,
                        message=(
                            f"{model.name}.{attr} is query-defining but reassigned "
                            f"in {', '.join(sorted(reassigners))}; cached "
                            f"fingerprints cannot follow a mutable parameter"
                        ),
                    )
                )
                continue
            if attr not in fingerprint_reads:
                findings.append(
                    Finding(
                        path=model.path,
                        line=line,
                        col=col,
                        rule_id=RULE_ID,
                        message=(
                            f"{model.name}.{attr} is read on the evaluation path "
                            f"but missing from fingerprint(); two distinct queries "
                            f"could share one cache entry"
                        ),
                    )
                )
            if not attr.startswith("_"):
                alias = _public_alias(model, attr)
                hint = (
                    "store it privately and expose it through a read-only property"
                    if alias is None
                    else f"store it privately behind the read-only property {alias!r}"
                )
                findings.append(
                    Finding(
                        path=model.path,
                        line=line,
                        col=col,
                        rule_id=RULE_ID,
                        message=(
                            f"{model.name}.{attr} is a plain public attribute but "
                            f"query-defining; {hint} so it cannot drift from the "
                            f"fingerprint"
                        ),
                    )
                )
    return findings


def _setter_targets(model: ClassModel, setter_name: str) -> "set[str]":
    """Attributes a property setter assigns."""
    import ast

    from repro.tools.analyzer.project import assigned_self_attrs

    func = model.setters[setter_name]
    attrs: "set[str]" = set()
    for stmt in ast.walk(func):
        if isinstance(stmt, ast.stmt):
            attrs.update(attr for attr, _value in assigned_self_attrs(stmt))
    return attrs
