"""Command line front-end: ``python -m repro.tools.analyzer src/``.

Exit codes: 0 — clean, 1 — findings reported, 2 — usage or parse
error.  ``--format json`` emits a machine-readable report (one object
per finding) for the CI artifact; ``--select`` narrows to a comma
separated list of rule ids.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence, TextIO

from repro.tools.analyzer.findings import Finding
from repro.tools.analyzer.project import load_project
from repro.tools.analyzer.registry import Rule, all_rules


def analyze_paths(
    paths: "Sequence[str]", select: "Sequence[str] | None" = None
) -> "list[Finding]":
    """All findings for the files/directories in ``paths``, sorted.

    ``select`` narrows to the given rule ids; None means every
    registered rule.  This is the library entry point the CLI and the
    test suite share.
    """
    rules = _select_rules(select)
    project = load_project(list(paths))
    findings: "list[Finding]" = []
    for rule in rules:
        findings.extend(rule.run(project))
    return sorted(findings)


def _select_rules(select: "Sequence[str] | None") -> "list[Rule]":
    rules = all_rules()
    if select is None:
        return rules
    wanted = {rule_id.strip().upper() for rule_id in select if rule_id.strip()}
    known = {rule.rule_id for rule in rules}
    unknown = wanted - known
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [rule for rule in rules if rule.rule_id in wanted]


def _render_text(findings: "list[Finding]", stream: TextIO) -> None:
    for finding in findings:
        print(finding.render(), file=stream)
    count = len(findings)
    noun = "finding" if count == 1 else "findings"
    print(f"{count} {noun}", file=stream)


def _render_json(findings: "list[Finding]", stream: TextIO) -> None:
    report = {
        "findings": [finding.to_json() for finding in findings],
        "count": len(findings),
    }
    json.dump(report, stream, indent=2, sort_keys=True)
    print(file=stream)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.analyzer",
        description="Engine-contract static analyzer (rules RL001-RL007).",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyze"
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name}: {rule.synopsis}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2

    select = args.select.split(",") if args.select else None
    try:
        findings = analyze_paths(args.paths, select=select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"error: cannot parse {exc.filename}: {exc.msg}", file=sys.stderr)
        return 2

    if args.output is not None:
        with open(args.output, "w") as stream:
            _render(findings, args.format, stream)
        # Still summarize on stdout so CI logs show the verdict inline.
        count = len(findings)
        noun = "finding" if count == 1 else "findings"
        print(f"{count} {noun} (report written to {args.output})")
    else:
        _render(findings, args.format, sys.stdout)

    return 1 if findings else 0


def _render(findings: "list[Finding]", fmt: str, stream: TextIO) -> None:
    if fmt == "json":
        _render_json(findings, stream)
    else:
        _render_text(findings, stream)
