"""Parsed-project model shared by every rule.

The analyzer parses each file once into a :class:`ModuleInfo` (source,
AST, suppression index) and pre-digests each class into a
:class:`ClassModel` — methods, ``__init__``-assigned attributes,
property/getter indirection, the intra-class call graph — so rules
express their contract checks over a uniform model instead of each
re-walking raw AST.  All analysis is purely syntactic: nothing is
imported or executed, so seeded-violation fixtures are safe to analyze.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.tools.analyzer.suppress import SuppressionIndex

FunctionNode = "ast.FunctionDef | ast.AsyncFunctionDef"


def is_self_attribute(node: ast.AST, self_name: str = "self") -> "str | None":
    """The attribute name when ``node`` is ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


def assigned_self_attrs(node: ast.stmt) -> "list[tuple[str, ast.AST]]":
    """``(attr, value)`` pairs for every ``self.X = ...`` in one statement."""
    pairs: "list[tuple[str, ast.AST]]" = []
    if isinstance(node, ast.Assign):
        for target in node.targets:
            for element in ast.walk(target):
                attr = is_self_attribute(element)
                if attr is not None:
                    pairs.append((attr, node.value))
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        attr = is_self_attribute(node.target)
        if attr is not None and node.value is not None:
            pairs.append((attr, node.value))
    return pairs


def decorator_names(func: ast.AST) -> "set[str]":
    """Flat decorator names (``property``, ``x.setter`` -> ``setter``)."""
    names: "set[str]" = set()
    for dec in getattr(func, "decorator_list", []):
        if isinstance(dec, ast.Name):
            names.add(dec.id)
        elif isinstance(dec, ast.Attribute):
            names.add(dec.attr)
        elif isinstance(dec, ast.Call):
            names.update(decorator_names_from_expr(dec.func))
    return names


def decorator_names_from_expr(expr: ast.AST) -> "set[str]":
    if isinstance(expr, ast.Name):
        return {expr.id}
    if isinstance(expr, ast.Attribute):
        return {expr.attr}
    return set()


@dataclass
class ClassModel:
    """One class, pre-digested for contract rules."""

    name: str
    node: ast.ClassDef
    module: "ModuleInfo"
    base_names: "list[str]" = field(default_factory=list)
    #: method name -> its def node (latest definition wins, except that
    #: property getters are kept separate from same-named setters).
    methods: "dict[str, ast.FunctionDef]" = field(default_factory=dict)
    #: property name -> getter def node
    properties: "dict[str, ast.FunctionDef]" = field(default_factory=dict)
    #: property name -> setter def node
    setters: "dict[str, ast.FunctionDef]" = field(default_factory=dict)
    #: attr -> first value expression assigned in __init__
    init_attrs: "dict[str, ast.AST]" = field(default_factory=dict)
    #: attr -> methods (other than __init__) that assign it
    assigned_outside_init: "dict[str, set[str]]" = field(default_factory=dict)

    @property
    def path(self) -> str:
        return self.module.path

    def method_like(self, name: str) -> "ast.FunctionDef | None":
        """A method or property getter by name."""
        return self.methods.get(name) or self.properties.get(name)

    def self_calls(self, method: ast.FunctionDef) -> "set[str]":
        """Names of this class's methods referenced through ``self``.

        Both calls (``self.m(...)``) and bare references (``self.m``,
        e.g. a bound method handed to a plan stage) count: either way
        the referenced method can run wherever the referencing one does.
        """
        names: "set[str]" = set()
        for node in ast.walk(method):
            attr = is_self_attribute(node)
            if attr is not None and (attr in self.methods or attr in self.properties):
                names.add(attr)
        return names

    def reachable_methods(self, seeds: "set[str]") -> "set[str]":
        """Transitive closure of :meth:`self_calls` from ``seeds``."""
        seen: "set[str]" = set()
        frontier = [name for name in seeds if self.method_like(name) is not None]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            func = self.method_like(name)
            if func is None:
                continue
            frontier.extend(self.self_calls(func) - seen)
        return seen

    def attr_reads(self, method: ast.FunctionDef) -> "set[str]":
        """``self.X`` attributes loaded (not stored) in one method."""
        reads: "set[str]" = set()
        for node in ast.walk(method):
            attr = is_self_attribute(node)
            if attr is not None and isinstance(node.ctx, ast.Load):
                reads.add(attr)
        return reads

    def property_backing(self, name: str) -> "set[str]":
        """Instance attributes a property getter reads."""
        getter = self.properties.get(name)
        if getter is None:
            return set()
        return self.attr_reads(getter)

    def resolve_attr(self, name: str) -> "set[str]":
        """A read of ``self.<name>`` as the underlying stored attrs.

        Plain data attributes resolve to themselves; property reads
        resolve to the attributes the getter touches, so fingerprint /
        epoch coverage sees through read-only property indirection.
        """
        if name in self.init_attrs or name in self.assigned_outside_init:
            return {name}
        if name in self.properties:
            return self.property_backing(name) or {name}
        return {name}


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex
    classes: "list[ClassModel]" = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, root: "Path | None" = None) -> "ModuleInfo":
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        shown = str(path.relative_to(root)) if root is not None else str(path)
        info = cls(
            path=shown,
            source=source,
            tree=tree,
            suppressions=SuppressionIndex(source, tree),
        )
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                info.classes.append(_digest_class(node, info))
        return info


def _digest_class(node: ast.ClassDef, module: ModuleInfo) -> ClassModel:
    model = ClassModel(name=node.name, node=node, module=module)
    for base in node.bases:
        if isinstance(base, ast.Name):
            model.base_names.append(base.id)
        elif isinstance(base, ast.Attribute):
            model.base_names.append(base.attr)
    for item in node.body:
        if not isinstance(item, ast.FunctionDef):
            continue
        decorators = decorator_names(item)
        if "property" in decorators or "cached_property" in decorators:
            model.properties[item.name] = item
        elif "setter" in decorators:
            model.setters[item.name] = item
        else:
            model.methods[item.name] = item
    init = model.methods.get("__init__")
    for name, func in model.methods.items():
        for stmt in ast.walk(func):
            for attr, value in assigned_self_attrs(stmt) if isinstance(stmt, ast.stmt) else []:
                if func is init:
                    model.init_attrs.setdefault(attr, value)
                else:
                    model.assigned_outside_init.setdefault(attr, set()).add(name)
    # Property setters assign their backing attribute too.
    for name, func in model.setters.items():
        for stmt in ast.walk(func):
            for attr, _value in assigned_self_attrs(stmt) if isinstance(stmt, ast.stmt) else []:
                model.assigned_outside_init.setdefault(attr, set()).add(name)
    return model


@dataclass
class Project:
    """Every parsed module of one analyzer invocation."""

    modules: "list[ModuleInfo]"

    def classes_named(self, name: str) -> "list[ClassModel]":
        return [
            model
            for module in self.modules
            for model in module.classes
            if model.name == name
        ]

    def all_classes(self) -> "list[ClassModel]":
        return [model for module in self.modules for model in module.classes]


def collect_files(paths: "list[str]") -> "list[Path]":
    """Every ``*.py`` under the given files/directories, sorted."""
    files: "set[Path]" = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(
                candidate
                for candidate in path.rglob("*.py")
                if not any(part.startswith(".") for part in candidate.parts)
            )
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def load_project(paths: "list[str]", root: "Path | None" = None) -> Project:
    """Parse every Python file under ``paths`` into a :class:`Project`."""
    return Project(
        modules=[ModuleInfo.parse(path, root=root) for path in collect_files(paths)]
    )
