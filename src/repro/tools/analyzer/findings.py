"""Structured findings: what a rule reports, and how it renders.

Every rule yields :class:`Finding` instances — one per violation, each
carrying the rule id, the offending location and a human-readable
message.  The CLI sorts findings by path, then line, then rule id, so
output is deterministic regardless of rule execution order.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """The canonical one-line text form: ``path:line:col RLxxx msg``."""
        return f"{self.path}:{self.line}:{self.col} {self.rule_id} {self.message}"

    def to_json(self) -> "dict[str, object]":
        """The finding as a JSON-serializable mapping."""
        return {
            "rule_id": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
