"""``python -m repro.tools.analyzer`` entry point."""

from __future__ import annotations

import sys

from repro.tools.analyzer.cli import main

if __name__ == "__main__":
    sys.exit(main())
