"""Inline suppression comments: ``# repro: ignore[RLxxx]``.

Three scopes, all carrying an explicit rule list so a suppression can
never silently swallow an unrelated rule:

* **line** — a comment on the offending line suppresses findings that
  rule reports *on that line*;
* **scope** — the same comment on a ``def`` or ``class`` line
  suppresses the rule throughout that definition's body (used for
  whole-function exemptions such as plan-time-warmed memo writes);
* **file** — ``# repro: ignore-file[RLxxx]`` anywhere in a file
  suppresses the rule for the entire file (fixture files seed
  violations of one rule and suppress the others this way).

Suppressions are parsed per physical line with a comment-shaped
pattern, so they work on any line a finding can point at without a
tokenizer round-trip.
"""

from __future__ import annotations

import ast
import re

_LINE_PATTERN = re.compile(r"#\s*repro:\s*ignore\[([A-Z0-9,\s]+)\]")
_FILE_PATTERN = re.compile(r"#\s*repro:\s*ignore-file\[([A-Z0-9,\s]+)\]")


def _rule_ids(spec: str) -> "frozenset[str]":
    return frozenset(part.strip() for part in spec.split(",") if part.strip())


class SuppressionIndex:
    """Which rules are suppressed on which lines of one file."""

    def __init__(self, source: str, tree: ast.Module) -> None:
        self._by_line: "dict[int, frozenset[str]]" = {}
        self._file_wide: "frozenset[str]" = frozenset()
        marked: "dict[int, frozenset[str]]" = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _FILE_PATTERN.search(text)
            if match:
                self._file_wide = self._file_wide | _rule_ids(match.group(1))
                continue
            match = _LINE_PATTERN.search(text)
            if match:
                marked[lineno] = _rule_ids(match.group(1))
        self._by_line.update(marked)
        # A marker on a def/class line widens to the whole definition.
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            rules = marked.get(node.lineno)
            if not rules:
                continue
            end = node.end_lineno or node.lineno
            for lineno in range(node.lineno, end + 1):
                self._by_line[lineno] = self._by_line.get(lineno, frozenset()) | rules

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` findings on ``line`` are silenced."""
        if rule_id in self._file_wide:
            return True
        return rule_id in self._by_line.get(line, frozenset())
