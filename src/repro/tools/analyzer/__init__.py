"""Engine-contract static analyzer.

Pure-stdlib AST analysis encoding the repo's cross-cutting invariants
as machine-checked rules:

========  =========================  =============================================
rule id   name                       contract
========  =========================  =============================================
RL001     journalled-mutation        store mutations bump the generation and
                                     journal the touched ids on every path
RL002     fingerprint-completeness   query-defining parameters appear in
                                     ``fingerprint()`` and are immutable
RL003     cache-epoch-coverage       config reads inside plan stages are
                                     components of ``cache_epoch()``
RL004     scatter-purity             scatter-reachable callables never write
                                     shared state
RL005     determinism                no ordered results from bare set
                                     iteration; stable sorts on merge paths
RL006     shm-lifecycle              shared-memory blocks are closed by an
                                     owning class on all exit paths; one
                                     unlink owner per module
RL007     succinct-sync              column mutations in a succinct-backed
                                     store notify the succinct symbol index
                                     in the same method
========  =========================  =============================================

Run it with ``python -m repro.tools.analyzer src/`` or call
:func:`analyze_paths` directly.  Suppress a deliberate violation with
``# repro: ignore[RL004]`` on the offending line (on a ``def`` line the
suppression covers the whole body; ``# repro: ignore-file[RLxxx]``
anywhere covers the file).
"""

from repro.tools.analyzer.cli import analyze_paths, main
from repro.tools.analyzer.findings import Finding
from repro.tools.analyzer.project import Project, load_project
from repro.tools.analyzer.registry import Rule, all_rules

__all__ = [
    "Finding",
    "Project",
    "Rule",
    "all_rules",
    "analyze_paths",
    "load_project",
    "main",
]
