"""Rule registry: id -> rule, populated by the ``@rule`` decorator.

A rule is a callable ``(Project) -> Iterable[Finding]``; registering it
attaches the rule id and one-line synopsis the CLI lists and selects
by.  Findings a rule yields are filtered against each file's
suppression index centrally, so individual rules never need to know
the suppression syntax exists.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.tools.analyzer.findings import Finding
from repro.tools.analyzer.project import Project

RuleCheck = Callable[[Project], Iterable[Finding]]


class Rule:
    """One registered rule."""

    def __init__(self, rule_id: str, name: str, synopsis: str, check: RuleCheck) -> None:
        self.rule_id = rule_id
        self.name = name
        self.synopsis = synopsis
        self.check = check

    def run(self, project: Project) -> "list[Finding]":
        """The rule's unsuppressed findings, sorted."""
        suppressions = {module.path: module.suppressions for module in project.modules}
        kept = [
            finding
            for finding in self.check(project)
            if not suppressions[finding.path].is_suppressed(self.rule_id, finding.line)
        ]
        return sorted(kept)


_REGISTRY: "dict[str, Rule]" = {}


def rule(rule_id: str, name: str, synopsis: str) -> "Callable[[RuleCheck], RuleCheck]":
    """Register a check function under ``rule_id``."""

    def register(check: RuleCheck) -> RuleCheck:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id}")
        _REGISTRY[rule_id] = Rule(rule_id, name, synopsis, check)
        return check

    return register


def all_rules() -> "list[Rule]":
    """Every registered rule, in id order (imports the rule modules)."""
    import repro.tools.analyzer.rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]
