"""Standalone reproduction report (no pytest needed).

Run:  python -m repro.tools.report [--quick]

Regenerates the paper's headline results in one pass and prints a
summary table: the Figure 3-5 matching matrix, goal-post query
precision/recall, ECG Table-1 peaks and R-R sequences, the Figure-10
index-vs-scan check, and the compression sweep.  Intended as the
smoke-test a downstream user runs right after installing.
"""

from __future__ import annotations

import argparse

from repro import (
    InterpolationBreaker,
    IntervalQuery,
    PatternQuery,
    SequenceDatabase,
)
from repro.baselines.euclidean import EpsilonMatcher
from repro.storage.serialization import raw_size_bytes, representation_size_bytes
from repro.workloads import (
    ecg_corpus,
    fever_corpus,
    figure3_sequence,
    figure4_fluctuated,
    figure5_variants,
    figure9_pair,
)

GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"


def report_fig3_5() -> list[str]:
    exemplar = figure3_sequence()
    fluctuated = figure4_fluctuated(delta=1.0).with_name("figure-4-noisy")
    variants = figure5_variants(exemplar)
    matcher = EpsilonMatcher(exemplar, epsilon=1.0, align="time")
    db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    db.insert(exemplar.with_name("exemplar"))
    db.insert(fluctuated)
    for __, ___, variant in variants:
        db.insert(variant)
    feature_hits = {m.name for m in db.query(PatternQuery(GOALPOST))}
    lines = ["Figures 3-5: value-based vs feature-based matching"]
    for candidate in [fluctuated] + [v for __, ___, v in variants]:
        value_verdict = "match " if matcher.matches(candidate) else "reject"
        feature_verdict = "match " if candidate.name in feature_hits else "reject"
        lines.append(f"  {candidate.name:<20} value:{value_verdict}  feature:{feature_verdict}")
    return lines


def report_goalpost(n_scale: int) -> list[str]:
    db = SequenceDatabase(breaker=InterpolationBreaker(0.5))
    db.insert_all(
        fever_corpus(n_two_peak=5 * n_scale, n_one_peak=3 * n_scale, n_three_peak=3 * n_scale)
    )
    matches = {m.name for m in db.query(PatternQuery(GOALPOST))}
    positives = {db.name_of(i) for i in db.ids() if "2p" in db.name_of(i)}
    tp = len(matches & positives)
    precision = tp / max(len(matches), 1)
    recall = tp / max(len(positives), 1)
    return [
        f"Goal-post query over {len(db)} logs: precision {precision:.2f}, recall {recall:.2f}"
    ]


def report_ecg() -> list[str]:
    db = SequenceDatabase(breaker=InterpolationBreaker(10.0), theta=5.0)
    top, bottom = figure9_pair()
    db.insert(top)
    db.insert(bottom)
    lines = ["Figure 9 / Table 1: ECG breaking"]
    for sequence_id in (0, 1):
        rep = db.representation_of(sequence_id)
        rr = [int(v) for v in db.rr_intervals_of(sequence_id)]
        lines.append(
            f"  {db.name_of(sequence_id):<12} {len(rep):>3} segments, "
            f"{db.peak_count_of(sequence_id)} R peaks, R-R {rr}"
        )
    return lines


def report_rr_index(n_scale: int) -> list[str]:
    db = SequenceDatabase(breaker=InterpolationBreaker(10.0), theta=5.0)
    db.insert_all(ecg_corpus(n_sequences=20 * n_scale, seed=31))
    agreements = 0
    checks = [(135.0, 5.0), (150.0, 10.0), (120.0, 0.0)]
    for target, delta in checks:
        index_hits = {m.sequence_id for m in db.query(IntervalQuery(target, delta))}
        agreements += index_hits == set(db.scan_rr(target, delta))
    return [
        f"Figure 10 index: {agreements}/{len(checks)} range queries identical to a linear scan "
        f"over {len(db)} ECGs ({db.rr_index.bucket_count()} B-tree buckets)"
    ]


def report_compression(n_scale: int) -> list[str]:
    corpus = ecg_corpus(n_sequences=4 * n_scale, seed=41)
    lines = ["Compression sweep (paper: ~20 segments, ~8x at its epsilon):"]
    for epsilon in (5.0, 10.0, 20.0):
        breaker = InterpolationBreaker(epsilon)
        segments = points = rep_bytes = raw_bytes = 0
        for seq in corpus:
            rep = breaker.represent(seq, curve_kind="interpolation")
            segments += len(rep)
            points += len(seq)
            rep_bytes += representation_size_bytes(rep)
            raw_bytes += raw_size_bytes(seq)
        lines.append(
            f"  eps={epsilon:<4g} {segments / len(corpus):>6.1f} segs/ECG   "
            f"paper-convention {points / (3 * segments):>5.1f}x   bytes {raw_bytes / rep_bytes:>5.2f}x"
        )
    return lines


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller corpora (CI-sized run)"
    )
    args = parser.parse_args(argv)
    n_scale = 1 if args.quick else 3

    sections = [
        report_fig3_5(),
        report_goalpost(n_scale),
        report_ecg(),
        report_rr_index(n_scale),
        report_compression(n_scale),
    ]
    print("repro — reproduction report for Shatkay & Zdonik (ICDE 1996)")
    print("=" * 62)
    for section in sections:
        print()
        for line in section:
            print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
