"""repro — a reproduction of Shatkay & Zdonik (ICDE 1996),
"Approximate Queries and Representations for Large Data Sequences".

The library stores large data sequences as series of fitted real-valued
functions (the paper's divide-and-conquer representation), extracts
domain features (peaks, slopes, R-R intervals) from the functions, and
answers *generalized approximate queries* — queries closed under
feature-preserving transformations — through pattern and inverted-file
indexes, without touching the raw data.

Quickstart
----------
>>> from repro import SequenceDatabase, InterpolationBreaker, PatternQuery
>>> from repro.workloads import goalpost_fever
>>> db = SequenceDatabase(breaker=InterpolationBreaker(epsilon=0.5))
>>> db.insert(goalpost_fever())
0
>>> [m.name for m in db.query(PatternQuery("(0|-)* + (0|-)^+ + (0|-)*"))]
['goalpost']
"""

from repro.core import (
    FunctionSeriesRepresentation,
    MatchGrade,
    Segment,
    Sequence,
    Tolerance,
    count_peaks,
    find_peaks,
    peak_table,
    rr_intervals,
)
from repro.patterns import TWO_PEAKS, SymbolPattern, matches_pattern
from repro.query import (
    ExemplarQuery,
    IntervalQuery,
    PatternQuery,
    PeakCountQuery,
    QueryMatch,
    SequenceDatabase,
    ShapeQuery,
    SteepnessQuery,
    parse_query,
)
from repro.segmentation import (
    BezierBreaker,
    DynamicProgrammingBreaker,
    InterpolationBreaker,
    RecursiveCurveFitBreaker,
    RegressionBreaker,
    SlidingWindowBreaker,
)

__version__ = "1.0.0"

__all__ = [
    "Sequence",
    "Segment",
    "FunctionSeriesRepresentation",
    "find_peaks",
    "count_peaks",
    "peak_table",
    "rr_intervals",
    "MatchGrade",
    "Tolerance",
    "SymbolPattern",
    "TWO_PEAKS",
    "matches_pattern",
    "SequenceDatabase",
    "PatternQuery",
    "PeakCountQuery",
    "IntervalQuery",
    "SteepnessQuery",
    "ShapeQuery",
    "ExemplarQuery",
    "QueryMatch",
    "parse_query",
    "InterpolationBreaker",
    "RegressionBreaker",
    "BezierBreaker",
    "RecursiveCurveFitBreaker",
    "DynamicProgrammingBreaker",
    "SlidingWindowBreaker",
    "__version__",
]
