"""The slope-sign alphabet ``{+, -, 0}`` (paper Section 4.4).

For a fixed small threshold ``theta`` a segment's mean slope is
classified as rising (``'+'``, slope > theta), falling (``'-'``,
slope < -theta) or flat (``'0'``, otherwise).  "The correctness of the
results depends on theta (the steepness of the slopes) and the distance
tolerated between the linear approximation and the subsequences" — both
are explicit parameters throughout this library.
"""

from __future__ import annotations

from repro.core.errors import PatternSyntaxError

__all__ = ["SYMBOLS", "RISING", "FALLING", "FLAT", "classify_slope", "validate_symbols"]

RISING = "+"
FALLING = "-"
FLAT = "0"

#: The full alphabet, in display order.
SYMBOLS = (RISING, FALLING, FLAT)


def classify_slope(slope: float, theta: float = 0.0) -> str:
    """Map a slope to its symbol under flatness threshold ``theta``.

    The scalar fast path of the Section 4.4 rule; must apply exactly
    the comparisons of the vectorized
    :func:`repro.core.representation.classify_slopes` (the pair is held
    in lock-step by ``tests/patterns/test_alphabet.py``).
    """
    if theta < 0:
        raise PatternSyntaxError("theta must be non-negative")
    if slope > theta:
        return RISING
    if slope < -theta:
        return FALLING
    return FLAT


def validate_symbols(symbols: str) -> str:
    """Check that a string uses only alphabet symbols; returns it back."""
    for i, ch in enumerate(symbols):
        if ch not in SYMBOLS:
            raise PatternSyntaxError(
                f"invalid symbol {ch!r} at position {i}; alphabet is {SYMBOLS}"
            )
    return symbols
