"""A regular-expression engine over the slope-sign alphabet.

The paper poses the goal-post fever query "as a regular expression over
the alphabet {+, -, 0}":

    ``(0|-)* + (0|-)+ + (0|-)*``

i.e. anything non-rising, a rise, something descending, another rise,
anything non-rising — exactly two upward excursions.  (The paper "does
not depend on this particular choice of pattern language", and neither
does the library: patterns compile to plain NFAs that any caller can
run over symbol strings.)

Supported syntax
----------------
* literal symbols — any character that is not an operator
  (``+`` ``-`` ``0`` here, but the engine is alphabet-agnostic);
* ``.`` — any single symbol;
* ``[abc]`` — character class, with ``[^abc]`` negation;
* concatenation, ``|`` alternation, ``( )`` grouping;
* postfix ``*`` (zero or more), ``^+`` (one or more), ``?`` (optional),
  and ``{m}`` / ``{m,n}`` bounded repetition.

One wrinkle: ``+`` is both an alphabet symbol and the usual "one or
more" operator.  Because the paper writes its query with ``+`` as a
*literal* symbol, this engine treats bare ``+`` as a literal and spells
"one or more" as ``^+`` (postfix).  ``\\+``, ``\\-`` etc. also work as
explicit literals.  Whitespace is ignored everywhere.

Implementation: recursive-descent parser to an AST, Thompson
construction to an epsilon-NFA, and subset simulation for matching —
linear in pattern size times input length, no backtracking blowups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import PatternSyntaxError

__all__ = ["SymbolPattern"]

# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Literal:
    symbol: str


@dataclass(frozen=True)
class _AnySymbol:
    pass


@dataclass(frozen=True)
class _CharClass:
    symbols: frozenset
    negated: bool


@dataclass(frozen=True)
class _Concat:
    parts: tuple


@dataclass(frozen=True)
class _Alternate:
    options: tuple


@dataclass(frozen=True)
class _Repeat:
    inner: object
    lo: int
    hi: "int | None"  # None = unbounded


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

_POSTFIX = {"*", "?"}


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def parse(self) -> object:
        node = self._alternation()
        if self.pos != len(self.text):
            raise PatternSyntaxError(
                f"unexpected {self.text[self.pos]!r} at position {self.pos}"
            )
        return node

    # -- grammar -------------------------------------------------------

    def _alternation(self) -> object:
        options = [self._concatenation()]
        while self._peek() == "|":
            self._take()
            options.append(self._concatenation())
        if len(options) == 1:
            return options[0]
        return _Alternate(tuple(options))

    def _concatenation(self) -> object:
        parts = []
        while True:
            ch = self._peek()
            if ch is None or ch in ")|":
                break
            parts.append(self._repetition())
        if not parts:
            return _Concat(())
        if len(parts) == 1:
            return parts[0]
        return _Concat(tuple(parts))

    def _repetition(self) -> object:
        node = self._atom()
        while True:
            ch = self._peek()
            if ch == "*":
                self._take()
                node = _Repeat(node, 0, None)
            elif ch == "?":
                self._take()
                node = _Repeat(node, 0, 1)
            elif ch == "^":
                self._take()
                if self._peek() != "+":
                    raise PatternSyntaxError("'^' must be followed by '+' (one-or-more)")
                self._take()
                node = _Repeat(node, 1, None)
            elif ch == "{":
                node = self._braces(node)
            else:
                return node

    def _braces(self, node: object) -> object:
        self._expect("{")
        lo = self._integer()
        hi: "int | None" = lo
        if self._peek() == ",":
            self._take()
            if self._peek() == "}":
                hi = None
            else:
                hi = self._integer()
        self._expect("}")
        if hi is not None and hi < lo:
            raise PatternSyntaxError(f"bad repetition bounds {{{lo},{hi}}}")
        return _Repeat(node, lo, hi)

    def _atom(self) -> object:
        ch = self._peek()
        if ch is None:
            raise PatternSyntaxError("unexpected end of pattern")
        if ch == "(":
            self._take()
            node = self._alternation()
            self._expect(")")
            return node
        if ch == "[":
            return self._char_class()
        if ch == ".":
            self._take()
            return _AnySymbol()
        if ch == "\\":
            self._take()
            escaped = self._take()
            if escaped is None:
                raise PatternSyntaxError("dangling escape at end of pattern")
            return _Literal(escaped)
        if ch in "*?^{}]":
            raise PatternSyntaxError(f"unexpected operator {ch!r} at position {self.pos}")
        self._take()
        return _Literal(ch)

    def _char_class(self) -> object:
        self._expect("[")
        negated = False
        if self._peek() == "^":
            self._take()
            negated = True
        symbols = set()
        while True:
            ch = self._take()
            if ch is None:
                raise PatternSyntaxError("unterminated character class")
            if ch == "]":
                break
            if ch == "\\":
                escaped = self._take()
                if escaped is None:
                    raise PatternSyntaxError("dangling escape in character class")
                ch = escaped
            symbols.add(ch)
        if not symbols:
            raise PatternSyntaxError("empty character class")
        return _CharClass(frozenset(symbols), negated)

    def _integer(self) -> int:
        digits = ""
        while (ch := self._peek()) is not None and ch.isdigit():
            digits += self._take()  # type: ignore[operator]
        if not digits:
            raise PatternSyntaxError(f"expected integer at position {self.pos}")
        return int(digits)

    # -- low-level -----------------------------------------------------

    def _peek(self) -> "str | None":
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1
        if self.pos >= len(self.text):
            return None
        return self.text[self.pos]

    def _take(self) -> "str | None":
        ch = self._peek()
        if ch is not None:
            self.pos += 1
        return ch

    def _expect(self, ch: str) -> None:
        if self._take() != ch:
            raise PatternSyntaxError(f"expected {ch!r} near position {self.pos}")


# ----------------------------------------------------------------------
# Thompson NFA
# ----------------------------------------------------------------------


class _State:
    __slots__ = ("epsilon", "edges")

    def __init__(self) -> None:
        self.epsilon: list["_State"] = []
        #: (predicate-kind, payload, target); kinds: "sym", "any", "class"
        self.edges: list[tuple[str, object, "_State"]] = []


def _build(node: object) -> tuple[_State, _State]:
    """Thompson construction: returns (start, accept)."""
    start, accept = _State(), _State()
    if isinstance(node, _Literal):
        start.edges.append(("sym", node.symbol, accept))
    elif isinstance(node, _AnySymbol):
        start.edges.append(("any", None, accept))
    elif isinstance(node, _CharClass):
        start.edges.append(("class", (node.symbols, node.negated), accept))
    elif isinstance(node, _Concat):
        if not node.parts:
            start.epsilon.append(accept)
        else:
            current = start
            for part in node.parts:
                s, a = _build(part)
                current.epsilon.append(s)
                current = a
            current.epsilon.append(accept)
    elif isinstance(node, _Alternate):
        for option in node.options:
            s, a = _build(option)
            start.epsilon.append(s)
            a.epsilon.append(accept)
    elif isinstance(node, _Repeat):
        current = start
        # Mandatory copies.
        for _ in range(node.lo):
            s, a = _build(node.inner)
            current.epsilon.append(s)
            current = a
        if node.hi is None:
            s, a = _build(node.inner)
            current.epsilon.append(s)
            a.epsilon.append(s)
            a.epsilon.append(accept)
            current.epsilon.append(accept)
        else:
            for _ in range(node.hi - node.lo):
                s, a = _build(node.inner)
                current.epsilon.append(s)
                current.epsilon.append(accept)
                current = a
            current.epsilon.append(accept)
    else:  # pragma: no cover - parser produces only the types above
        raise PatternSyntaxError(f"unknown AST node {node!r}")
    return start, accept


def _closure(states: set) -> frozenset:
    stack = list(states)
    seen = set(states)
    while stack:
        state = stack.pop()
        for nxt in state.epsilon:
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return frozenset(seen)


def _step(states: frozenset, symbol: str) -> frozenset:
    out = set()
    for state in states:
        for kind, payload, target in state.edges:
            if kind == "sym":
                if payload == symbol:
                    out.add(target)
            elif kind == "any":
                out.add(target)
            else:  # class
                symbols, negated = payload  # type: ignore[misc]
                if (symbol in symbols) != negated:
                    out.add(target)
    if not out:
        return frozenset()
    return _closure(out)


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


class SymbolPattern:
    """A compiled pattern over symbol strings."""

    def __init__(self, source: str) -> None:
        self.source = source
        ast = _Parser(source).parse()
        self._start, self._accept = _build(ast)
        self._initial = _closure({self._start})

    @classmethod
    def compile(cls, source: "str | SymbolPattern") -> "SymbolPattern":
        if isinstance(source, SymbolPattern):
            return source
        return cls(source)

    # -- matching ------------------------------------------------------

    def fullmatch(self, symbols: str) -> bool:
        """Whether the entire string is in the pattern's language."""
        states = self._initial
        for symbol in symbols:
            states = _step(states, symbol)
            if not states:
                return False
        return self._accept in states

    def match_prefix(self, symbols: str) -> "int | None":
        """Length of the longest matching prefix, or None if none matches."""
        states = self._initial
        best = 0 if self._accept in states else None
        for i, symbol in enumerate(symbols):
            states = _step(states, symbol)
            if not states:
                break
            if self._accept in states:
                best = i + 1
        return best

    def finditer(self, symbols: str) -> Iterator[tuple[int, int]]:
        """Yield ``(start, end)`` of the longest match at each viable start.

        The pattern index uses the starts ("positions of the first
        point"); ends are provided for callers that need spans.
        Zero-length matches are suppressed — a query for "nothing" at
        every position carries no information.
        """
        for start in range(len(symbols) + 1):
            length = self.match_prefix(symbols[start:])
            if length is not None and length > 0:
                yield start, start + length

    def search(self, symbols: str) -> "tuple[int, int] | None":
        """First (leftmost-longest) non-empty match, or None."""
        for span in self.finditer(symbols):
            return span
        return None

    # -- automaton hooks -----------------------------------------------
    # Used by :mod:`repro.patterns.automata` to tabulate the NFA into a
    # dense transition table via subset construction.

    def initial_states(self) -> frozenset:
        """Epsilon closure of the start state."""
        return self._initial

    def step_states(self, states: frozenset, symbol: str) -> frozenset:
        """One subset-simulation step on a concrete symbol."""
        return _step(states, symbol)

    def accepts_states(self, states: frozenset) -> bool:
        """Whether a state set contains the accept state."""
        return self._accept in states

    def __repr__(self) -> str:
        return f"SymbolPattern({self.source!r})"


#: The paper's goal-post fever pattern: exactly two rises separated and
#: surrounded by non-rising stretches (Section 4.4).
TWO_PEAKS = "(0|-)* \\+ (0|-)^+ \\+ (0|-)*"
__all__.append("TWO_PEAKS")
