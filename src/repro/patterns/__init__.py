"""Pattern language over the slope-sign alphabet (paper Section 4.4)."""

from repro.patterns.alphabet import FALLING, FLAT, RISING, SYMBOLS, classify_slope, validate_symbols
from repro.patterns.automata import SLOPE_ALPHABET, TransitionTable, compile_table
from repro.patterns.matcher import (
    SegmentMatch,
    find_pattern_spans,
    matches_pattern,
    matches_pattern_many,
)
from repro.patterns.regex import TWO_PEAKS, SymbolPattern

__all__ = [
    "SYMBOLS",
    "RISING",
    "FALLING",
    "FLAT",
    "classify_slope",
    "validate_symbols",
    "SymbolPattern",
    "TWO_PEAKS",
    "SLOPE_ALPHABET",
    "TransitionTable",
    "compile_table",
    "SegmentMatch",
    "matches_pattern",
    "matches_pattern_many",
    "find_pattern_spans",
]
