"""Pattern language over the slope-sign alphabet (paper Section 4.4)."""

from repro.patterns.alphabet import FALLING, FLAT, RISING, SYMBOLS, classify_slope, validate_symbols
from repro.patterns.matcher import SegmentMatch, find_pattern_spans, matches_pattern
from repro.patterns.regex import TWO_PEAKS, SymbolPattern

__all__ = [
    "SYMBOLS",
    "RISING",
    "FALLING",
    "FLAT",
    "classify_slope",
    "validate_symbols",
    "SymbolPattern",
    "TWO_PEAKS",
    "SegmentMatch",
    "matches_pattern",
    "find_pattern_spans",
]
