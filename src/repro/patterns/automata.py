"""Table-driven automata compiled from :class:`SymbolPattern` NFAs.

The Thompson NFA behind a :class:`~repro.patterns.regex.SymbolPattern`
is great for one-off matching but terrible as a batch primitive: every
input symbol costs a Python subset-simulation step over sets of state
objects.  Over a *known finite alphabet* the classical fix applies —
subset construction tabulates the NFA into a dense DFA whose entire
behaviour is two arrays:

* ``table[state, symbol] -> state`` — the transition matrix, and
* ``accepting[state]`` — the accept mask.

Matching then needs no sets, no closures and no per-state Python: one
array lookup per input symbol.  The execution engine goes further and
runs the same table across *every stored sequence at once* with NumPy
(:mod:`repro.engine.nfa`), which is what makes the paper's Section 4.4
slope-pattern queries a vectorized plan stage.

Subset construction can in principle explode exponentially, so
:func:`compile_table` enforces a state budget and raises
:class:`PatternSyntaxError` beyond it; callers fall back to the plain
NFA matcher in that (practically unreachable for slope patterns) case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import PatternSyntaxError
from repro.patterns.regex import SymbolPattern

__all__ = ["TransitionTable", "compile_table", "SLOPE_ALPHABET"]

#: Alphabet order used for slope-sign tables: the column of symbol ``s``
#: is ``SLOPE_ALPHABET.index(s)``, chosen so that the engine's int8
#: symbol codes (-1, 0, +1) map to columns via ``code + 1``.
SLOPE_ALPHABET = "-0+"


@dataclass(frozen=True)
class TransitionTable:
    """A tabulated DFA over a fixed alphabet.

    Attributes
    ----------
    alphabet:
        One character per table column, in column order.
    table:
        ``int32`` matrix of shape ``(n_states, len(alphabet))``;
        ``table[s, c]`` is the successor of state ``s`` on the symbol in
        column ``c``.
    accepting:
        Boolean accept mask over states.
    start:
        Index of the initial state.
    dead:
        Index of the absorbing reject state (all transitions loop back
        to it and it never accepts).
    """

    alphabet: str
    table: np.ndarray
    accepting: np.ndarray
    start: int
    dead: int

    @property
    def n_states(self) -> int:
        return int(self.table.shape[0])

    def fullmatch(self, symbols: str) -> bool:
        """Scalar table walk — the DFA twin of ``SymbolPattern.fullmatch``.

        Symbols outside the table's alphabet reject immediately (they
        cannot appear in the engine's symbol columns, but a caller may
        feed arbitrary strings).
        """
        columns = {symbol: i for i, symbol in enumerate(self.alphabet)}
        state = self.start
        for symbol in symbols:
            column = columns.get(symbol)
            if column is None:
                return False
            state = int(self.table[state, column])
            if state == self.dead:
                return False
        return bool(self.accepting[state])


def compile_table(
    pattern: "SymbolPattern | str",
    alphabet: str = SLOPE_ALPHABET,
    max_states: int = 4096,
) -> TransitionTable:
    """Subset-construct a pattern's NFA into a :class:`TransitionTable`.

    ``alphabet`` fixes the input universe: ``.`` and negated character
    classes are resolved against it, which matches NFA semantics exactly
    as long as inputs only use alphabet symbols (always true for the
    slope columns).  ``max_states`` bounds the construction; slope
    patterns are tiny, so hitting it means a pathological pattern and a
    :class:`PatternSyntaxError` the caller can treat as "stay on the
    NFA path".
    """
    if len(set(alphabet)) != len(alphabet) or not alphabet:
        raise PatternSyntaxError(f"alphabet {alphabet!r} must be non-empty and duplicate-free")
    compiled = SymbolPattern.compile(pattern)
    start_set = compiled.initial_states()
    dead_set: frozenset = frozenset()
    index: "dict[frozenset, int]" = {start_set: 0}
    worklist = [start_set]
    rows: "list[list[int]]" = []
    accepting: "list[bool]" = []
    while worklist:
        state_set = worklist.pop()
        # Rows are appended in index order: every set enters `index`
        # exactly once, immediately before its worklist entry.
        while len(rows) <= index[state_set]:
            rows.append([0] * len(alphabet))
            accepting.append(False)
        accepting[index[state_set]] = compiled.accepts_states(state_set)
        for column, symbol in enumerate(alphabet):
            successor = compiled.step_states(state_set, symbol)
            if successor not in index:
                if len(index) >= max_states:
                    raise PatternSyntaxError(
                        f"pattern {compiled.source!r} needs more than {max_states} "
                        f"DFA states over alphabet {alphabet!r}"
                    )
                index[successor] = len(index)
                worklist.append(successor)
            rows[index[state_set]][column] = index[successor]
    if dead_set not in index:
        # Unreachable dead state (pattern accepts some continuation of
        # every reachable prefix); add one so callers can always rely on
        # an absorbing reject state existing.
        index[dead_set] = len(index)
        rows.append([index[dead_set]] * len(alphabet))
        accepting.append(False)
    table = np.asarray(rows, dtype=np.int32)
    return TransitionTable(
        alphabet=alphabet,
        table=table,
        accepting=np.asarray(accepting, dtype=bool),
        start=index[start_set],
        dead=index[dead_set],
    )
