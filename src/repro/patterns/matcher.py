"""Matching patterns directly against representations.

Convenience layer tying :class:`~repro.patterns.regex.SymbolPattern` to
:class:`~repro.core.representation.FunctionSeriesRepresentation`:
classify a representation's segments into the slope alphabet, then run
the pattern, mapping symbol positions back to segments and times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.representation import FunctionSeriesRepresentation
from repro.core.segment import Segment
from repro.patterns.regex import SymbolPattern

__all__ = ["SegmentMatch", "matches_pattern", "find_pattern_spans"]


@dataclass(frozen=True)
class SegmentMatch:
    """A pattern occurrence mapped back onto segments and times."""

    first_segment: int
    last_segment: int
    start_time: float
    end_time: float
    segments: tuple[Segment, ...]


def matches_pattern(
    representation: FunctionSeriesRepresentation,
    pattern: "SymbolPattern | str",
    theta: float = 0.0,
    collapse_runs: bool = True,
) -> bool:
    """Whether the whole representation matches the pattern.

    Full-string semantics, as in the goal-post fever query: the pattern
    constrains the entire sequence's behaviour.  Collapsed runs are the
    default because patterns are written against logical rises and
    falls, not against the incidental number of linear pieces.
    """
    compiled = SymbolPattern.compile(pattern)
    return compiled.fullmatch(representation.symbol_string(theta, collapse_runs=collapse_runs))


def find_pattern_spans(
    representation: FunctionSeriesRepresentation,
    pattern: "SymbolPattern | str",
    theta: float = 0.0,
) -> list[SegmentMatch]:
    """Occurrences of a pattern inside one representation.

    Works on the uncollapsed symbol string so every symbol position is
    a segment index, giving exact time spans for each occurrence.
    """
    compiled = SymbolPattern.compile(pattern)
    symbols = representation.symbol_string(theta)
    spans = []
    for start, end in compiled.finditer(symbols):
        segs = representation.segments[start:end]
        spans.append(
            SegmentMatch(
                first_segment=start,
                last_segment=end - 1,
                start_time=segs[0].start_time,
                end_time=segs[-1].end_time,
                segments=tuple(segs),
            )
        )
    return spans
