"""Matching patterns directly against representations.

Convenience layer tying :class:`~repro.patterns.regex.SymbolPattern` to
:class:`~repro.core.representation.FunctionSeriesRepresentation`:
classify a representation's segments into the slope alphabet, then run
the pattern, mapping symbol positions back to segments and times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import PatternSyntaxError
from repro.core.representation import FunctionSeriesRepresentation
from repro.core.segment import Segment
from repro.patterns.regex import SymbolPattern

__all__ = ["SegmentMatch", "matches_pattern", "matches_pattern_many", "find_pattern_spans"]


@dataclass(frozen=True)
class SegmentMatch:
    """A pattern occurrence mapped back onto segments and times."""

    first_segment: int
    last_segment: int
    start_time: float
    end_time: float
    segments: tuple[Segment, ...]


def matches_pattern(
    representation: FunctionSeriesRepresentation,
    pattern: "SymbolPattern | str",
    theta: float = 0.0,
    collapse_runs: bool = True,
) -> bool:
    """Whether the whole representation matches the pattern.

    Full-string semantics, as in the goal-post fever query: the pattern
    constrains the entire sequence's behaviour.  Collapsed runs are the
    default because patterns are written against logical rises and
    falls, not against the incidental number of linear pieces.
    """
    compiled = SymbolPattern.compile(pattern)
    return compiled.fullmatch(representation.symbol_string(theta, collapse_runs=collapse_runs))


def matches_pattern_many(
    representations: "list[FunctionSeriesRepresentation]",
    pattern: "SymbolPattern | str",
    theta: float = 0.0,
    collapse_runs: bool = True,
) -> "list[bool]":
    """Full-match one pattern against many representations at once.

    Tabulates the pattern into a DFA once (see
    :mod:`repro.patterns.automata`) and walks the table per string, so
    each symbol costs one array lookup instead of an NFA subset step.
    Falls back to the NFA matcher if the pattern exceeds the tabulation
    budget.  Results are identical to calling :func:`matches_pattern`
    per representation.  (Database-resident sequences should be queried
    through :class:`~repro.query.queries.PatternQuery` instead, which
    runs the same table over the columnar symbol store without even
    building the strings.)
    """
    from repro.patterns.automata import compile_table

    compiled = SymbolPattern.compile(pattern)
    strings = [
        representation.symbol_string(theta, collapse_runs=collapse_runs)
        for representation in representations
    ]
    try:
        table = compile_table(compiled)
    except PatternSyntaxError:
        return [compiled.fullmatch(symbols) for symbols in strings]
    return [table.fullmatch(symbols) for symbols in strings]


def find_pattern_spans(
    representation: FunctionSeriesRepresentation,
    pattern: "SymbolPattern | str",
    theta: float = 0.0,
) -> list[SegmentMatch]:
    """Occurrences of a pattern inside one representation.

    Works on the uncollapsed symbol string so every symbol position is
    a segment index, giving exact time spans for each occurrence.
    """
    compiled = SymbolPattern.compile(pattern)
    symbols = representation.symbol_string(theta)
    spans = []
    for start, end in compiled.finditer(symbols):
        segs = representation.segments[start:end]
        spans.append(
            SegmentMatch(
                first_segment=start,
                last_segment=end - 1,
                start_time=segs[0].start_time,
                end_time=segs[-1].end_time,
                segments=tuple(segs),
            )
        )
    return spans
