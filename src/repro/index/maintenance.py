"""Shared maintenance policies for incrementally patched indexes.

Several structures in this codebase are patched in place by streaming
mutations and accumulate *stale* residue while doing so: the symbol
trie leaves dead occurrence entries on its nodes when a suffix is
rewritten (:meth:`repro.index.trie.SymbolTrie.update`), and the
cluster-representative index keeps assigning mutated sequences to the
leader partition chosen at build time
(:class:`repro.engine.clustering.ClusterIndex`).  Both degrade
gracefully — correctness never depends on compaction — but both
eventually want a full rebuild, and both want the *same* shape of
trigger: don't bother below a fixed floor of staleness, and above it
rebuild once the stale fraction dominates the structure.

Keeping the rule here means the two can never drift apart, and gives
third-party incremental indexes the identical knob.
"""

from __future__ import annotations

__all__ = ["stale_rebuild_due"]

#: Default staleness floor: below this many stale entries a rebuild
#: can never be worth its O(total) cost, whatever the ratio.
STALE_REBUILD_FLOOR = 256


def stale_rebuild_due(stale: int, total: int, floor: int = STALE_REBUILD_FLOOR) -> bool:
    """Whether accumulated staleness justifies an O(total) rebuild.

    True when more than ``floor`` stale entries have accumulated *and*
    they outnumber half of ``total`` — i.e. the amortized cost of the
    rebuild is charged against at least as much dead weight as live
    structure.  With every mutation adding O(1) stale entries, rebuilds
    triggered by this rule cost O(1) amortized per mutation.
    """
    return stale > floor and 2 * stale > total
