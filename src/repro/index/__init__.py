"""Index substrates: B-tree, inverted file (paper Figure 10), trie and
slope-pattern index (paper Section 4.4)."""

from repro.index.btree import BTree
from repro.index.inverted import InvertedFileIndex, Posting, PostingBucket
from repro.index.maintenance import stale_rebuild_due
from repro.index.pattern_index import PatternIndex
from repro.index.trie import Occurrence, SymbolTrie

__all__ = [
    "BTree",
    "InvertedFileIndex",
    "Posting",
    "PostingBucket",
    "PatternIndex",
    "SymbolTrie",
    "Occurrence",
    "stale_rebuild_due",
]
