"""The inverted-file index of paper Figure 10.

"A simple inverted file index is sufficient for this purpose ... It
consists of a B-Tree structure which points to the postings file.  The
postings file contains buckets of R-R interval lengths and a set of
pointers to the ECG representations which contain those interval
lengths ... Each bucket in the postings file is sorted by the values
stored in it."

Here the indexed value is any scalar feature (R-R interval lengths in
the paper); buckets quantize values to a configurable width, a B-tree
orders the bucket keys, and each posting records the exact value, the
owning sequence, and optionally the position of the feature — the paper
notes positions "can also be augmented" but are not required because
the physician inspects the ECG anyway.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.core.errors import IndexError_
from repro.index.btree import BTree

__all__ = ["Posting", "PostingBucket", "InvertedFileIndex"]


def _checked_sequence_id(sequence_id: object) -> int:
    """Validate a sequence id up front, with a readable error.

    Without this, a call with swapped arguments (an array where the id
    belongs) died with an opaque ``TypeError`` deep inside the B-tree;
    now it fails at the API boundary, naming the actual problem.
    """
    if isinstance(sequence_id, bool) or not isinstance(sequence_id, (int, np.integer)):
        raise IndexError_(
            f"sequence_id must be an integer, got {type(sequence_id).__name__!s} "
            f"{sequence_id!r} — did you swap the argument order?"
        )
    return int(sequence_id)


def _checked_value(value: object) -> float:
    """Validate a posting value up front (finite real scalar, not an array).

    NaN would land in a garbage bucket (``floor(nan)``) and break the
    bucket's sorted-by-value invariant, so non-finite values are
    rejected at the boundary.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float, np.integer, np.floating)):
        raise IndexError_(
            f"value must be a real number, got {type(value).__name__!s} {value!r}"
        )
    if not math.isfinite(value):
        raise IndexError_(f"value must be finite, got {value!r}")
    return float(value)


def _checked_feature_array(values: "Iterable[float] | np.ndarray") -> np.ndarray:
    """Validate one sequence's feature payload into a float column.

    Shared by every sequence-level ingest entry point (``add_array``,
    ``add_block``) so the accepted payload shapes — NumPy arrays, lists,
    generators — and the rejection rules (non-numeric, multi-dimensional,
    non-finite) can never drift between them.
    """
    if not isinstance(values, np.ndarray):
        if not hasattr(values, "__iter__"):
            raise IndexError_(
                f"values must be iterable, got {type(values).__name__} {values!r}"
            )
        values = list(values)  # materialize generators/iterators
    try:
        array = np.asarray(values, dtype=float)
    except (TypeError, ValueError) as exc:
        raise IndexError_(f"values must be real numbers: {exc}") from exc
    if array.ndim != 1:
        raise IndexError_(f"values must be one-dimensional, got shape {array.shape}")
    if array.size and not bool(np.isfinite(array).all()):
        bad = array[~np.isfinite(array)]
        raise IndexError_(f"values must be finite, got {bad.tolist()}")
    return array


@dataclass(frozen=True, order=True)
class Posting:
    """One feature occurrence: exact value, owning sequence, position."""

    value: float
    sequence_id: int
    position: int = -1


@dataclass
class PostingBucket:
    """A sorted bucket of postings sharing one quantized key."""

    postings: list[Posting] = field(default_factory=list)

    def add(self, posting: Posting) -> None:
        bisect.insort(self.postings, posting)

    def in_range(self, lo: float, hi: float) -> Iterator[Posting]:
        start = bisect.bisect_left(self.postings, Posting(lo, -(10**9)))
        for posting in self.postings[start:]:
            if posting.value > hi:
                return
            yield posting

    def __len__(self) -> int:
        return len(self.postings)


class InvertedFileIndex:
    """B-tree over quantized feature values, postings underneath.

    Parameters
    ----------
    bucket_width:
        Quantization step for bucket keys.  The paper exploits that R-R
        intervals are physiologically bounded, so "there is a limited
        number of interval values according to which the sequences can
        be indexed"; a unit bucket width reproduces that exactly for
        integer sample distances.
    """

    def __init__(self, bucket_width: float = 1.0, btree_min_degree: int = 4) -> None:
        if bucket_width <= 0:
            raise IndexError_("bucket width must be positive")
        self.bucket_width = float(bucket_width)
        self._btree = BTree(min_degree=btree_min_degree)
        self._count = 0

    def _bucket_key(self, value: float) -> int:
        return int(math.floor(value / self.bucket_width))

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def add(self, value: float, sequence_id: int, position: int = -1) -> None:
        """Record one feature occurrence.

        The posting-level entry point keeps the postings-file field
        order (``value`` first, mirroring :class:`Posting`); the
        sequence-level ingest methods :meth:`add_all`/:meth:`add_array`
        take ``sequence_id`` first, like every other per-sequence ingest
        API.  Both are validated up front so a swapped call fails with a
        clear error instead of a ``TypeError`` deep in the B-tree.
        """
        value = _checked_value(value)
        sequence_id = _checked_sequence_id(sequence_id)
        key = self._bucket_key(value)
        bucket = self._btree.setdefault(key, PostingBucket)
        bucket.add(Posting(value, sequence_id, int(position)))
        self._count += 1

    def add_all(self, sequence_id: int, values: "Iterable[float]") -> None:
        """Record one sequence's feature values.

        Alias of :meth:`add_array` kept for the pre-engine name; both
        take ``(sequence_id, values)``, validate the whole payload up
        front (nothing is inserted on a bad value) and batch postings by
        bucket.
        """
        self.add_array(sequence_id, values)

    def add_array(self, sequence_id: int, values: "Iterable[float] | np.ndarray") -> None:
        """Record one sequence's feature column from a NumPy array.

        The engine-facing ingest path: bucket keys are computed for the
        whole column at once and postings sharing a bucket are inserted
        through a single B-tree probe, so consuming a columnar store
        slice costs one tree descent per *distinct* bucket instead of
        one per posting.
        """
        sequence_id = _checked_sequence_id(sequence_id)
        array = _checked_feature_array(values)
        self._insert_column(sequence_id, array)

    def _insert_column(
        self, sequence_id: int, array: np.ndarray, position_offset: int = 0
    ) -> None:
        """Bucket-grouped posting insert of one validated value column.

        One B-tree probe per *distinct* bucket key; positions are the
        array offsets shifted by ``position_offset`` (the tail start for
        :meth:`replace_tail`, 0 for a whole column).  Shared by
        :meth:`add_array` and :meth:`replace_tail` so the bucketing
        scheme can never drift between them.
        """
        if array.size == 0:
            return
        keys = np.floor(array / self.bucket_width).astype(int)
        order = np.argsort(keys, kind="stable")
        bucket = None
        current_key = None
        for position in order:
            key = int(keys[position])
            if key != current_key:
                bucket = self._btree.setdefault(key, PostingBucket)
                current_key = key
            bucket.add(
                Posting(float(array[position]), sequence_id, position_offset + int(position))
            )
        self._count += array.size

    def add_block(
        self, items: "Iterable[tuple[int, Iterable[float] | np.ndarray]]"
    ) -> None:
        """Record many sequences' feature columns as one batch.

        The bulk-ingest path: every payload is validated first (a bad
        item inserts nothing for the whole block), then bucket keys are
        computed for the batch's stacked value column in one vectorized
        pass, and each distinct bucket is probed in the B-tree exactly
        once for the whole block — its new postings merged with a single
        sort instead of one ``bisect.insort`` per posting.  The
        resulting buckets are identical to calling :meth:`add_array`
        per sequence.
        """
        columns: "list[tuple[int, np.ndarray]]" = []
        for sequence_id, values in items:
            columns.append(
                (_checked_sequence_id(sequence_id), _checked_feature_array(values))
            )
        if not columns:
            return
        stacked = np.concatenate([array for __, array in columns])
        if stacked.size == 0:
            return
        sequence_column = np.repeat(
            np.array([sequence_id for sequence_id, __ in columns], dtype=np.int64),
            np.array([array.size for __, array in columns], dtype=np.int64),
        )
        position_column = np.concatenate(
            [np.arange(array.size, dtype=np.int64) for __, array in columns]
        )
        keys = np.floor(stacked / self.bucket_width).astype(int)
        order = np.argsort(keys, kind="stable")
        bucket = None
        current_key = None
        touched: "list[PostingBucket]" = []
        for row in order:
            key = int(keys[row])
            if key != current_key:
                bucket = self._btree.setdefault(key, PostingBucket)
                touched.append(bucket)
                current_key = key
            bucket.postings.append(
                Posting(float(stacked[row]), int(sequence_column[row]), int(position_column[row]))
            )
        for bucket in touched:
            bucket.postings.sort()
        self._count += stacked.size

    def __len__(self) -> int:
        """Total posting count (not distinct sequences)."""
        return self._count

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def postings_in_range(self, lo: float, hi: float) -> Iterator[Posting]:
        """All postings with ``lo <= value <= hi``, ascending by value.

        Follows the B-tree to the overlapping buckets only, then scans
        each sorted bucket — the access path of paper Figure 10.
        """
        if lo > hi:
            return
        key_lo = self._bucket_key(lo)
        key_hi = self._bucket_key(hi)
        for __, bucket in self._btree.range(key_lo, key_hi):
            yield from bucket.in_range(lo, hi)

    def sequences_in_range(self, lo: float, hi: float) -> list[int]:
        """Distinct sequence ids owning a value in ``[lo, hi]``, sorted."""
        return sorted({p.sequence_id for p in self.postings_in_range(lo, hi)})

    def sequences_near(self, target: float, delta: float) -> list[int]:
        """The paper's query form: value within ``target ± delta``."""
        if delta < 0:
            raise IndexError_("delta must be non-negative")
        return self.sequences_in_range(target - delta, target + delta)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def replace_tail(
        self,
        sequence_id: int,
        old_values: "Iterable[float] | np.ndarray",
        new_values: "Iterable[float] | np.ndarray",
    ) -> int:
        """Swap one sequence's feature column for a tail-updated one.

        The streaming append path's entry point: ``old_values`` is the
        column as currently indexed, ``new_values`` the column after the
        append.  Only the *changed suffix* is touched — the longest
        common prefix of the two columns keeps its postings verbatim,
        stale postings past it are filtered from exactly the buckets
        that hold them (one B-tree probe per distinct stale bucket),
        and the fresh suffix is inserted with its new positions.  End
        state is identical to ``remove_sequence`` + ``add_array``;
        returns how many stale postings were removed.
        """
        sequence_id = _checked_sequence_id(sequence_id)
        old = _checked_feature_array(old_values)
        new = _checked_feature_array(new_values)
        shared = min(old.size, new.size)
        changed = np.flatnonzero(old[:shared] != new[:shared])
        lcp = int(changed[0]) if changed.size else shared
        stale = old[lcp:]
        fresh = new[lcp:]
        removed = 0
        if stale.size:
            for key in np.unique(np.floor(stale / self.bucket_width).astype(int)).tolist():
                bucket = self._btree.get(key)
                if bucket is None:
                    continue
                kept = [
                    p
                    for p in bucket.postings
                    if p.sequence_id != sequence_id or p.position < lcp
                ]
                removed += len(bucket.postings) - len(kept)
                bucket.postings = kept
                if not kept:
                    self._btree.delete(key)
            self._count -= removed
        self._insert_column(sequence_id, fresh, position_offset=lcp)
        return removed

    def remove_sequence(self, sequence_id: int) -> int:
        """Drop every posting of one sequence; returns how many went.

        Buckets left empty are deleted from the B-tree so range scans
        do not visit dead keys.
        """
        return self.remove_sequences([sequence_id])

    def remove_sequences(self, sequence_ids: "Iterable[int]") -> int:
        """Drop every posting of many sequences in one pass; count removed.

        The batched-deletion twin of :meth:`remove_sequence`: the
        postings file is filtered once for the whole id set instead of
        once per id, and buckets left empty are deleted from the B-tree.
        """
        id_set = {int(sequence_id) for sequence_id in sequence_ids}
        removed = 0
        empty_keys = []
        for key, bucket in self._btree.items():
            kept = [p for p in bucket.postings if p.sequence_id not in id_set]
            removed += len(bucket.postings) - len(kept)
            bucket.postings = kept
            if not kept:
                empty_keys.append(key)
        for key in empty_keys:
            self._btree.delete(key)
        self._count -= removed
        return removed

    def bucket_count(self) -> int:
        return len(self._btree)

    def check_invariants(self) -> None:
        """Validate the underlying B-tree and bucket ordering."""
        self._btree.check_invariants()
        for key, bucket in self._btree.items():
            values = [p.value for p in bucket.postings]
            if values != sorted(values):
                raise IndexError_(f"bucket {key} is not sorted")
            for posting in bucket.postings:
                if self._bucket_key(posting.value) != key:
                    raise IndexError_(
                        f"posting {posting} misfiled in bucket {key}"
                    )
