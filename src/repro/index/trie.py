"""A positional suffix trie over symbol strings.

The paper maintains "an index structure that supports pattern matching,
like the ones discussed in [Fre60, AHU74, Sub95] ... on the positiveness
of the functions' slopes" and uses it to "get the positions of the first
point of all stored sequences that match that pattern".  [Fre60] is
Fredkin's trie memory; this module provides a trie over the slope-sign
alphabet that records, for every indexed substring, the sequence it came
from and the segment position where it starts.

Depth is bounded: substrings longer than ``max_depth`` fall back to
verification by the caller (a standard trade-off that keeps the trie
linear in total symbol volume for fixed depth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.errors import IndexError_
from repro.index.maintenance import stale_rebuild_due

__all__ = ["SymbolTrie", "Occurrence"]


@dataclass(frozen=True, order=True)
class Occurrence:
    """A substring occurrence: owning sequence and start position."""

    sequence_id: int
    position: int


@dataclass
class _TrieNode:
    children: dict[str, "_TrieNode"] = field(default_factory=dict)
    occurrences: list[Occurrence] = field(default_factory=list)


class SymbolTrie:
    """Suffix trie with per-node occurrence lists.

    Every suffix of every indexed string is inserted up to
    ``max_depth`` symbols; a node's occurrence list holds every
    ``(sequence, position)`` whose substring spells the path to it.
    """

    def __init__(self, max_depth: int = 12) -> None:
        if max_depth < 1:
            raise IndexError_("max_depth must be at least 1")
        self.max_depth = int(max_depth)
        self._root = _TrieNode()
        self._strings: dict[int, str] = {}
        #: Occurrence entries currently appended across all nodes, the
        #: estimated subset of them left stale by lazy updates, and the
        #: ids whose entries may be stale or duplicated (only those need
        #: query-time verification).
        self._total_occurrences = 0
        self._stale_occurrences = 0
        self._stale_ids: "set[int]" = set()

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def add(self, sequence_id: int, symbols: str) -> None:
        """Index every suffix of ``symbols`` (trimmed to max_depth)."""
        if sequence_id in self._strings:
            raise IndexError_(f"sequence {sequence_id} already indexed")
        self._strings[sequence_id] = symbols
        self._insert_suffixes(sequence_id, symbols)

    def _insert_suffixes(self, sequence_id: int, symbols: str) -> None:
        """Walk/extend the trie for every suffix of one string.

        Occurrences are immutable, so one shared instance per suffix is
        appended to every node on its path — value-identical to fresh
        instances, far fewer allocations.
        """
        max_depth = self.max_depth
        root = self._root
        appended = 0
        for start in range(len(symbols)):
            occurrence = Occurrence(sequence_id, start)
            node = root
            node.occurrences.append(occurrence)
            appended += 1
            for symbol in symbols[start : start + max_depth]:
                node = node.children.setdefault(symbol, _TrieNode())
                node.occurrences.append(occurrence)
                appended += 1
        self._total_occurrences += appended

    def update(self, sequence_id: int, symbols: str) -> None:
        """Re-index one sequence whose string changed at the tail.

        The streaming append path's entry point.  Work is proportional
        to the *changed suffix*: suffixes wholly inside the common
        prefix of the old and new strings are untouched (their indexed
        substrings are identical), and each affected suffix walks only
        the part of its path that diverges from the old one.  Stale
        occurrences left behind on old diverged paths are tolerated —
        :meth:`find` verifies every hit against the live strings, so
        they can never surface — counted, and compacted away by a full
        rebuild once they outweigh the live entries (amortized
        suffix-only cost).
        """
        old = self._strings.get(sequence_id)
        if old is None:
            raise IndexError_(f"sequence {sequence_id} not indexed")
        if not isinstance(symbols, str):
            raise IndexError_(f"symbols must be a string, got {type(symbols).__name__}")
        if old == symbols:
            return
        max_depth = self.max_depth
        lcp = 0
        limit = min(len(old), len(symbols))
        while lcp < limit and old[lcp] == symbols[lcp]:
            lcp += 1
        # Suffixes starting at or before lcp - max_depth index substrings
        # entirely inside the common prefix — nothing about them changed.
        affected = max(0, lcp - max_depth + 1)
        self._strings[sequence_id] = symbols
        root = self._root
        appended = 0
        stale = 0
        for start in range(affected, len(symbols)):
            occurrence = Occurrence(sequence_id, start)
            new_sub = symbols[start : start + max_depth]
            old_sub = old[start : start + max_depth] if start < len(old) else ""
            shared = 0
            shared_limit = min(len(new_sub), len(old_sub))
            while shared < shared_limit and new_sub[shared] == old_sub[shared]:
                shared += 1
            node = root
            if start >= len(old):
                # A brand-new suffix: its root entry does not exist yet.
                node.occurrences.append(occurrence)
                appended += 1
            for i in range(len(new_sub)):
                symbol = new_sub[i]
                if i < shared:
                    # The old path spelled the same symbols here; the
                    # occurrence is already on these nodes.
                    node = node.children[symbol]
                else:
                    node = node.children.setdefault(symbol, _TrieNode())
                    node.occurrences.append(occurrence)
                    appended += 1
            stale += max(len(old_sub) - shared, 0)
        if len(old) > len(symbols):
            # Old suffixes past the new end are dead entirely, root
            # entries included.
            for start in range(max(affected, len(symbols)), len(old)):
                stale += 1 + len(old[start : start + max_depth])
        self._total_occurrences += appended
        self._stale_occurrences += stale
        if stale:
            self._stale_ids.add(sequence_id)
        if stale_rebuild_due(self._stale_occurrences, self._total_occurrences):
            self._rebuild()

    def _rebuild(self) -> None:
        """Compact away stale occurrences by re-inserting every string."""
        self._root = _TrieNode()
        self._total_occurrences = 0
        self._stale_occurrences = 0
        self._stale_ids.clear()
        for sequence_id in sorted(self._strings):
            self._insert_suffixes(sequence_id, self._strings[sequence_id])

    @property
    def stale_occurrences(self) -> int:
        """Estimated stale node entries awaiting compaction."""
        return self._stale_occurrences

    def add_many(self, items: "Iterable[tuple[int, str]]") -> None:
        """Bulk-index many ``(sequence_id, symbols)`` pairs.

        Equivalent to calling :meth:`add` per pair (same nodes, same
        occurrence sets), validated up front so a bad batch inserts
        nothing.  The batch is processed in sorted symbol-string order
        so shared prefixes land on consecutive inserts, and the node
        path of every distinct suffix (trimmed to ``max_depth``) is
        cached for the duration of the call: over a small alphabet real
        corpora repeat the same local behaviour constantly — whole
        run-collapsed strings, ECG beat motifs — so most suffixes
        replay a recorded path with one list append per node instead
        of a dict walk per symbol.  The cache dies with the call, so
        later ``remove`` pruning can never invalidate it.
        """
        batch = list(items)
        seen: "set[int]" = set()
        for sequence_id, symbols in batch:
            if sequence_id in self._strings or sequence_id in seen:
                raise IndexError_(f"sequence {sequence_id} already indexed")
            if not isinstance(symbols, str):
                raise IndexError_(
                    f"symbols must be a string, got {type(symbols).__name__}"
                )
            seen.add(sequence_id)
        max_depth = self.max_depth
        root = self._root
        # Cached per suffix: the bound ``occurrences.append`` of every
        # node on its path.  Valid for the duration of this call only —
        # pruning replaces occurrence lists, so the cache must never
        # outlive it (and it cannot: no removal happens mid-call).
        path_cache: "dict[str, list]" = {}
        appended = 0
        for sequence_id, symbols in sorted(batch, key=lambda item: item[1]):
            self._strings[sequence_id] = symbols
            for start in range(len(symbols)):
                key = symbols[start : start + max_depth]
                path = path_cache.get(key)
                if path is None:
                    node = root
                    path = [node.occurrences.append]
                    for symbol in key:
                        node = node.children.setdefault(symbol, _TrieNode())
                        path.append(node.occurrences.append)
                    path_cache[key] = path
                occurrence = Occurrence(sequence_id, start)
                for push in path:
                    push(occurrence)
                appended += len(path)
        self._total_occurrences += appended

    def remove(self, sequence_id: int) -> None:
        """Unindex one sequence: drop its occurrences everywhere.

        Nodes left without occurrences are pruned so the trie does not
        accumulate dead branches across insert/remove churn.
        """
        if sequence_id not in self._strings:
            raise IndexError_(f"sequence {sequence_id} not indexed")
        del self._strings[sequence_id]
        self._stale_ids.discard(sequence_id)
        self._prune(self._root, {sequence_id})

    def remove_many(self, sequence_ids: "Iterable[int]") -> None:
        """Unindex many sequences in one trie pass.

        Equivalent to calling :meth:`remove` per id, but the
        occurrence-filtering / dead-branch-pruning walk over the whole
        trie runs once for the batch instead of once per id.  Validated
        up front: an unknown id fails the call before anything is
        removed.
        """
        id_set = set(int(sequence_id) for sequence_id in sequence_ids)
        missing = sorted(
            sequence_id for sequence_id in id_set if sequence_id not in self._strings
        )
        if missing:
            raise IndexError_(f"sequences {missing} not indexed")
        if not id_set:
            return
        for sequence_id in id_set:
            del self._strings[sequence_id]
        self._stale_ids -= id_set
        self._prune(self._root, id_set)

    def _prune(self, node: _TrieNode, sequence_ids: "set[int]") -> bool:
        """Remove the ids' occurrences below ``node``; True if it died."""
        kept = [o for o in node.occurrences if o.sequence_id not in sequence_ids]
        self._total_occurrences -= len(node.occurrences) - len(kept)
        node.occurrences = kept
        dead_children = []
        for symbol, child in node.children.items():
            if self._prune(child, sequence_ids):
                dead_children.append(symbol)
        for symbol in dead_children:
            del node.children[symbol]
        if node is self._root:
            # Pruning removed an unknown share of the stale entries;
            # clamp the estimate so it can only trigger compaction early.
            self._stale_occurrences = min(
                self._stale_occurrences, self._total_occurrences
            )
        return not node.occurrences and not node.children

    def __contains__(self, sequence_id: int) -> bool:
        return sequence_id in self._strings

    def __len__(self) -> int:
        return len(self._strings)

    def symbols_of(self, sequence_id: int) -> str:
        try:
            return self._strings[sequence_id]
        except KeyError as exc:
            raise IndexError_(f"sequence {sequence_id} not indexed") from exc

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def find(self, substring: str) -> list[Occurrence]:
        """All occurrences of an exact symbol substring.

        Substrings within ``max_depth`` are answered from the trie
        alone for every sequence that has never left stale entries
        behind (the pure-insert fast path); occurrences of the — few —
        ids touched by a diverging lazy :meth:`update` are verified
        against the live strings (screening out stale entries and
        de-duplicating re-inserted paths).  Substrings longer than the
        depth bound verify everything, as before.
        """
        node = self._root
        for symbol in substring[: self.max_depth]:
            child = node.children.get(symbol)
            if child is None:
                return []
            node = child
        length = len(substring)
        strings = self._strings
        stale_ids = self._stale_ids
        if length <= self.max_depth:
            if not stale_ids:
                return sorted(node.occurrences)
            clean = [
                occ for occ in node.occurrences if occ.sequence_id not in stale_ids
            ]
            # Only suspect ids need verification (and only they can be
            # duplicated).  The position bound matters for the empty
            # substring: a stale occurrence past a shrunken string's end
            # would slice "" == "" and bogusly verify.
            suspects = {
                occ
                for occ in node.occurrences
                if occ.sequence_id in stale_ids
                and occ.position < len(strings[occ.sequence_id])
                and strings[occ.sequence_id][occ.position : occ.position + length]
                == substring
            }
            return sorted(clean + list(suspects))
        verified = {
            occ
            for occ in node.occurrences
            if occ.position < len(strings[occ.sequence_id])
            and strings[occ.sequence_id][occ.position : occ.position + length] == substring
        }
        return sorted(verified)

    def node_count(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count
