"""A positional suffix trie over symbol strings.

The paper maintains "an index structure that supports pattern matching,
like the ones discussed in [Fre60, AHU74, Sub95] ... on the positiveness
of the functions' slopes" and uses it to "get the positions of the first
point of all stored sequences that match that pattern".  [Fre60] is
Fredkin's trie memory; this module provides a trie over the slope-sign
alphabet that records, for every indexed substring, the sequence it came
from and the segment position where it starts.

Depth is bounded: substrings longer than ``max_depth`` fall back to
verification by the caller (a standard trade-off that keeps the trie
linear in total symbol volume for fixed depth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.errors import IndexError_

__all__ = ["SymbolTrie", "Occurrence"]


@dataclass(frozen=True, order=True)
class Occurrence:
    """A substring occurrence: owning sequence and start position."""

    sequence_id: int
    position: int


@dataclass
class _TrieNode:
    children: dict[str, "_TrieNode"] = field(default_factory=dict)
    occurrences: list[Occurrence] = field(default_factory=list)


class SymbolTrie:
    """Suffix trie with per-node occurrence lists.

    Every suffix of every indexed string is inserted up to
    ``max_depth`` symbols; a node's occurrence list holds every
    ``(sequence, position)`` whose substring spells the path to it.
    """

    def __init__(self, max_depth: int = 12) -> None:
        if max_depth < 1:
            raise IndexError_("max_depth must be at least 1")
        self.max_depth = int(max_depth)
        self._root = _TrieNode()
        self._strings: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def add(self, sequence_id: int, symbols: str) -> None:
        """Index every suffix of ``symbols`` (trimmed to max_depth)."""
        if sequence_id in self._strings:
            raise IndexError_(f"sequence {sequence_id} already indexed")
        self._strings[sequence_id] = symbols
        self._insert_suffixes(sequence_id, symbols)

    def _insert_suffixes(self, sequence_id: int, symbols: str) -> None:
        """Walk/extend the trie for every suffix of one string.

        Occurrences are immutable, so one shared instance per suffix is
        appended to every node on its path — value-identical to fresh
        instances, far fewer allocations.
        """
        max_depth = self.max_depth
        root = self._root
        for start in range(len(symbols)):
            occurrence = Occurrence(sequence_id, start)
            node = root
            node.occurrences.append(occurrence)
            for symbol in symbols[start : start + max_depth]:
                node = node.children.setdefault(symbol, _TrieNode())
                node.occurrences.append(occurrence)

    def add_many(self, items: "Iterable[tuple[int, str]]") -> None:
        """Bulk-index many ``(sequence_id, symbols)`` pairs.

        Equivalent to calling :meth:`add` per pair (same nodes, same
        occurrence sets), validated up front so a bad batch inserts
        nothing.  The batch is processed in sorted symbol-string order
        so shared prefixes land on consecutive inserts, and the node
        path of every distinct suffix (trimmed to ``max_depth``) is
        cached for the duration of the call: over a small alphabet real
        corpora repeat the same local behaviour constantly — whole
        run-collapsed strings, ECG beat motifs — so most suffixes
        replay a recorded path with one list append per node instead
        of a dict walk per symbol.  The cache dies with the call, so
        later ``remove`` pruning can never invalidate it.
        """
        batch = list(items)
        seen: "set[int]" = set()
        for sequence_id, symbols in batch:
            if sequence_id in self._strings or sequence_id in seen:
                raise IndexError_(f"sequence {sequence_id} already indexed")
            if not isinstance(symbols, str):
                raise IndexError_(
                    f"symbols must be a string, got {type(symbols).__name__}"
                )
            seen.add(sequence_id)
        max_depth = self.max_depth
        root = self._root
        # Cached per suffix: the bound ``occurrences.append`` of every
        # node on its path.  Valid for the duration of this call only —
        # pruning replaces occurrence lists, so the cache must never
        # outlive it (and it cannot: no removal happens mid-call).
        path_cache: "dict[str, list]" = {}
        for sequence_id, symbols in sorted(batch, key=lambda item: item[1]):
            self._strings[sequence_id] = symbols
            for start in range(len(symbols)):
                key = symbols[start : start + max_depth]
                path = path_cache.get(key)
                if path is None:
                    node = root
                    path = [node.occurrences.append]
                    for symbol in key:
                        node = node.children.setdefault(symbol, _TrieNode())
                        path.append(node.occurrences.append)
                    path_cache[key] = path
                occurrence = Occurrence(sequence_id, start)
                for push in path:
                    push(occurrence)

    def remove(self, sequence_id: int) -> None:
        """Unindex one sequence: drop its occurrences everywhere.

        Nodes left without occurrences are pruned so the trie does not
        accumulate dead branches across insert/remove churn.
        """
        if sequence_id not in self._strings:
            raise IndexError_(f"sequence {sequence_id} not indexed")
        del self._strings[sequence_id]
        self._prune(self._root, {sequence_id})

    def remove_many(self, sequence_ids: "Iterable[int]") -> None:
        """Unindex many sequences in one trie pass.

        Equivalent to calling :meth:`remove` per id, but the
        occurrence-filtering / dead-branch-pruning walk over the whole
        trie runs once for the batch instead of once per id.  Validated
        up front: an unknown id fails the call before anything is
        removed.
        """
        id_set = set(int(sequence_id) for sequence_id in sequence_ids)
        missing = [sequence_id for sequence_id in id_set if sequence_id not in self._strings]
        if missing:
            raise IndexError_(f"sequences {sorted(missing)} not indexed")
        if not id_set:
            return
        for sequence_id in id_set:
            del self._strings[sequence_id]
        self._prune(self._root, id_set)

    def _prune(self, node: _TrieNode, sequence_ids: "set[int]") -> bool:
        """Remove the ids' occurrences below ``node``; True if it died."""
        node.occurrences = [o for o in node.occurrences if o.sequence_id not in sequence_ids]
        dead_children = []
        for symbol, child in node.children.items():
            if self._prune(child, sequence_ids):
                dead_children.append(symbol)
        for symbol in dead_children:
            del node.children[symbol]
        return not node.occurrences and not node.children

    def __contains__(self, sequence_id: int) -> bool:
        return sequence_id in self._strings

    def __len__(self) -> int:
        return len(self._strings)

    def symbols_of(self, sequence_id: int) -> str:
        try:
            return self._strings[sequence_id]
        except KeyError as exc:
            raise IndexError_(f"sequence {sequence_id} not indexed") from exc

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def find(self, substring: str) -> list[Occurrence]:
        """All occurrences of an exact symbol substring.

        Substrings within ``max_depth`` are answered from the trie
        alone; longer ones descend as far as the trie goes and then
        verify the tail against the stored strings.
        """
        node = self._root
        for symbol in substring[: self.max_depth]:
            child = node.children.get(symbol)
            if child is None:
                return []
            node = child
        hits = node.occurrences
        if len(substring) <= self.max_depth:
            return sorted(hits)
        verified = [
            occ
            for occ in hits
            if self._strings[occ.sequence_id][occ.position : occ.position + len(substring)] == substring
        ]
        return sorted(verified)

    def node_count(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count
