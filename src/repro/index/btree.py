"""An order-``t`` B-tree built from scratch.

Paper Figure 10's inverted-file structure "consists of a B-Tree
structure which points to the postings file"; this module supplies that
B-tree.  It is a classic CLRS-style B-tree with minimum degree ``t``:
every node except the root holds between ``t - 1`` and ``2t - 1`` keys,
all leaves sit at the same depth, and search / insert / delete are all
logarithmic.  Keys are ordered scalars; each key carries one value slot
(the inverted file stores a posting bucket there).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.errors import IndexError_

__all__ = ["BTree"]


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[Any] = []
        self.children: list["_Node"] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTree:
    """A B-tree mapping ordered keys to single values.

    Parameters
    ----------
    min_degree:
        The CLRS ``t``; nodes hold at most ``2t - 1`` keys.  The default
        keeps nodes small enough that tests exercise splits and merges
        with modest data volumes.
    """

    def __init__(self, min_degree: int = 4) -> None:
        if min_degree < 2:
            raise IndexError_("B-tree minimum degree must be at least 2")
        self._t = min_degree
        self._root = _Node()
        self._size = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        return self._find(self._root, key) is not None

    def get(self, key: Any, default: Any = None) -> Any:
        found = self._find(self._root, key)
        if found is None:
            return default
        node, idx = found
        return node.values[idx]

    def _find(self, node: _Node, key: Any) -> "tuple[_Node, int] | None":
        while True:
            idx = _lower_bound(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                return node, idx
            if node.is_leaf:
                return None
            node = node.children[idx]

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert or overwrite ``key``."""
        found = self._find(self._root, key)
        if found is not None:
            node, idx = found
            node.values[idx] = value
            return
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _Node()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
        self._insert_nonfull(self._root, key, value)
        self._size += 1

    def setdefault(self, key: Any, factory: Any) -> Any:
        """Return the value at ``key``, inserting ``factory()`` if absent."""
        found = self._find(self._root, key)
        if found is not None:
            node, idx = found
            return node.values[idx]
        value = factory()
        self.insert(key, value)
        return value

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self._t
        child = parent.children[index]
        sibling = _Node()
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        if not child.is_leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.keys.insert(index, child.keys[t - 1])
        parent.values.insert(index, child.values[t - 1])
        parent.children.insert(index + 1, sibling)
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]

    def _insert_nonfull(self, node: _Node, key: Any, value: Any) -> None:
        while not node.is_leaf:
            idx = _lower_bound(node.keys, key)
            child = node.children[idx]
            if len(child.keys) == 2 * self._t - 1:
                self._split_child(node, idx)
                if key > node.keys[idx]:
                    idx += 1
                child = node.children[idx]
            node = child
        idx = _lower_bound(node.keys, key)
        node.keys.insert(idx, key)
        node.values.insert(idx, value)

    # ------------------------------------------------------------------
    # Deletion (full CLRS algorithm)
    # ------------------------------------------------------------------

    def delete(self, key: Any) -> None:
        """Remove ``key``; raises if it is absent."""
        if self._find(self._root, key) is None:
            raise IndexError_(f"key {key!r} not in B-tree")
        self._delete(self._root, key)
        if not self._root.keys and self._root.children:
            self._root = self._root.children[0]
        self._size -= 1

    def _delete(self, node: _Node, key: Any) -> None:
        t = self._t
        idx = _lower_bound(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            if node.is_leaf:
                node.keys.pop(idx)
                node.values.pop(idx)
                return
            left, right = node.children[idx], node.children[idx + 1]
            if len(left.keys) >= t:
                pred_key, pred_val = self._max_entry(left)
                node.keys[idx], node.values[idx] = pred_key, pred_val
                self._delete(left, pred_key)
            elif len(right.keys) >= t:
                succ_key, succ_val = self._min_entry(right)
                node.keys[idx], node.values[idx] = succ_key, succ_val
                self._delete(right, succ_key)
            else:
                self._merge_children(node, idx)
                self._delete(left, key)
            return
        if node.is_leaf:
            raise IndexError_(f"key {key!r} not in B-tree")
        child = node.children[idx]
        if len(child.keys) == t - 1:
            self._grow_child(node, idx)
            # The tree shape changed; restart from this node.
            self._delete(node, key)
            return
        self._delete(child, key)

    def _grow_child(self, node: _Node, idx: int) -> None:
        """Ensure ``node.children[idx]`` has at least ``t`` keys."""
        t = self._t
        child = node.children[idx]
        if idx > 0 and len(node.children[idx - 1].keys) >= t:
            left = node.children[idx - 1]
            child.keys.insert(0, node.keys[idx - 1])
            child.values.insert(0, node.values[idx - 1])
            node.keys[idx - 1] = left.keys.pop()
            node.values[idx - 1] = left.values.pop()
            if not left.is_leaf:
                child.children.insert(0, left.children.pop())
        elif idx < len(node.children) - 1 and len(node.children[idx + 1].keys) >= t:
            right = node.children[idx + 1]
            child.keys.append(node.keys[idx])
            child.values.append(node.values[idx])
            node.keys[idx] = right.keys.pop(0)
            node.values[idx] = right.values.pop(0)
            if not right.is_leaf:
                child.children.append(right.children.pop(0))
        elif idx > 0:
            self._merge_children(node, idx - 1)
        else:
            self._merge_children(node, idx)

    def _merge_children(self, node: _Node, idx: int) -> None:
        left = node.children[idx]
        right = node.children.pop(idx + 1)
        left.keys.append(node.keys.pop(idx))
        left.values.append(node.values.pop(idx))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.children.extend(right.children)

    def _max_entry(self, node: _Node) -> tuple[Any, Any]:
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1], node.values[-1]

    def _min_entry(self, node: _Node) -> tuple[Any, Any]:
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0], node.values[0]

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All entries in ascending key order."""
        yield from self._walk(self._root)

    def _walk(self, node: _Node) -> Iterator[tuple[Any, Any]]:
        if node.is_leaf:
            yield from zip(node.keys, node.values)
            return
        for i, (key, value) in enumerate(zip(node.keys, node.values)):
            yield from self._walk(node.children[i])
            yield key, value
        yield from self._walk(node.children[-1])

    def range(self, lo: Any, hi: Any) -> Iterator[tuple[Any, Any]]:
        """Entries with ``lo <= key <= hi``, ascending.

        Follows the tree structure (only subtrees overlapping the range
        are visited), which is what makes the paper's "values between
        130 and 140" query cheap.
        """
        yield from self._range(self._root, lo, hi)

    def _range(self, node: _Node, lo: Any, hi: Any) -> Iterator[tuple[Any, Any]]:
        idx = _lower_bound(node.keys, lo)
        if node.is_leaf:
            for i in range(idx, len(node.keys)):
                if node.keys[i] > hi:
                    return
                yield node.keys[i], node.values[i]
            return
        for i in range(idx, len(node.keys)):
            yield from self._range(node.children[i], lo, hi)
            if node.keys[i] > hi:
                return
            if node.keys[i] >= lo:
                yield node.keys[i], node.values[i]
        yield from self._range(node.children[len(node.keys)], lo, hi)

    # ------------------------------------------------------------------
    # Integrity checking (used by property tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`IndexError_` if any B-tree invariant is violated."""
        depths: set[int] = set()
        self._check(self._root, None, None, True, 0, depths)
        if len(depths) > 1:
            raise IndexError_(f"leaves at different depths: {sorted(depths)}")

    def _check(self, node: _Node, lo: Any, hi: Any, is_root: bool, depth: int, depths: set[int]) -> None:
        t = self._t
        if not is_root and len(node.keys) < t - 1:
            raise IndexError_(f"underfull node: {len(node.keys)} keys")
        if len(node.keys) > 2 * t - 1:
            raise IndexError_(f"overfull node: {len(node.keys)} keys")
        for a, b in zip(node.keys, node.keys[1:]):
            if not a < b:
                raise IndexError_(f"keys out of order: {a!r} !< {b!r}")
        if node.keys:
            if lo is not None and node.keys[0] <= lo:
                raise IndexError_("subtree violates lower separator")
            if hi is not None and node.keys[-1] >= hi:
                raise IndexError_("subtree violates upper separator")
        if node.is_leaf:
            depths.add(depth)
            return
        if len(node.children) != len(node.keys) + 1:
            raise IndexError_("child count must be keys + 1")
        bounds = [lo] + node.keys + [hi]
        for child, (child_lo, child_hi) in zip(node.children, zip(bounds, bounds[1:])):
            self._check(child, child_lo, child_hi, False, depth + 1, depths)

    def height(self) -> int:
        node = self._root
        h = 0
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h


def _lower_bound(keys: list[Any], key: Any) -> int:
    """First index whose key is >= ``key`` (binary search)."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo
