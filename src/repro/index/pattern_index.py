"""Slope-sign pattern index over stored representations.

Paper Section 4.4: "An index structure that supports pattern matching
... is maintained on the positiveness of the functions' slopes.  For a
fixed small number theta there are 3 possible index values: slope >
theta, slope < -theta, or slope is between -theta and theta. ... by
using the index we get the positions of the first point of all stored
sequences that match that pattern."

:class:`PatternIndex` stores each representation's symbol string in a
positional suffix trie and answers

* exact symbol-substring lookups straight from the trie, and
* regular-expression pattern queries by running the NFA matcher over
  candidate strings (whole-string match for queries like goal-post
  fever, or substring search returning first-point positions).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.errors import IndexError_
from repro.core.representation import FunctionSeriesRepresentation
from repro.index.trie import Occurrence, SymbolTrie
from repro.patterns.regex import SymbolPattern

__all__ = ["PatternIndex"]


class PatternIndex:
    """Index of slope-sign strings supporting substring and regex search."""

    def __init__(self, theta: float = 0.0, trie_depth: int = 12, collapse_runs: bool = False) -> None:
        if theta < 0:
            raise IndexError_("theta must be non-negative")
        self.theta = float(theta)
        self.collapse_runs = collapse_runs
        self._trie = SymbolTrie(max_depth=trie_depth)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def add(self, sequence_id: int, representation: FunctionSeriesRepresentation) -> None:
        """Index the representation's slope-sign string."""
        self.add_symbols(
            sequence_id,
            representation.symbol_string(self.theta, collapse_runs=self.collapse_runs),
        )

    def add_symbols(self, sequence_id: int, symbols: str) -> None:
        """Index a precomputed slope-sign string.

        The database's ingest path classifies each sequence's slopes
        once and feeds both the positional and the behavioural index
        from that single pass; the caller is responsible for applying
        this index's ``theta`` and ``collapse_runs`` convention.
        """
        self._trie.add(sequence_id, symbols)

    def add_symbols_many(self, items: "Iterable[tuple[int, str]]") -> None:
        """Bulk-index precomputed ``(sequence_id, symbols)`` pairs.

        The batched ingest path's entry point: equivalent to calling
        :meth:`add_symbols` per pair, but the trie sorts the batch so
        inserts share prefix paths (identical strings — ubiquitous in
        the run-collapsed behavioural view — replay recorded node
        paths outright).  Validated up front; a bad batch inserts
        nothing.
        """
        self._trie.add_many(items)

    def update_symbols(self, sequence_id: int, symbols: str) -> None:
        """Re-index a sequence whose symbol string changed at the tail.

        The streaming append path's entry point: the trie patches only
        the suffixes the change touches (see
        :meth:`repro.index.trie.SymbolTrie.update`), instead of a full
        remove-and-re-add.  End state answers every query identically
        to re-adding from scratch.
        """
        self._trie.update(sequence_id, symbols)

    def remove(self, sequence_id: int) -> None:
        """Unindex one sequence."""
        self._trie.remove(sequence_id)

    def remove_many(self, sequence_ids: "Iterable[int]") -> None:
        """Unindex many sequences in one trie prune pass."""
        self._trie.remove_many(sequence_ids)

    def __len__(self) -> int:
        return len(self._trie)

    def __contains__(self, sequence_id: int) -> bool:
        return sequence_id in self._trie

    def symbols_of(self, sequence_id: int) -> str:
        return self._trie.symbols_of(sequence_id)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def find_exact(self, symbols: str) -> list[Occurrence]:
        """Positions of an exact symbol substring across all sequences."""
        return self._trie.find(symbols)

    def match_full(self, pattern: "SymbolPattern | str") -> list[int]:
        """Sequence ids whose whole symbol string matches the pattern.

        This is the goal-post fever query shape: the pattern constrains
        the entire 24-hour sequence, so a full match is required.
        """
        compiled = SymbolPattern.compile(pattern) if isinstance(pattern, str) else pattern
        return sorted(
            sequence_id
            for sequence_id in self._sequence_ids()
            if compiled.fullmatch(self._trie.symbols_of(sequence_id))
        )

    def search(self, pattern: "SymbolPattern | str") -> list[Occurrence]:
        """First-point positions of pattern occurrences in any sequence.

        Returns one occurrence per ``(sequence, start)`` at which some
        match of the pattern begins — the paper's "positions of the
        first point of all stored sequences that match that pattern".
        """
        compiled = SymbolPattern.compile(pattern) if isinstance(pattern, str) else pattern
        hits: list[Occurrence] = []
        for sequence_id in self._sequence_ids():
            symbols = self._trie.symbols_of(sequence_id)
            for start, __ in compiled.finditer(symbols):
                hits.append(Occurrence(sequence_id, start))
        return sorted(set(hits))

    def _sequence_ids(self) -> list[int]:
        return sorted(self._trie._strings)
