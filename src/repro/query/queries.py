"""Generalized approximate query types (paper Sections 2.2 and 5.2).

Each query denotes a *set* of sequences closed under feature-preserving
transformations; evaluation grades every candidate as exact (a member
of the set), approximate (within per-dimension tolerances) or rejected.
The concrete types:

:class:`PatternQuery`
    A regular expression over the slope alphabet — the goal-post fever
    query shape.  Membership is exact by construction; there is no
    metric dimension.
:class:`PeakCountQuery`
    "Exactly k peaks", with an optional count tolerance — the explicit
    feature-dimension version of the same query, graded along the
    ``peak_count`` dimension.
:class:`IntervalQuery`
    "R-R interval of length n ± delta" (Section 5.2), answered through
    the inverted-file index and graded along the ``rr_interval``
    dimension.
:class:`SteepnessQuery`
    "Sudden vigorous activity": at least one rising segment of slope >=
    ``min_slope``, graded along the ``steepness`` dimension — the
    paper's "steepness of the slopes" approximation dimension.
:class:`ShapeQuery`
    Query *by exemplar* — "the query can be an exemplar or an
    expression" (Section 2.2).  The exemplar is broken and reduced to a
    scale-free shape signature; candidates with the same behavioural
    structure match, graded along the ``shape_duration`` and
    ``shape_amplitude`` dimensions (both zero for candidates related to
    the exemplar by shift / scale / dilation / contraction).
:class:`ExemplarQuery`
    The old value-based notion (Figure 1), kept for head-to-head
    comparisons; graded along the ``value_distance`` dimension.
:class:`TopKQuery`
    The ``k`` stored sequences most similar to an exemplar, by
    Euclidean distance between resampled representation profiles
    (:mod:`repro.engine.clustering`) — graded along the
    ``profile_distance`` dimension and evaluated through the
    cluster-representative pruned search (probe representatives,
    lower-bound prune, heap-refine with early abandoning).
:class:`CountQuery`
    "How many sequences contain this motif" — substring containment of
    a literal slope-symbol motif, exact by construction.  Under the
    ``succinct`` symbol backend the stage is answered from rank/select
    probes on the wavelet-matrix symbol index
    (:mod:`repro.engine.succinct`) with no column scan; the
    ``uncompressed`` backend scans with the shared motif kernel, which
    is also the byte-parity oracle.
:class:`MotifQuery`
    "Where does this motif occur" — the position-reporting sibling of
    :class:`CountQuery`: every match carries the ascending start
    offsets of the motif's occurrences inside the sequence's symbol
    view (``QueryMatch.positions``), evaluated as a whole-shard
    ``collect`` stage and merged scatter-gather like top-k.

Evaluation is organized as *plan stages* (see
:mod:`repro.engine.plan`): each query builds a
:class:`~repro.engine.plan.QueryPlan` of index probe, columnar
prefilter, vectorized grading and residual scalar grading.
``PeakCountQuery``, ``IntervalQuery`` and ``SteepnessQuery`` grade
entirely as NumPy predicates over the columnar store;
``ShapeQuery``/``ExemplarQuery`` prefilter columnarly before falling
back to per-sequence grading.  The pre-engine API survives as thin
wrappers: ``candidates`` is the plan's probe stage and ``grade`` its
residual stage.
"""

from __future__ import annotations

import abc
import hashlib
import weakref
from typing import TYPE_CHECKING

import numpy as np

from repro.core.errors import PatternSyntaxError, QueryError
from repro.core.sequence import Sequence
from repro.core.representation import SYMBOL_CODES, run_start_mask
from repro.core.tolerance import (
    EXACT_EPSILON,
    WITHIN_EPSILON,
    DimensionDeviation,
    MatchGrade,
    Tolerance,
    grade_deviations,
)
from repro.engine.nfa import ColumnPatternMatcher
from repro.engine.plan import DimensionColumn, QueryPlan, VectorVerdicts
from repro.engine.succinct import column_motif_hits, motif_occurrences
from repro.patterns.regex import SymbolPattern
from repro.query.results import QueryMatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.engine.columnar import ColumnarSegmentStore
    from repro.query.database import SequenceDatabase

__all__ = [
    "Query",
    "PatternQuery",
    "PeakCountQuery",
    "IntervalQuery",
    "SteepnessQuery",
    "ShapeQuery",
    "ExemplarQuery",
    "TopKQuery",
    "CountQuery",
    "MotifQuery",
]

def _exemplar_digest(exemplar: object) -> str:
    """Content hash of a query exemplar (raw sequence or representation).

    Used as the exemplar part of a query fingerprint: two exemplars with
    equal digests query identically, and — unlike ``id()`` — a digest
    can never be recycled onto different data.
    """
    from repro.core.representation import FunctionSeriesRepresentation

    digest = hashlib.sha1()
    if isinstance(exemplar, Sequence):
        digest.update(np.ascontiguousarray(exemplar.times).tobytes())
        digest.update(np.ascontiguousarray(exemplar.values).tobytes())
    elif isinstance(exemplar, FunctionSeriesRepresentation):
        columns = exemplar.segment_columns()
        for name in sorted(columns):
            digest.update(np.ascontiguousarray(columns[name]).tobytes())
        digest.update(str(exemplar.source_length).encode())
    else:  # pragma: no cover - constructors validate exemplar types
        raise QueryError(f"cannot fingerprint exemplar of type {type(exemplar).__name__}")
    return digest.hexdigest()


class Query(abc.ABC):
    """A generalized approximate query."""

    def candidates(self, database: "SequenceDatabase") -> "list[int] | None":
        """Index-assisted candidate ids, or None to scan everything.

        Candidate sets must have no false dismissals for the query's
        tolerance; grading re-checks every candidate anyway.  This is
        the plan's probe stage under its pre-engine name.
        """
        return None

    @abc.abstractmethod
    def grade(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        """Grade one stored sequence against this query.

        This is the plan's residual stage under its pre-engine name.
        """

    def fingerprint(self) -> "tuple | None":
        """Content key for the plan-level result cache, or None.

        Two queries with equal fingerprints must return equal results
        against the same database state.  The default ``None`` marks the
        query uncacheable, which is always safe — third-party subclasses
        opt in by returning a tuple of their defining parameters.
        """
        return None

    def plan(self, database: "SequenceDatabase") -> QueryPlan:
        """The staged execution plan for this query.

        The default plan runs ``candidates`` as the probe and ``grade``
        as the residual stage, so any third-party subclass evaluates
        through the engine unchanged; built-in queries override this
        with vectorized or prefiltered stages.
        """
        return QueryPlan(
            query=self,
            probe=self.candidates,
            residual=self.grade,
            fingerprint=self.fingerprint(),
        )


class PatternQuery(Query):
    """Full-sequence behaviour pattern over the slope alphabet.

    Under the engine the pattern is tabulated into a DFA transition
    table (:mod:`repro.patterns.automata`) and run across the columnar
    store's symbol columns as a single vectorized stage
    (:class:`~repro.engine.nfa.ColumnPatternMatcher`): the behavioural
    (run-collapsed) column by default, the positional column with
    ``collapse_runs=False``.  Membership is exact by construction, so
    the stage emits verdicts with no metric dimensions — byte-identical
    to the legacy per-sequence NFA path, minus the Python loop.
    """

    def __init__(self, pattern: "str | SymbolPattern", collapse_runs: bool = True) -> None:
        self._pattern = SymbolPattern.compile(pattern)
        self._collapse_runs = collapse_runs
        self._matcher: "ColumnPatternMatcher | None" = None
        self._matcher_failed = False

    @property
    def pattern(self) -> SymbolPattern:
        """The compiled pattern — fixed at construction.

        The tabulated DFA matcher and the cache fingerprint are derived
        from it; build a new query to match a different pattern.
        """
        return self._pattern

    @property
    def collapse_runs(self) -> bool:
        """Which symbol view is matched — fixed at construction."""
        return self._collapse_runs

    def candidates(self, database: "SequenceDatabase") -> "list[int] | None":
        return self._probe(database)

    def grade(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        return self._grade_scalar(database, sequence_id)

    def fingerprint(self) -> tuple:
        return (type(self).__qualname__, self.pattern.source, self.collapse_runs)

    def plan(self, database: "SequenceDatabase") -> QueryPlan:
        if self._column_matcher() is None:
            # Tabulation budget exceeded: stay on the index-probe + NFA path.
            return QueryPlan(
                query=self,
                probe=self._probe,
                residual=self._grade_scalar,
                label="pattern",
                fingerprint=self.fingerprint(),
            )
        return QueryPlan(
            query=self,
            vector_filter=self._vector_filter,
            residual=self._grade_scalar,
            label="pattern",
            fingerprint=self.fingerprint(),
        )

    # Memo writes below are warmed by plan() on the caller's thread
    # before any stage scatters; shard workers only ever read them.
    def _column_matcher(self) -> "ColumnPatternMatcher | None":  # repro: ignore[RL004]
        if self._matcher is None and not self._matcher_failed:
            try:
                self._matcher = ColumnPatternMatcher.for_pattern(self.pattern)
            except PatternSyntaxError:
                self._matcher_failed = True
        return self._matcher

    def _vector_filter(
        self,
        database: "SequenceDatabase",
        store: "ColumnarSegmentStore",
        candidate_ids: "list[int] | None",
    ) -> VectorVerdicts:
        matcher = self._column_matcher()
        if self.collapse_runs:
            symbols = store.behavior_symbols
            starts = store.behavior_starts
            counts = store.behavior_counts
        else:
            symbols = store.segment_symbols
            starts = store.segment_starts
            counts = store.segment_counts
        if candidate_ids is None:
            ids = store.sequence_ids
        else:
            positions = store.positions_of(candidate_ids)
            ids = store.sequence_ids[positions]
            starts = starts[positions]
            counts = counts[positions]
        accepted = matcher.fullmatch_column(symbols, starts, counts)
        return VectorVerdicts(ids[accepted], ())

    def _probe(self, database: "SequenceDatabase") -> "list[int]":
        index = database.behavior_index if self.collapse_runs else database.pattern_index
        return index.match_full(self.pattern)

    def _grade_scalar(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        index = database.behavior_index if self.collapse_runs else database.pattern_index
        symbols = index.symbols_of(sequence_id)
        grade = MatchGrade.EXACT if self.pattern.fullmatch(symbols) else MatchGrade.REJECT
        return QueryMatch(sequence_id, database.name_of(sequence_id), grade)


class _SymbolMotifQuery(Query):
    """Shared machinery of the motif (counting / position) query family.

    A *motif* is a literal string over the slope alphabet (``+``, ``-``,
    ``0``) matched as a substring of one symbol view — the behavioural
    (run-collapsed) view by default, the positional view with
    ``collapse_runs=False``.  Membership is exact by construction, so
    the family emits no metric dimensions.

    Both backends answer through the same reductions: the
    ``uncompressed`` path scans the symbol columns with the shared
    motif kernels (:func:`repro.engine.succinct.column_motif_hits`),
    the ``succinct`` path reads the per-shard rank/select index —
    whose answers are byte-identical to those kernels by construction.
    """

    def __init__(self, motif: str, collapse_runs: bool = True) -> None:
        motif = str(motif)
        if not motif:
            raise QueryError("motif must not be empty")
        unknown = sorted(set(motif) - set(SYMBOL_CODES))
        if unknown:
            raise QueryError(
                f"motif may only use the slope symbols "
                f"{sorted(SYMBOL_CODES)}, got {unknown}"
            )
        self._motif = motif
        self._collapse_runs = bool(collapse_runs)
        self._codes = np.array([SYMBOL_CODES[ch] for ch in motif], dtype=np.int8)

    @property
    def motif(self) -> str:
        """The literal slope-symbol motif — fixed at construction."""
        return self._motif

    @property
    def collapse_runs(self) -> bool:
        """Which symbol view is searched — fixed at construction."""
        return self._collapse_runs

    def fingerprint(self) -> tuple:
        return (type(self).__qualname__, self.motif, self.collapse_runs)

    # The succinct indexes are built (or journal-synced) by plan() on
    # the caller's thread before any stage scatters; shard workers only
    # ever re-enter the accessor at the same generation, where sync is
    # a pure no-op read.
    def _warm_succinct(self, database: "SequenceDatabase") -> None:
        store = getattr(database, "store", None)
        if store is None or getattr(store, "symbol_backend", None) != "succinct":
            return
        for shard in store.shards():
            shard.succinct_index()

    @staticmethod
    def _use_succinct(store: "ColumnarSegmentStore") -> bool:
        return getattr(store, "symbol_backend", None) == "succinct"

    def _view_arrays(
        self, store: "ColumnarSegmentStore"
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        if self._collapse_runs:
            return store.behavior_symbols, store.behavior_starts, store.behavior_counts
        return store.segment_symbols, store.segment_starts, store.segment_counts

    def _occurrences_scan(
        self, store: "ColumnarSegmentStore"
    ) -> "tuple[np.ndarray, np.ndarray]":
        """One shard's ``(owner_rows, offsets)`` via the scan oracle."""
        symbols, starts, counts = self._view_arrays(store)
        return column_motif_hits(symbols, starts, counts, self._codes)

    def _sequence_occurrences(
        self, database: "SequenceDatabase", sequence_id: int
    ) -> np.ndarray:
        """One sequence's occurrence offsets — the residual-grade path."""
        store = database.store.shard_of(sequence_id)
        symbols, __, ___ = self._view_arrays(store)
        if self._collapse_runs:
            lo, hi = store.behavior_range(sequence_id)
        else:
            lo, hi = store.segment_range(sequence_id)
        return motif_occurrences(symbols[lo:hi], self._codes)


class CountQuery(_SymbolMotifQuery):
    """Sequences containing a literal slope-symbol motif.

    ``len(db.query(CountQuery("+-+")))`` is "how many sequences contain
    up-down-up"; the language form is ``COUNT MATCHING '+-+'``.  The
    stage is a vector filter, so it scatters per shard and crosses
    process boundaries under ``backend="process"`` — succinct-backed
    workers answer from the shared-memory bitvectors zero-copy.
    """

    def grade(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        return self._grade_scalar(database, sequence_id)

    def plan(self, database: "SequenceDatabase") -> QueryPlan:
        self._warm_succinct(database)
        return QueryPlan(
            query=self,
            vector_filter=self._vector_filter,
            residual=self._grade_scalar,
            label="count-matching",
            fingerprint=self.fingerprint(),
        )

    def _vector_filter(
        self,
        database: "SequenceDatabase",
        store: "ColumnarSegmentStore",
        candidate_ids: "list[int] | None",
    ) -> VectorVerdicts:
        if self._use_succinct(store):
            ids = store.succinct_index().sequences_containing(
                self._codes, self._collapse_runs
            )
        else:
            owners, __ = self._occurrences_scan(store)
            ids = (
                store.sequence_ids[np.unique(owners)]
                if owners.size
                else np.empty(0, dtype=np.int64)
            )
        if candidate_ids is not None:
            ids = np.intersect1d(ids, np.asarray(candidate_ids, dtype=np.int64))
        return VectorVerdicts(ids.astype(np.int64, copy=False), ())

    def _grade_scalar(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        hits = self._sequence_occurrences(database, sequence_id)
        grade = MatchGrade.EXACT if hits.size else MatchGrade.REJECT
        return QueryMatch(sequence_id, database.name_of(sequence_id), grade)


class MotifQuery(_SymbolMotifQuery):
    """Positions where a literal slope-symbol motif occurs.

    Every match's ``positions`` tuple holds the ascending start offsets
    of the motif inside the sequence's symbol view; the language form
    is ``POSITIONS OF '+-+'``.  Evaluated as a whole-shard ``collect``
    stage — each shard reads its complete answer off the succinct index
    (or the scan kernel) and the executor merges in sort order, the
    scatter-gather shape of top-k with no cut.
    """

    def grade(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        return self._grade_scalar(database, sequence_id)

    def plan(self, database: "SequenceDatabase") -> QueryPlan:
        self._warm_succinct(database)
        return QueryPlan(
            query=self,
            collect=self._collect_stage,
            residual=self._grade_scalar,
            label="motif-positions",
            fingerprint=self.fingerprint(),
        )

    def _collect_stage(
        self,
        database: "SequenceDatabase",
        store: "ColumnarSegmentStore",
        include_approximate: bool,
    ) -> "list[QueryMatch]":
        if self._use_succinct(store):
            found = store.succinct_index().occurrences(self._codes, self._collapse_runs)
        else:
            owners, offsets = self._occurrences_scan(store)
            found = []
            if owners.size:
                # Global hits ascend, so owner rows arrive grouped and
                # each group's offsets already ascend.
                boundaries = np.flatnonzero(np.diff(owners)) + 1
                ids = store.sequence_ids
                for rows, offs in zip(
                    np.split(owners, boundaries), np.split(offsets, boundaries)
                ):
                    found.append((int(ids[rows[0]]), offs))
        return [
            QueryMatch(
                int(sequence_id),
                database.name_of(int(sequence_id)),
                MatchGrade.EXACT,
                (),
                tuple(int(offset) for offset in offs),
            )
            for sequence_id, offs in found
        ]

    def _grade_scalar(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        hits = self._sequence_occurrences(database, sequence_id)
        if hits.size:
            return QueryMatch(
                sequence_id,
                database.name_of(sequence_id),
                MatchGrade.EXACT,
                (),
                tuple(int(offset) for offset in hits),
            )
        return QueryMatch(sequence_id, database.name_of(sequence_id), MatchGrade.REJECT)


class PeakCountQuery(Query):
    """Sequences with a prescribed number of peaks."""

    def __init__(self, count: int, count_tolerance: int = 0) -> None:
        if count < 0:
            raise QueryError("peak count must be non-negative")
        self._count = int(count)
        self._tolerance = Tolerance("peak_count", float(count_tolerance))

    @property
    def count(self) -> int:
        """The required peak count — fixed at construction."""
        return self._count

    @property
    def tolerance(self) -> Tolerance:
        """The ``peak_count`` tolerance — fixed at construction."""
        return self._tolerance

    def grade(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        return self._grade_scalar(database, sequence_id)

    def fingerprint(self) -> tuple:
        return (type(self).__qualname__, self.count, self.tolerance.bound)

    def plan(self, database: "SequenceDatabase") -> QueryPlan:
        return QueryPlan(
            query=self,
            vector_filter=self._vector_filter,
            residual=self._grade_scalar,
            label="peak-count",
            fingerprint=self.fingerprint(),
        )

    def _vector_filter(
        self,
        database: "SequenceDatabase",
        store: "ColumnarSegmentStore",
        candidate_ids: "list[int] | None",
    ) -> VectorVerdicts:
        if candidate_ids is None:
            ids = store.sequence_ids
            observed = store.peak_counts
        else:
            positions = store.positions_of(candidate_ids)
            ids = store.sequence_ids[positions]
            observed = store.peak_counts[positions]
        amounts = np.abs(float(self.count) - observed.astype(np.float64))
        return VectorVerdicts(
            ids, (DimensionColumn("peak_count", amounts, self.tolerance.bound),)
        )

    def _grade_scalar(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        observed = database.peak_count_of(sequence_id)
        deviation = self.tolerance.deviation(float(self.count), float(observed))
        return QueryMatch(
            sequence_id,
            database.name_of(sequence_id),
            grade_deviations([deviation]),
            (deviation,),
        )


class IntervalQuery(Query):
    """Some inter-peak (R-R) interval within ``target ± delta``.

    Exact means an interval of exactly ``target``; anything else within
    ``delta`` is an approximate match along the ``rr_interval``
    dimension — "a result is an approximate match if the distance
    between its peaks is within delta distance from n" (Section 5.2).
    """

    def __init__(self, target: float, delta: float) -> None:
        if target <= 0:
            raise QueryError("interval target must be positive")
        self._target = float(target)
        self._tolerance = Tolerance("rr_interval", float(delta))

    @property
    def target(self) -> float:
        """The sought interval length — fixed at construction."""
        return self._target

    @property
    def tolerance(self) -> Tolerance:
        """The ``rr_interval`` tolerance — fixed at construction."""
        return self._tolerance

    def candidates(self, database: "SequenceDatabase") -> "list[int] | None":
        return self._probe(database)

    def grade(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        return self._grade_scalar(database, sequence_id)

    def fingerprint(self) -> tuple:
        return (type(self).__qualname__, self.target, self.tolerance.bound)

    def plan(self, database: "SequenceDatabase") -> QueryPlan:
        return QueryPlan(
            query=self,
            probe=self._probe,
            vector_filter=self._vector_filter,
            residual=self._grade_scalar,
            label="rr-interval",
            fingerprint=self.fingerprint(),
        )

    def _probe(self, database: "SequenceDatabase") -> "list[int]":
        return database.rr_index.sequences_near(self.target, self.tolerance.bound)

    def _vector_filter(
        self,
        database: "SequenceDatabase",
        store: "ColumnarSegmentStore",
        candidate_ids: "list[int] | None",
    ) -> VectorVerdicts:
        if candidate_ids is None:
            positions = np.arange(store.n_sequences)
        else:
            positions = store.positions_of(candidate_ids)
        ids = store.sequence_ids[positions]
        starts = store.rr_starts[positions]
        counts = store.rr_counts[positions]
        amounts = np.full(len(positions), np.inf)
        populated = counts > 0
        if bool(populated.any()):
            # Ragged gather: concatenate each candidate's R-R rows, then
            # reduce per candidate — no per-sequence Python loop.
            sub_starts = starts[populated]
            sub_counts = counts[populated]
            offsets = np.zeros(len(sub_counts), dtype=np.int64)
            np.cumsum(sub_counts[:-1], out=offsets[1:])
            gather = np.repeat(sub_starts - offsets, sub_counts) + np.arange(
                int(sub_counts.sum()), dtype=np.int64
            )
            deviations = np.abs(store.rr_values[gather] - self.target)
            amounts[populated] = np.minimum.reduceat(deviations, offsets)
        return VectorVerdicts(
            ids, (DimensionColumn("rr_interval", amounts, self.tolerance.bound),)
        )

    def _grade_scalar(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        intervals = database.rr_intervals_of(sequence_id)
        if len(intervals) == 0:
            deviation = DimensionDeviation("rr_interval", float("inf"), self.tolerance.bound)
        else:
            best = float(np.abs(np.asarray(intervals) - self.target).min())
            deviation = DimensionDeviation("rr_interval", best, self.tolerance.bound)
        return QueryMatch(
            sequence_id,
            database.name_of(sequence_id),
            grade_deviations([deviation]),
            (deviation,),
        )


class SteepnessQuery(Query):
    """At least one rise at least ``min_slope`` steep.

    The ``steepness`` deviation is the shortfall of the steepest
    observed rise; sequences whose steepest rise is within
    ``slope_tolerance`` of the requirement match approximately.
    """

    def __init__(self, min_slope: float, slope_tolerance: float = 0.0) -> None:
        if min_slope <= 0:
            raise QueryError("min_slope must be positive")
        self._min_slope = float(min_slope)
        self._tolerance = Tolerance("steepness", float(slope_tolerance))

    @property
    def min_slope(self) -> float:
        """The required rise steepness — fixed at construction."""
        return self._min_slope

    @property
    def tolerance(self) -> Tolerance:
        """The ``steepness`` tolerance — fixed at construction."""
        return self._tolerance

    def grade(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        return self._grade_scalar(database, sequence_id)

    def fingerprint(self) -> tuple:
        return (type(self).__qualname__, self.min_slope, self.tolerance.bound)

    def plan(self, database: "SequenceDatabase") -> QueryPlan:
        return QueryPlan(
            query=self,
            vector_filter=self._vector_filter,
            residual=self._grade_scalar,
            label="steepness",
            fingerprint=self.fingerprint(),
        )

    def _vector_filter(
        self,
        database: "SequenceDatabase",
        store: "ColumnarSegmentStore",
        candidate_ids: "list[int] | None",
    ) -> VectorVerdicts:
        if candidate_ids is None:
            ids = store.sequence_ids
            steepest = store.max_rising_slopes
        else:
            positions = store.positions_of(candidate_ids)
            ids = store.sequence_ids[positions]
            steepest = store.max_rising_slopes[positions]
        amounts = np.maximum(0.0, self.min_slope - steepest)
        return VectorVerdicts(
            ids, (DimensionColumn("steepness", amounts, self.tolerance.bound),)
        )

    def _grade_scalar(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        representation = database.representation_of(sequence_id)
        rising = [s for s in representation.slopes() if s > 0]
        steepest = max(rising) if rising else 0.0
        shortfall = max(0.0, self.min_slope - steepest)
        deviation = DimensionDeviation("steepness", shortfall, self.tolerance.bound)
        return QueryMatch(
            sequence_id,
            database.name_of(sequence_id),
            grade_deviations([deviation]),
            (deviation,),
        )


class TopKQuery(Query):
    """The ``k`` most similar stored sequences to an exemplar.

    Similarity is the Euclidean distance between *profiles* — the
    representation resampled at :data:`repro.engine.clustering.N_FEATURES`
    uniformly spaced times (:func:`repro.engine.clustering.profile_features`)
    — so the query runs entirely on the reduced representation tier, no
    raw-archive reads.  ``max_distance`` (optional) caps how far a
    reported neighbour may be; results within it grade approximate
    along the ``profile_distance`` dimension, zero-distance results
    grade exact.

    The plan has a single ``topk`` stage: each shard's
    :class:`~repro.engine.clustering.ClusterIndex` runs
    probe-representatives → lower-bound-prune → heap-refine over its
    own rows, and the executor merges the per-shard partial heaps and
    cuts at ``k``.  Pruning is lossless (the sketch lower bound never
    exceeds the true distance), so the answer is identical — match for
    match, float for float — to grading every stored sequence through
    the same distance kernel and keeping the ``k`` best, ties broken
    toward the smaller sequence id.  The residual stage grades one
    sequence through the identical kernel; it backs ``query_legacy``
    and the cached heap's delta repair.
    """

    def __init__(
        self,
        exemplar: "Sequence | object",
        k: int,
        max_distance: float = float("inf"),
    ) -> None:
        from repro.core.representation import FunctionSeriesRepresentation

        if not isinstance(exemplar, (Sequence, FunctionSeriesRepresentation)):
            raise QueryError("exemplar must be a Sequence or a FunctionSeriesRepresentation")
        if isinstance(k, bool) or not isinstance(k, (int, np.integer)) or k <= 0:
            raise QueryError(f"k must be a positive integer, got {k!r}")
        max_distance = float(max_distance)
        if not max_distance >= 0.0:  # also rejects NaN
            raise QueryError("max_distance must be non-negative")
        self._exemplar = exemplar
        self._k = int(k)
        self._tolerance = Tolerance("profile_distance", max_distance)
        self._digest: "str | None" = None
        self._features: "np.ndarray | None" = None
        self._cache_ref: "weakref.ref | None" = None
        self._cache_breaker_ref: "weakref.ref | None" = None
        self._cache_key: "tuple | None" = None

    def __getstate__(self) -> "dict[str, object]":
        # Weakref memos neither pickle nor make sense in another
        # process; a worker recomputes its features memo from the
        # database config it was shipped (see repro.engine.procpool).
        state = self.__dict__.copy()
        state["_cache_ref"] = None
        state["_cache_breaker_ref"] = None
        state["_cache_key"] = None
        state["_features"] = None
        return state

    @property
    def k(self) -> int:
        """How many neighbours to report — fixed at construction."""
        return self._k

    @property
    def tolerance(self) -> Tolerance:
        """The ``profile_distance`` tolerance — fixed at construction."""
        return self._tolerance

    @property
    def max_distance(self) -> float:
        return self._tolerance.bound

    def grade(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        return self._grade_scalar(database, sequence_id)

    def fingerprint(self) -> tuple:
        if self._digest is None:
            self._digest = _exemplar_digest(self._exemplar)
        return (type(self).__qualname__, self._digest, self.k, self.tolerance.bound)

    def plan(self, database: "SequenceDatabase") -> QueryPlan:
        # Warm the query-feature memo before the stages run: scattered
        # per-shard stages may execute on worker threads, and planning
        # is the one point guaranteed to be on the caller's thread.
        self._features_for(database)
        return QueryPlan(
            query=self,
            topk=self._topk_stage,
            residual=self._grade_scalar,
            limit=self.k,
            label="top-k",
            fingerprint=self.fingerprint(),
        )

    # Memo writes below are warmed by plan() on the caller's thread
    # before any stage scatters; shard workers only ever read them.
    def _features_for(self, database: "SequenceDatabase") -> np.ndarray:  # repro: ignore[RL004]
        """The exemplar's profile under the database's own pipeline.

        A raw exemplar sequence goes through exactly the preprocessing
        and breaking the database applies to stored sequences; a
        prebuilt representation is profiled as-is.  Memoized per
        database with the same weakref discipline as
        :meth:`ShapeQuery._signature_for` — computed once per
        execution, shared read-only by every scattered shard stage.
        """
        from repro.core.representation import FunctionSeriesRepresentation
        from repro.engine.clustering import profile_features

        cached = self._cache_ref() if self._cache_ref is not None else None
        cached_breaker = (
            self._cache_breaker_ref() if self._cache_breaker_ref is not None else None
        )
        key = (database.theta, database.normalize, database.curve_kind)
        if (
            self._features is not None
            and cached is database
            and cached_breaker is database.breaker
            and self._cache_key == key
        ):
            return self._features
        if isinstance(self._exemplar, FunctionSeriesRepresentation):
            representation = self._exemplar
        else:
            exemplar = self._exemplar
            if database.normalize:
                from repro.preprocessing.normalization import znormalize

                exemplar = znormalize(exemplar)
            representation = database.breaker.represent(exemplar, curve_kind=database.curve_kind)
        columns = representation.segment_columns()
        self._features = profile_features(
            columns["start_time"], columns["end_time"],
            columns["start_value"], columns["end_value"],
        )
        self._cache_ref = weakref.ref(database)
        self._cache_breaker_ref = weakref.ref(database.breaker)
        self._cache_key = key
        return self._features

    def _threshold(self, include_approximate: bool) -> float:
        """Largest distance the pruned search may report.

        Mirrors the executor's grading comparisons exactly: ``within``
        allows ``bound + WITHIN_EPSILON``, and excluding approximates
        tightens the cap to the exactness dust ``EXACT_EPSILON`` — so
        the stage emits precisely the matches the residual path would
        keep.
        """
        threshold = self.tolerance.bound + WITHIN_EPSILON
        if not include_approximate:
            threshold = min(threshold, EXACT_EPSILON)
        return threshold

    def _topk_stage(
        self,
        database: "SequenceDatabase",
        store: "ColumnarSegmentStore",
        include_approximate: bool,
    ) -> "list[QueryMatch]":
        index = store.cluster_index()
        pairs = index.topk(
            self._features_for(database), self.k,
            threshold=self._threshold(include_approximate),
        )
        return [
            self._match_for(database, sequence_id, distance)
            for distance, sequence_id in pairs
        ]

    def _match_for(
        self, database: "SequenceDatabase", sequence_id: int, distance: float
    ) -> QueryMatch:
        deviation = DimensionDeviation(
            "profile_distance", float(distance), self.tolerance.bound
        )
        return QueryMatch(
            sequence_id,
            database.name_of(sequence_id),
            grade_deviations([deviation]),
            (deviation,),
        )

    def _grade_scalar(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        from repro.engine.clustering import chunked_distances

        index = database.store.shard_of(sequence_id).cluster_index()
        distances, __ = chunked_distances(
            index.features_of(sequence_id), self._features_for(database)
        )
        return self._match_for(database, sequence_id, float(distances[0]))


class ShapeQuery(Query):
    """Query by exemplar: same behavioural shape, any scale.

    The exemplar (a raw sequence or a prebuilt representation) is
    reduced to a :class:`~repro.core.shape.ShapeSignature`.  A candidate
    is an *exact* match when its signature has the same symbols and
    identical relative duration/amplitude profiles — which is precisely
    membership in the exemplar's equivalence class under the paper's
    feature-preserving transformations.  Candidates with the same
    symbols but profile differences within the tolerances are
    approximate matches along ``shape_duration`` / ``shape_amplitude``.

    Under the engine the columnar store prefilters structurally: the
    store's run-collapsed behaviour columns are compared against the
    exemplar's signature wholesale, and only sequences whose collapsed
    code string equals it survive.  Survivors are then graded by a
    vectorized stage that rebuilds every candidate's duration/amplitude
    profiles straight from the store's segment columns with the same
    reduction kernel :func:`repro.core.shape.profile_runs` the scalar
    signature uses — one ragged gather and a handful of ``reduceat``
    calls for the whole candidate set, bit-identical to grading each
    candidate's signature in Python.
    """

    def __init__(
        self,
        exemplar: "Sequence | object",
        duration_tolerance: float = 0.1,
        amplitude_tolerance: float = 0.1,
    ) -> None:
        from repro.core.representation import FunctionSeriesRepresentation

        self._duration_tolerance = Tolerance("shape_duration", float(duration_tolerance))
        self._amplitude_tolerance = Tolerance("shape_amplitude", float(amplitude_tolerance))
        if not isinstance(exemplar, (Sequence, FunctionSeriesRepresentation)):
            raise QueryError("exemplar must be a Sequence or a FunctionSeriesRepresentation")
        self._exemplar = exemplar
        self._cache_ref: "weakref.ref | None" = None
        self._cache_breaker_ref: "weakref.ref | None" = None
        self._cache_key: "tuple | None" = None
        self._signature = None
        self._digest: "str | None" = None
        # Query-side arrays derived from the signature, hoisted so the
        # scattered per-shard stages read them instead of rebuilding
        # them once per shard (see _signature_for).
        self._wanted_codes: "np.ndarray | None" = None
        self._duration_profile: "np.ndarray | None" = None
        self._amplitude_profile: "np.ndarray | None" = None

    def __getstate__(self) -> "dict[str, object]":
        # Weakref memos neither pickle nor make sense in another
        # process; a worker recomputes its signature memo from the
        # database config it was shipped (see repro.engine.procpool).
        state = self.__dict__.copy()
        state["_cache_ref"] = None
        state["_cache_breaker_ref"] = None
        state["_cache_key"] = None
        state["_signature"] = None
        state["_wanted_codes"] = None
        state["_duration_profile"] = None
        state["_amplitude_profile"] = None
        return state

    @property
    def duration_tolerance(self) -> Tolerance:
        """The ``shape_duration`` tolerance — fixed at construction."""
        return self._duration_tolerance

    @property
    def amplitude_tolerance(self) -> Tolerance:
        """The ``shape_amplitude`` tolerance — fixed at construction."""
        return self._amplitude_tolerance

    def grade(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        return self._grade_scalar(database, sequence_id)

    def fingerprint(self) -> tuple:
        if self._digest is None:
            self._digest = _exemplar_digest(self._exemplar)
        return (
            type(self).__qualname__,
            self._digest,
            self.duration_tolerance.bound,
            self.amplitude_tolerance.bound,
        )

    def plan(self, database: "SequenceDatabase") -> QueryPlan:
        # Warm the signature memo before the stages run: scattered
        # stages may execute on worker threads, and planning is the one
        # point guaranteed to be on the caller's thread.
        self._signature_for(database)
        return QueryPlan(
            query=self,
            prefilter=self._prefilter,
            vector_filter=self._vector_filter,
            residual=self._grade_scalar,
            label="shape",
            fingerprint=self.fingerprint(),
        )

    # Memo writes below are warmed by plan() on the caller's thread
    # before any stage scatters; shard workers only ever read them.
    def _signature_for(self, database: "SequenceDatabase"):  # repro: ignore[RL004]
        """Exemplar signature under the database's own pipeline.

        A raw exemplar sequence goes through exactly the preprocessing
        and breaking the database applies to stored sequences, so the
        comparison is apples to apples; a prebuilt representation is
        trusted as-is.

        The signature is memoized per database through *weak*
        references (to the database and its breaker, so a reassigned
        breaker invalidates too) plus the database's pipeline
        configuration.  A plain
        ``id(database)`` key is unsound: after the database is
        garbage-collected, CPython can hand its ``id`` to a brand-new
        database, silently serving a signature built under a different
        breaker/normalize configuration.  The weakref cannot be fooled —
        a dead referent never compares ``is`` to a live database — and
        it keeps the query from pinning the database alive.
        """
        from repro.core.representation import FunctionSeriesRepresentation
        from repro.core.shape import shape_signature

        cached = self._cache_ref() if self._cache_ref is not None else None
        cached_breaker = (
            self._cache_breaker_ref() if self._cache_breaker_ref is not None else None
        )
        key = (database.theta, database.normalize, database.curve_kind)
        if (
            self._signature is not None
            and cached is database
            and cached_breaker is database.breaker
            and self._cache_key == key
        ):
            return self._signature
        if isinstance(self._exemplar, FunctionSeriesRepresentation):
            representation = self._exemplar
        else:
            exemplar = self._exemplar
            if database.normalize:
                from repro.preprocessing.normalization import znormalize

                exemplar = znormalize(exemplar)
            representation = database.breaker.represent(exemplar, curve_kind=database.curve_kind)
        signature = shape_signature(representation, database.theta)
        self._signature = signature
        # Hoist the query-side comparison arrays alongside the memoized
        # signature: each scattered shard stage reuses one prebuilt
        # code/profile array instead of re-deriving it per shard.
        self._wanted_codes = np.array(
            [SYMBOL_CODES[c] for c in signature.symbols], dtype=np.int8
        )
        self._duration_profile = np.asarray(signature.duration_profile)
        self._amplitude_profile = np.asarray(signature.amplitude_profile)
        self._cache_ref = weakref.ref(database)
        self._cache_breaker_ref = weakref.ref(database.breaker)
        self._cache_key = key
        return self._signature

    def _prefilter(
        self,
        database: "SequenceDatabase",
        store: "ColumnarSegmentStore",
        candidate_ids: "list[int] | None",
    ) -> "list[int]":
        """Sequences whose collapsed slope-sign string equals the
        exemplar's — the only ones :meth:`grade` could accept.

        Reads the store's run-collapsed behaviour columns directly:
        exactly the classification this query compares against, already
        materialized at ingest, so the prefilter is one length compare
        plus one row compare over the survivors.
        """
        wanted = self._signature_for(database).symbols
        if store.n_sequences == 0:
            return []
        if candidate_ids is not None:
            # Compare only the candidate rows (they are live by the
            # stage contract): the delta-revalidation subset path stays
            # proportional to the dirty set, not the store.
            if not len(candidate_ids):
                return []
            positions = store.positions_of(candidate_ids)
            matched = positions[store.behavior_counts[positions] == len(wanted)]
        else:
            matched = np.flatnonzero(store.behavior_counts == len(wanted))
        if len(matched) == 0:
            return []
        wanted_codes = self._wanted_codes
        rows = store.behavior_starts[matched][:, None] + np.arange(len(wanted))
        same = (store.behavior_symbols[rows] == wanted_codes).all(axis=1)
        return [int(s) for s in store.sequence_ids[matched[same]]]

    def _vector_filter(
        self,
        database: "SequenceDatabase",
        store: "ColumnarSegmentStore",
        candidate_ids: "list[int] | None",
    ) -> VectorVerdicts:
        """Profile deviations for every structural survivor, columnarly.

        Candidates are the prefilter's output, so each one's collapsed
        symbol string equals the exemplar's — every candidate has the
        same number of behavioural runs, and the per-run
        duration/amplitude shares stack into dense ``(candidates, runs)``
        matrices.  The per-segment extents come straight from the
        store's segment columns (the exact floats
        :func:`~repro.core.shape.shape_signature` reads from the
        representation), and :func:`~repro.core.shape.profile_runs` is
        the same reduction the scalar signature applies, so the graded
        deviations are bit-identical to the residual path.
        """
        from repro.core.shape import profile_runs

        wanted = self._signature_for(database)
        if candidate_ids is None:
            candidate_ids = self._prefilter(database, store, None)
        ids = np.asarray(candidate_ids, dtype=np.int64)
        n = len(ids)
        n_runs = len(wanted.symbols)
        def dimensions(dur: np.ndarray, amp: np.ndarray) -> "tuple[DimensionColumn, ...]":
            return (
                DimensionColumn("shape_duration", dur, self.duration_tolerance.bound),
                DimensionColumn("shape_amplitude", amp, self.amplitude_tolerance.bound),
            )
        if n == 0 or n_runs == 0:
            # No candidates, or a dead-flat exemplar: survivors (if any)
            # have empty profiles, which deviate by exactly 0.0.
            zeros = np.zeros(n)
            return VectorVerdicts(ids, dimensions(zeros, zeros.copy()))
        positions = store.positions_of(ids)
        starts = store.segment_starts[positions]
        counts = store.segment_counts[positions]
        offsets = np.zeros(n, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        gather = np.repeat(starts - offsets, counts) + np.arange(
            int(counts.sum()), dtype=np.int64
        )
        start_times = store.segment_column("start_time")[gather]
        end_times = store.segment_column("end_time")[gather]
        start_values = store.segment_column("start_value")[gather]
        end_values = store.segment_column("end_value")[gather]
        codes = store.segment_symbols[gather]
        durations = np.maximum(end_times - start_times, 0.0)
        travels = np.abs(end_values - start_values)
        run_offsets = np.flatnonzero(run_start_mask(codes, offsets))
        if len(run_offsets) != n * n_runs:
            raise QueryError(
                "shape candidates must come from the structural prefilter "
                f"(got {len(run_offsets)} runs for {n} candidates x {n_runs})"
            )
        group_offsets = np.arange(n, dtype=np.int64) * n_runs
        duration_profile, amplitude_profile = profile_runs(
            durations, travels, run_offsets, group_offsets
        )
        duration_amounts = np.abs(
            duration_profile.reshape(n, n_runs) - self._duration_profile
        ).max(axis=1)
        amplitude_amounts = np.abs(
            amplitude_profile.reshape(n, n_runs) - self._amplitude_profile
        ).max(axis=1)
        return VectorVerdicts(ids, dimensions(duration_amounts, amplitude_amounts))

    def _grade_scalar(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        from repro.core.shape import shape_signature

        wanted = self._signature_for(database)
        observed = shape_signature(
            database.representation_of(sequence_id), database.theta
        )
        name = database.name_of(sequence_id)
        if not wanted.matches_symbols(observed):
            # Structurally different behaviour: out of the class entirely.
            infinite = (
                DimensionDeviation("shape_duration", float("inf"), self.duration_tolerance.bound),
                DimensionDeviation("shape_amplitude", float("inf"), self.amplitude_tolerance.bound),
            )
            return QueryMatch(sequence_id, name, MatchGrade.REJECT, infinite)
        deviations = (
            DimensionDeviation(
                "shape_duration", wanted.duration_deviation(observed), self.duration_tolerance.bound
            ),
            DimensionDeviation(
                "shape_amplitude",
                wanted.amplitude_deviation(observed),
                self.amplitude_tolerance.bound,
            ),
        )
        return QueryMatch(sequence_id, name, grade_deviations(deviations), deviations)


class ExemplarQuery(Query):
    """Value-based epsilon matching against raw data (the old notion).

    Retrieves raw sequences from the archive (paying the simulated
    latency the paper's architecture avoids) and compares values
    pointwise; used by benchmarks as the Figure 1 baseline.  Under the
    engine, candidates whose stored length differs from the exemplar's
    are dropped columnarly before any archive read.

    Candidates with *no archived raw data* — sequences ingested through
    ``insert_representation`` — cannot be value-graded at all: they are
    rejected with an infinite ``value_distance`` deviation instead of
    leaking a storage-layer error, on both the engine and legacy paths.
    A database built with ``keep_raw=False`` archives nothing, so no
    candidate could ever grade; that is reported as a clean
    :class:`QueryError` up front.
    """

    def __init__(self, exemplar: Sequence, epsilon: float) -> None:
        if epsilon < 0:
            raise QueryError("epsilon must be non-negative")
        self._exemplar_sequence = exemplar
        self._tolerance = Tolerance("value_distance", float(epsilon))
        self._digest: "str | None" = None
        # Hoisted once here rather than re-measured per scattered shard.
        # Derived from the exemplar, whose content digest is already the
        # fingerprint's exemplar component.
        self._exemplar_length = len(exemplar)  # repro: ignore[RL002]

    @property
    def tolerance(self) -> Tolerance:
        """The ``value_distance`` tolerance — fixed at construction."""
        return self._tolerance

    @property
    def exemplar(self) -> Sequence:
        """The query exemplar — fixed at construction.

        The cache fingerprint memoizes its content digest; build a new
        query to search for a different exemplar.
        """
        return self._exemplar_sequence

    def candidates(self, database: "SequenceDatabase") -> "list[int] | None":
        # Checking the raw tier here keeps the legacy path in lockstep
        # with the engine's prefilter: both fail fast on keep_raw=False
        # databases, even empty ones, instead of diverging.
        self._require_raw_tier(database)
        return None

    def grade(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        return self._grade_scalar(database, sequence_id)

    def fingerprint(self) -> tuple:
        if self._digest is None:
            self._digest = _exemplar_digest(self.exemplar)
        return (type(self).__qualname__, self._digest, self.tolerance.bound)

    def plan(self, database: "SequenceDatabase") -> QueryPlan:
        return QueryPlan(
            query=self,
            prefilter=self._prefilter,
            residual=self._grade_scalar,
            label="exemplar-value",
            fingerprint=self.fingerprint(),
        )

    @staticmethod
    def _require_raw_tier(database: "SequenceDatabase") -> None:
        if not database.keep_raw:
            raise QueryError(
                "value-based exemplar grading needs archived raw data, but the "
                "database was built with keep_raw=False"
            )

    def _prefilter(
        self,
        database: "SequenceDatabase",
        store: "ColumnarSegmentStore",
        candidate_ids: "list[int] | None",
    ) -> "list[int]":
        """Length mismatches grade to an infinite deviation; drop them
        before paying the archive's simulated latency."""
        self._require_raw_tier(database)
        if candidate_ids is not None:
            # Check only the candidate rows; the delta-revalidation
            # subset path stays proportional to the dirty set.
            if not len(candidate_ids):
                return []
            positions = store.positions_of(candidate_ids)
            same_length = store.sequence_ids[
                positions[store.source_lengths[positions] == self._exemplar_length]
            ]
        else:
            same_length = store.sequence_ids[
                store.source_lengths == self._exemplar_length
            ]
        return [int(s) for s in same_length]

    def _grade_scalar(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        self._require_raw_tier(database)
        if not database.has_raw(sequence_id):
            # Representation-only ingest: no raw values exist to compare.
            deviation = DimensionDeviation("value_distance", float("inf"), self.tolerance.bound)
        else:
            raw = database.raw_sequence(sequence_id)
            if len(raw) != len(self.exemplar):
                deviation = DimensionDeviation(
                    "value_distance", float("inf"), self.tolerance.bound
                )
            else:
                distance = float(np.abs(raw.values - self.exemplar.values).max())
                deviation = DimensionDeviation("value_distance", distance, self.tolerance.bound)
        return QueryMatch(
            sequence_id,
            database.name_of(sequence_id),
            grade_deviations([deviation]),
            (deviation,),
        )
