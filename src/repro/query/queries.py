"""Generalized approximate query types (paper Sections 2.2 and 5.2).

Each query denotes a *set* of sequences closed under feature-preserving
transformations; evaluation grades every candidate as exact (a member
of the set), approximate (within per-dimension tolerances) or rejected.
The concrete types:

:class:`PatternQuery`
    A regular expression over the slope alphabet — the goal-post fever
    query shape.  Membership is exact by construction; there is no
    metric dimension.
:class:`PeakCountQuery`
    "Exactly k peaks", with an optional count tolerance — the explicit
    feature-dimension version of the same query, graded along the
    ``peak_count`` dimension.
:class:`IntervalQuery`
    "R-R interval of length n ± delta" (Section 5.2), answered through
    the inverted-file index and graded along the ``rr_interval``
    dimension.
:class:`SteepnessQuery`
    "Sudden vigorous activity": at least one rising segment of slope >=
    ``min_slope``, graded along the ``steepness`` dimension — the
    paper's "steepness of the slopes" approximation dimension.
:class:`ShapeQuery`
    Query *by exemplar* — "the query can be an exemplar or an
    expression" (Section 2.2).  The exemplar is broken and reduced to a
    scale-free shape signature; candidates with the same behavioural
    structure match, graded along the ``shape_duration`` and
    ``shape_amplitude`` dimensions (both zero for candidates related to
    the exemplar by shift / scale / dilation / contraction).
:class:`ExemplarQuery`
    The old value-based notion (Figure 1), kept for head-to-head
    comparisons; graded along the ``value_distance`` dimension.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

from repro.core.errors import QueryError
from repro.core.sequence import Sequence
from repro.core.tolerance import DimensionDeviation, MatchGrade, Tolerance, grade_deviations
from repro.patterns.regex import SymbolPattern
from repro.query.results import QueryMatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.query.database import SequenceDatabase

__all__ = [
    "Query",
    "PatternQuery",
    "PeakCountQuery",
    "IntervalQuery",
    "SteepnessQuery",
    "ShapeQuery",
    "ExemplarQuery",
]


class Query(abc.ABC):
    """A generalized approximate query."""

    def candidates(self, database: "SequenceDatabase") -> "list[int] | None":
        """Index-assisted candidate ids, or None to scan everything.

        Candidate sets must have no false dismissals for the query's
        tolerance; grading re-checks every candidate anyway.
        """
        return None

    @abc.abstractmethod
    def grade(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        """Grade one stored sequence against this query."""


class PatternQuery(Query):
    """Full-sequence behaviour pattern over the slope alphabet."""

    def __init__(self, pattern: "str | SymbolPattern", collapse_runs: bool = True) -> None:
        self.pattern = SymbolPattern.compile(pattern)
        self.collapse_runs = collapse_runs

    def candidates(self, database: "SequenceDatabase") -> "list[int] | None":
        index = database.behavior_index if self.collapse_runs else database.pattern_index
        return index.match_full(self.pattern)

    def grade(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        index = database.behavior_index if self.collapse_runs else database.pattern_index
        symbols = index.symbols_of(sequence_id)
        grade = MatchGrade.EXACT if self.pattern.fullmatch(symbols) else MatchGrade.REJECT
        return QueryMatch(sequence_id, database.name_of(sequence_id), grade)


class PeakCountQuery(Query):
    """Sequences with a prescribed number of peaks."""

    def __init__(self, count: int, count_tolerance: int = 0) -> None:
        if count < 0:
            raise QueryError("peak count must be non-negative")
        self.count = int(count)
        self.tolerance = Tolerance("peak_count", float(count_tolerance))

    def grade(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        observed = database.peak_count_of(sequence_id)
        deviation = self.tolerance.deviation(float(self.count), float(observed))
        return QueryMatch(
            sequence_id,
            database.name_of(sequence_id),
            grade_deviations([deviation]),
            (deviation,),
        )


class IntervalQuery(Query):
    """Some inter-peak (R-R) interval within ``target ± delta``.

    Exact means an interval of exactly ``target``; anything else within
    ``delta`` is an approximate match along the ``rr_interval``
    dimension — "a result is an approximate match if the distance
    between its peaks is within delta distance from n" (Section 5.2).
    """

    def __init__(self, target: float, delta: float) -> None:
        if target <= 0:
            raise QueryError("interval target must be positive")
        self.target = float(target)
        self.tolerance = Tolerance("rr_interval", float(delta))

    def candidates(self, database: "SequenceDatabase") -> "list[int] | None":
        return database.rr_index.sequences_near(self.target, self.tolerance.bound)

    def grade(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        intervals = database.rr_intervals_of(sequence_id)
        if len(intervals) == 0:
            deviation = DimensionDeviation("rr_interval", float("inf"), self.tolerance.bound)
        else:
            best = float(np.abs(np.asarray(intervals) - self.target).min())
            deviation = DimensionDeviation("rr_interval", best, self.tolerance.bound)
        return QueryMatch(
            sequence_id,
            database.name_of(sequence_id),
            grade_deviations([deviation]),
            (deviation,),
        )


class SteepnessQuery(Query):
    """At least one rise at least ``min_slope`` steep.

    The ``steepness`` deviation is the shortfall of the steepest
    observed rise; sequences whose steepest rise is within
    ``slope_tolerance`` of the requirement match approximately.
    """

    def __init__(self, min_slope: float, slope_tolerance: float = 0.0) -> None:
        if min_slope <= 0:
            raise QueryError("min_slope must be positive")
        self.min_slope = float(min_slope)
        self.tolerance = Tolerance("steepness", float(slope_tolerance))

    def grade(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        representation = database.representation_of(sequence_id)
        rising = [s for s in representation.slopes() if s > 0]
        steepest = max(rising) if rising else 0.0
        shortfall = max(0.0, self.min_slope - steepest)
        deviation = DimensionDeviation("steepness", shortfall, self.tolerance.bound)
        return QueryMatch(
            sequence_id,
            database.name_of(sequence_id),
            grade_deviations([deviation]),
            (deviation,),
        )


class ShapeQuery(Query):
    """Query by exemplar: same behavioural shape, any scale.

    The exemplar (a raw sequence or a prebuilt representation) is
    reduced to a :class:`~repro.core.shape.ShapeSignature`.  A candidate
    is an *exact* match when its signature has the same symbols and
    identical relative duration/amplitude profiles — which is precisely
    membership in the exemplar's equivalence class under the paper's
    feature-preserving transformations.  Candidates with the same
    symbols but profile differences within the tolerances are
    approximate matches along ``shape_duration`` / ``shape_amplitude``.
    """

    def __init__(
        self,
        exemplar: "Sequence | object",
        duration_tolerance: float = 0.1,
        amplitude_tolerance: float = 0.1,
    ) -> None:
        from repro.core.representation import FunctionSeriesRepresentation
        from repro.core.shape import shape_signature

        self.duration_tolerance = Tolerance("shape_duration", float(duration_tolerance))
        self.amplitude_tolerance = Tolerance("shape_amplitude", float(amplitude_tolerance))
        if not isinstance(exemplar, (Sequence, FunctionSeriesRepresentation)):
            raise QueryError("exemplar must be a Sequence or a FunctionSeriesRepresentation")
        self._exemplar = exemplar
        self._signature_builder = shape_signature
        self._cache_key: "tuple[int, float] | None" = None
        self._signature = None

    def _signature_for(self, database: "SequenceDatabase"):
        """Exemplar signature under the database's own pipeline.

        A raw exemplar sequence goes through exactly the preprocessing
        and breaking the database applies to stored sequences, so the
        comparison is apples to apples; a prebuilt representation is
        trusted as-is.
        """
        from repro.core.representation import FunctionSeriesRepresentation

        key = (id(database), database.theta)
        if self._signature is not None and self._cache_key == key:
            return self._signature
        if isinstance(self._exemplar, FunctionSeriesRepresentation):
            representation = self._exemplar
        else:
            exemplar = self._exemplar
            if database.normalize:
                from repro.preprocessing.normalization import znormalize

                exemplar = znormalize(exemplar)
            representation = database.breaker.represent(exemplar, curve_kind=database.curve_kind)
        self._signature = self._signature_builder(representation, database.theta)
        self._cache_key = key
        return self._signature

    def grade(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        wanted = self._signature_for(database)
        observed = self._signature_builder(
            database.representation_of(sequence_id), database.theta
        )
        name = database.name_of(sequence_id)
        if not wanted.matches_symbols(observed):
            # Structurally different behaviour: out of the class entirely.
            infinite = (
                DimensionDeviation("shape_duration", float("inf"), self.duration_tolerance.bound),
                DimensionDeviation("shape_amplitude", float("inf"), self.amplitude_tolerance.bound),
            )
            return QueryMatch(sequence_id, name, MatchGrade.REJECT, infinite)
        deviations = (
            DimensionDeviation(
                "shape_duration", wanted.duration_deviation(observed), self.duration_tolerance.bound
            ),
            DimensionDeviation(
                "shape_amplitude",
                wanted.amplitude_deviation(observed),
                self.amplitude_tolerance.bound,
            ),
        )
        return QueryMatch(sequence_id, name, grade_deviations(deviations), deviations)


class ExemplarQuery(Query):
    """Value-based epsilon matching against raw data (the old notion).

    Retrieves raw sequences from the archive (paying the simulated
    latency the paper's architecture avoids) and compares values
    pointwise; used by benchmarks as the Figure 1 baseline.
    """

    def __init__(self, exemplar: Sequence, epsilon: float) -> None:
        if epsilon < 0:
            raise QueryError("epsilon must be non-negative")
        self.exemplar = exemplar
        self.tolerance = Tolerance("value_distance", float(epsilon))

    def grade(self, database: "SequenceDatabase", sequence_id: int) -> QueryMatch:
        raw = database.raw_sequence(sequence_id)
        if len(raw) != len(self.exemplar):
            deviation = DimensionDeviation("value_distance", float("inf"), self.tolerance.bound)
        else:
            distance = float(np.abs(raw.values - self.exemplar.values).max())
            deviation = DimensionDeviation("value_distance", distance, self.tolerance.bound)
        return QueryMatch(
            sequence_id,
            database.name_of(sequence_id),
            grade_deviations([deviation]),
            (deviation,),
        )
