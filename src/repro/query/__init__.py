"""Generalized approximate query engine (paper Sections 2, 4.4, 5.2)."""

from repro.query.database import SequenceDatabase
from repro.query.ingest import IngestPipeline
from repro.query.language import parse_query
from repro.query.queries import (
    ExemplarQuery,
    IntervalQuery,
    PatternQuery,
    PeakCountQuery,
    Query,
    ShapeQuery,
    SteepnessQuery,
    TopKQuery,
)
from repro.query.results import QueryMatch

__all__ = [
    "SequenceDatabase",
    "IngestPipeline",
    "Query",
    "PatternQuery",
    "PeakCountQuery",
    "IntervalQuery",
    "SteepnessQuery",
    "ShapeQuery",
    "ExemplarQuery",
    "TopKQuery",
    "QueryMatch",
    "parse_query",
]
