"""The sequence database: ingest, represent, index, query.

This is the system of paper Section 4.4 assembled end to end:

1. raw sequences are archived (slow tier, latency-accounted);
2. each sequence is broken by a breaking algorithm and represented as a
   series of functions (regression lines by default — the paper's
   choice), stored compactly on the local tier;
3. indexes are maintained over the representation: the slope-sign
   pattern index (positional and behavioural views) and the
   inverted-file R-R interval index of Figure 10, plus the execution
   engine's columnar segment store, which mirrors every live
   representation column-wise;
4. generalized approximate queries run against representations and
   indexes alone — by default as vectorized plans over the columnar
   store (:mod:`repro.engine`); raw data is touched only by explicit
   baseline queries or ``raw_sequence`` calls.
"""

from __future__ import annotations

import functools
import threading
from pathlib import Path
from types import TracebackType
from typing import Callable, Concatenate, Iterable, ParamSpec, TypeVar

import numpy as np

from repro.core.errors import QueryError
from repro.core.features import Peak, PeakTableRow, find_peaks, find_peaks_many, peak_table
from repro.core.representation import (
    FunctionSeriesRepresentation,
    classify_slopes,
    collapse_symbol_runs,
    decode_symbols,
    run_start_mask,
    symbols_from_slopes,
)
from repro.core.sequence import Sequence
from repro.engine import (
    SYMBOL_BACKENDS,
    ColumnarSegmentStore,
    ParallelExecutor,
    PlanResultCache,
    ProcessParallelExecutor,
    QueryExecutor,
    QueryPlanner,
    ShardedSegmentStore,
    SharedMemoryArena,
)
from repro.index.inverted import InvertedFileIndex
from repro.index.pattern_index import PatternIndex
from repro.preprocessing.normalization import znormalize
from repro.query.queries import Query, TopKQuery
from repro.query.results import QueryMatch
from repro.segmentation.base import Breaker
from repro.segmentation.interpolation import InterpolationBreaker
from repro.storage.archive import ArchivalStore, LocalStore
from repro.storage.catalog import RepresentationCatalog

__all__ = ["SequenceDatabase"]

_P = ParamSpec("_P")
_R = TypeVar("_R")


def _mutator(
    method: "Callable[Concatenate[SequenceDatabase, _P], _R]",
) -> "Callable[Concatenate[SequenceDatabase, _P], _R]":
    """Run a database mutation under the database's mutation lock.

    Writes are serialized against each other (concurrent serving runs
    writer threads next to query threads); reads stay lock-free — the
    executor's snapshot tokens detect and retry any read that raced a
    write, and only its last-resort fallback takes this lock to grade
    in mutual exclusion.  The lock is re-entrant so batched mutators
    can delegate to each other (``append`` -> ``append_many``).

    The decorator also maintains ``mutation_seq``, a database-level
    seqlock: odd while the outermost mutator is in flight, bumped even
    on exit.  The store's own generation only moves at the *end* of a
    mutation, after the side indexes (pattern trie, name/representation
    maps) have already changed — the seqlock closes that window so the
    executor can tell "a writer is mid-flight" apart from "a stage bug"
    and retry instead of surfacing a torn read.
    """

    @functools.wraps(method)
    def locked(self: "SequenceDatabase", /, *args: _P.args, **kwargs: _P.kwargs) -> _R:
        with self.mutation_lock:
            outermost = self._mutation_depth == 0
            if outermost:
                self.mutation_seq += 1
            self._mutation_depth += 1
            try:
                return method(self, *args, **kwargs)
            finally:
                self._mutation_depth -= 1
                if outermost:
                    self.mutation_seq += 1

    return locked


class SequenceDatabase:
    """Store sequences as function series; answer approximate queries.

    Parameters
    ----------
    breaker:
        Breaking algorithm; defaults to the paper's interpolation
        breaker with ``epsilon = 0.5``.
    curve_kind:
        Representation curve fitted at the breaker's boundaries
        (``"regression"`` in the paper's experiments).
    theta:
        Slope-flatness threshold for the symbol alphabet and peak
        detection.
    rr_bucket_width:
        Bucket width of the inverted R-R index (Figure 10).
    keep_raw:
        Whether to archive raw sequences for finer-resolution access.
    normalize:
        Z-normalize (mean 0, variance 1) before breaking — the paper's
        Section 7 preprocessing that eliminates "differences between
        sequences that are linear transformations (scaling and
        translation) of each other".  The archive keeps the original
        amplitudes either way.
    n_shards:
        ``None`` (default) keeps the single columnar store; an integer
        ``>= 1`` splits it into that many independent shards
        (hash-by-sequence-id) and query stages scatter-gather across
        them.  Results are identical for every setting; shard when the
        store is large enough that per-shard stage runs (especially
        with a parallel executor) pay for the merge.
    max_workers:
        ``> 1`` executes the scattered per-shard stages on a thread
        pool of this size (:class:`~repro.engine.ParallelExecutor`);
        ``None``/``1`` keeps the serial executor.  Only meaningful
        together with ``n_shards >= 2`` — shards are the units of
        scatter, so an unsharded store always runs its single leaf
        inline.  Worker count never changes results, only wall-clock.
    backend:
        Explicit executor choice: ``"serial"``, ``"thread"`` or
        ``"process"`` (:class:`~repro.engine.ProcessParallelExecutor`,
        which scatters stages to worker *processes* attaching the
        shards' shared-memory columns by name).  ``None`` (default)
        keeps the legacy rule: ``max_workers > 1`` means threads,
        otherwise serial.  Every backend returns identical results.
    shared_memory:
        Back the columnar store's arrays with named shared-memory
        blocks (:class:`~repro.engine.SharedMemoryArena`) so worker
        processes can attach them zero-copy.  ``None`` (default)
        enables it exactly when ``backend="process"``; ``True`` forces
        it (useful to pre-stage a store a process executor will serve
        later), ``False`` keeps heap arrays — the process backend then
        silently degrades to inline scatter.  Call :meth:`close` (or
        use the database as a context manager) to release the blocks
        deterministically.
    symbol_backend:
        Storage strategy for the symbol columns' counting/position
        queries: ``"uncompressed"`` (default) scans the ``int8``
        columns, ``"succinct"`` maintains per-shard rank/select wavelet
        matrices (:mod:`repro.engine.succinct`) and answers
        :class:`~repro.query.queries.CountQuery` /
        :class:`~repro.query.queries.MotifQuery` scan-free.  Answers
        are byte-identical for both settings.
    """

    def __init__(
        self,
        breaker: "Breaker | None" = None,
        curve_kind: str = "regression",
        theta: float = 0.05,
        rr_bucket_width: float = 1.0,
        keep_raw: bool = True,
        normalize: bool = False,
        trie_depth: int = 12,
        n_shards: "int | None" = None,
        max_workers: "int | None" = None,
        backend: "str | None" = None,
        shared_memory: "bool | None" = None,
        symbol_backend: str = "uncompressed",
    ) -> None:
        self._breaker = breaker if breaker is not None else InterpolationBreaker(0.5)
        self._config_epoch = 0
        self.curve_kind = curve_kind
        self._theta = float(theta)
        self.keep_raw = keep_raw
        self.normalize = normalize
        if backend not in (None, "serial", "thread", "process"):
            raise QueryError(
                f"unknown backend {backend!r}; expected 'serial', 'thread' or 'process'"
            )
        if symbol_backend not in SYMBOL_BACKENDS:
            raise QueryError(
                f"unknown symbol backend {symbol_backend!r}; "
                f"expected one of {SYMBOL_BACKENDS}"
            )
        #: Serializes mutations against each other; queries never take
        #: it except in the executor's snapshot-retry fallback.
        self.mutation_lock = threading.RLock()
        #: Database-level seqlock: odd while a mutator is in flight,
        #: even when settled.  Readers pin it next to the store's
        #: generation vector (see ``_mutator``).
        self.mutation_seq = 0
        self._mutation_depth = 0

        self.archive = ArchivalStore()
        self.local_store = LocalStore()
        self.catalog = RepresentationCatalog()
        #: Positional view: one symbol per segment.
        self.pattern_index = PatternIndex(theta=theta, trie_depth=trie_depth, collapse_runs=False)
        #: Behavioural view: runs collapsed, for full-pattern queries.
        self.behavior_index = PatternIndex(theta=theta, trie_depth=trie_depth, collapse_runs=True)
        #: Figure 10: inverted file over R-R interval lengths.
        self.rr_index = InvertedFileIndex(bucket_width=rr_bucket_width)
        #: Execution engine: column-wise mirror of every live representation,
        #: including the int8 slope-sign symbol columns (raw and collapsed) —
        #: a single store by default, hash-partitioned when sharded.
        if shared_memory is None:
            shared_memory = backend == "process"
        self._arena = SharedMemoryArena(label="repro") if shared_memory else None
        if n_shards is None:
            self.store: "ColumnarSegmentStore | ShardedSegmentStore" = ColumnarSegmentStore(
                theta=self.theta, arena=self._arena, symbol_backend=symbol_backend
            )
        else:
            self.store = ShardedSegmentStore(
                n_shards,
                theta=self.theta,
                arena=self._arena,
                symbol_backend=symbol_backend,
            )
        self.planner = QueryPlanner()
        if backend is None:
            backend = "thread" if max_workers is not None and max_workers > 1 else "serial"
        if backend == "process":
            self.executor: QueryExecutor = ProcessParallelExecutor(max_workers=max_workers)
        elif backend == "thread":
            self.executor = ParallelExecutor(max_workers=max_workers)
        else:
            self.executor = QueryExecutor()
        #: Plan-level result cache: graded answers memoized per store
        #: generation, invalidated implicitly by insert/delete.
        self.result_cache = PlanResultCache()

        self._representations: dict[int, FunctionSeriesRepresentation] = {}
        self._names: dict[int, str] = {}
        self._next_id = 0

    @property
    def theta(self) -> float:
        """Slope-flatness threshold — fixed at construction.

        Every derived structure (pattern-index symbol strings, the
        store's symbol columns, peak counts, R-R intervals) is
        classified with this value at ingest; allowing it to change
        afterwards would silently desynchronize them.  Build a new
        database to query under a different theta.
        """
        return self._theta

    @property
    def breaker(self) -> "Breaker":
        """The breaking algorithm; reassigning invalidates cached results."""
        return self._breaker

    @breaker.setter
    def breaker(self, value: "Breaker") -> None:
        self._breaker = value
        self._config_epoch += 1

    def cache_epoch(self) -> tuple:
        """Token naming everything a cached answer depends on.

        Combines the store's data generation with the query pipeline's
        configuration (``theta``/``normalize``/``curve_kind`` by value,
        the breaker by reassignment count), so ingest, deletion and
        config reassignment all invalidate cached results.  Config
        objects themselves are treated as immutable: mutating a breaker
        in place is not supported and invisible to the cache.
        """
        return (
            self.store.generation,
            self.theta,
            self.normalize,
            self.curve_kind,
            self.keep_raw,
            self._config_epoch,
        )

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    @_mutator
    def insert(self, sequence: Sequence) -> int:
        """Archive, break, represent and index one sequence."""
        sequence_id = self._admit(sequence)
        if self.normalize:
            sequence = znormalize(sequence)
        representation = self.breaker.represent(sequence, curve_kind=self.curve_kind)
        peak_count, intervals = self._ingest_one(sequence_id, representation, sequence.name)
        self.store.insert(
            sequence_id, representation, peak_count=peak_count, rr=intervals
        )
        return sequence_id

    @_mutator
    def insert_all(self, sequences: Iterable[Sequence]) -> list[int]:
        """Batch ingest: break, represent and index the batch columnarly.

        Functionally identical to repeated :meth:`insert` — same
        boundaries, representations, symbol strings, peaks and postings,
        bit for bit — but every stage runs over the whole batch at once:
        the breaker's frontier-batched :meth:`Breaker.represent_many`
        breaks all sequences in lock-step rounds, slope symbols are
        classified in one pass feeding both pattern-index views through
        their bulk ``add_symbols_many`` entry points, peaks come from
        :func:`find_peaks_many` over the stacked run-collapsed symbol
        columns, R-R intervals land in the inverted index as one
        :meth:`InvertedFileIndex.add_block`, and the columnar store's
        arrays grow a single time per touched shard.
        """
        batch = list(sequences)
        if not batch:
            return []
        sequence_ids = [self._admit(sequence) for sequence in batch]
        if self.normalize:
            batch = [znormalize(sequence) for sequence in batch]
        representations = self.breaker.represent_many(batch, curve_kind=self.curve_kind)

        # Classify and render the whole batch's slope symbols in one
        # pass: decode_symbols is a pure per-code map and runs never
        # span sequences (run_start_mask re-opens a run at every group
        # start), so slicing the batch strings per sequence yields
        # exactly the strings the scalar path computes one by one.
        code_blocks = [
            classify_slopes(representation.segment_columns()["slope"], self.theta)
            for representation in representations
        ]
        counts = np.array([len(block) for block in code_blocks], dtype=np.int64)
        group_starts = np.zeros(len(counts), dtype=np.int64)
        np.cumsum(counts[:-1], out=group_starts[1:])
        flat_codes = np.concatenate(code_blocks)
        all_symbols = decode_symbols(flat_codes)
        run_starts = run_start_mask(flat_codes, group_starts)
        collapsed_counts = np.add.reduceat(run_starts.astype(np.int64), group_starts)
        all_collapsed = decode_symbols(flat_codes[run_starts])

        positional_items: "list[tuple[int, str]]" = []
        behavior_items: "list[tuple[int, str]]" = []
        position = 0
        collapsed_position = 0
        for sequence_id, sequence, representation, count, collapsed_count in zip(
            sequence_ids, batch, representations, counts.tolist(), collapsed_counts.tolist()
        ):
            self._register(sequence_id, representation, sequence.name)
            positional_items.append((sequence_id, all_symbols[position : position + count]))
            behavior_items.append(
                (
                    sequence_id,
                    all_collapsed[collapsed_position : collapsed_position + collapsed_count],
                )
            )
            position += count
            collapsed_position += collapsed_count
        self.pattern_index.add_symbols_many(positional_items)
        self.behavior_index.add_symbols_many(behavior_items)

        peak_columns = find_peaks_many(representations, self.theta, codes=flat_codes)
        interval_blocks = [np.diff(times) for times, __ in peak_columns]
        self.rr_index.add_block(zip(sequence_ids, interval_blocks))
        self.store.extend(
            [
                (sequence_id, representation, len(times), intervals)
                for sequence_id, representation, (times, __), intervals in zip(
                    sequence_ids, representations, peak_columns, interval_blocks
                )
            ]
        )
        return sequence_ids

    @_mutator
    def insert_representation(
        self, representation: FunctionSeriesRepresentation, name: str = ""
    ) -> int:
        """Ingest a pre-built representation with no raw backing.

        For data that arrives already summarized (a remote site shipping
        compact function series instead of raw samples, or benchmark
        corpora reusing a broken pool).  The sequence is indexed and
        queryable exactly like an inserted one, with the limitations of
        having no raw data:

        * ``raw_sequence`` raises :class:`~repro.core.errors.StorageError`
          (nothing was archived) and ``has_raw`` returns False;
        * ``add_variant`` cannot rebuild it from raw samples;
        * value-based grading (``ExemplarQuery``) rejects it with an
          infinite ``value_distance`` deviation rather than failing —
          representation-level queries (pattern, peak, interval,
          steepness, shape) are unaffected.
        """
        sequence_id = self._next_id
        self._next_id += 1
        peak_count, intervals = self._ingest_one(
            sequence_id, representation, name or representation.name
        )
        self.store.insert(
            sequence_id, representation, peak_count=peak_count, rr=intervals
        )
        return sequence_id

    def ingest_pipeline(self, batch_size: int = 256) -> "IngestPipeline":
        """A batched ingest front-end for this database.

        Buffers raw sequences and flushes them through
        :meth:`insert_all` — one :meth:`Breaker.represent_many` call and
        one column block append per touched shard per batch.  Use as a
        context manager so a trailing partial batch always lands::

            with db.ingest_pipeline(batch_size=512) as pipeline:
                for sequence in feed:
                    pipeline.add(sequence)
        """
        from repro.query.ingest import IngestPipeline

        return IngestPipeline(self, batch_size=batch_size)

    def _admit(self, sequence: Sequence) -> int:
        """Assign the next id and archive the raw sequence."""
        sequence_id = self._next_id
        self._next_id += 1
        if self.keep_raw:
            self.archive.store(sequence_id, sequence)
        return sequence_id

    def _register(
        self,
        sequence_id: int,
        representation: FunctionSeriesRepresentation,
        name: str,
    ) -> None:
        """Record one representation in the maps, local tier and catalog.

        The registration block shared verbatim by per-sequence ingest
        (:meth:`_ingest_one`) and batched :meth:`insert_all`, so the
        default-name rule and the stored tags can never drift between
        the two paths.
        """
        self._representations[sequence_id] = representation
        self._names[sequence_id] = name or f"seq-{sequence_id}"
        self.local_store.store(sequence_id, representation)
        self.catalog.put(sequence_id, "default", representation)

    def _ingest_one(
        self,
        sequence_id: int,
        representation: FunctionSeriesRepresentation,
        name: str,
    ) -> "tuple[int, np.ndarray]":
        """Register one representation everywhere except the columnar store.

        Classifies the slope alphabet once and feeds both pattern-index
        views from that single pass, extracts peaks once for both the
        peak count and the R-R intervals, and returns ``(peak_count,
        intervals)`` so callers can forward them to the columnar store
        (individually or batched).
        """
        self._register(sequence_id, representation, name)

        symbols = symbols_from_slopes(representation.slopes(), self.theta)
        self.pattern_index.add_symbols(sequence_id, symbols)
        self.behavior_index.add_symbols(sequence_id, collapse_symbol_runs(symbols))

        peaks = find_peaks(representation, self.theta)
        peak_count = len(peaks)
        intervals = np.diff(np.asarray([peak.time for peak in peaks], dtype=float))
        self.rr_index.add_array(sequence_id, intervals)
        return peak_count, intervals

    # ------------------------------------------------------------------
    # Streaming append
    # ------------------------------------------------------------------

    @_mutator
    def append(
        self,
        sequence_id: int,
        values: "Iterable[float] | np.ndarray",
        times: "Iterable[float] | np.ndarray | None" = None,
    ) -> int:
        """Extend one live sequence with new trailing samples.

        The streaming write path: the raw tail lands in the archive,
        the representation is re-broken *from the last breakpoint only*
        when the breaker supports online extension
        (:meth:`~repro.segmentation.base.Breaker.extend_indices`), the
        pattern/behaviour tries and the inverted R-R index are patched
        for the affected suffix only, and the columnar store splices
        the sequence's rows in place — journalled as one ``"append"``
        touching exactly this id, so cached query answers re-grade one
        sequence instead of the world.  End state is byte-identical to
        deleting the sequence and re-inserting its full data (same
        boundaries, symbols, peaks, postings and columns), which the
        parity suite enforces for every query type.

        ``times`` defaults to continuing the sequence's uniform grid.
        Raw data must be archived (``keep_raw=True`` and not
        representation-only); representation *variants* of the sequence
        are dropped — they described the shorter data.  Returns the
        sequence's new length.
        """
        return self.append_many([(sequence_id, values, times)])[0]

    @_mutator
    def append_many(
        self,
        items: "Iterable[tuple]",
    ) -> list[int]:
        """Extend many live sequences in one batch (see :meth:`append`).

        ``items`` yields ``(sequence_id, values)`` or ``(sequence_id,
        values, times)`` tuples.  Breaking runs through the breaker's
        batch :meth:`~repro.segmentation.base.Breaker.extend_indices_many`
        (frontier-batched suffix rescans for online breakers, the
        frontier-batched full re-break otherwise) and the columnar
        store splices all touched rows with one generation bump per
        touched shard.  The whole batch is validated before anything
        mutates.  Returns the new lengths, in item order.
        """
        batch: "list[tuple[int, np.ndarray, object]]" = []
        for item in items:
            sequence_id = int(item[0])
            values = item[1]
            times = item[2] if len(item) > 2 else None
            batch.append((sequence_id, values, times))
        if not batch:
            return []
        ids = [entry[0] for entry in batch]
        if len(set(ids)) != len(ids):
            raise QueryError("duplicate sequence ids in append batch")
        for sequence_id in ids:
            self._require(sequence_id)
            if not self.has_raw(sequence_id):
                raise QueryError(
                    f"append needs archived raw data for sequence {sequence_id}; "
                    "it was ingested without raw backing"
                )

        # Build every extended raw sequence first: a bad payload in the
        # batch must mutate nothing.
        extended: "list[Sequence]" = []
        for sequence_id, values, times in batch:
            old = self.archive.peek(sequence_id)
            new_values = np.asarray(
                values if isinstance(values, np.ndarray) else list(values), dtype=float
            )
            if new_values.ndim != 1 or new_values.size == 0:
                raise QueryError("appended values must be a non-empty 1-D array")
            if times is None:
                step = float(old.times[-1] - old.times[-2]) if len(old) > 1 else 1.0
                new_times = old.times[-1] + step * np.arange(
                    1, new_values.size + 1, dtype=float
                )
            else:
                new_times = np.asarray(
                    times if isinstance(times, np.ndarray) else list(times), dtype=float
                )
                if new_times.shape != new_values.shape:
                    raise QueryError("appended times and values disagree in length")
            extended.append(
                Sequence(
                    np.concatenate([old.times, new_times]),
                    np.concatenate([old.values, new_values]),
                    name=old.name,
                )
            )

        if self.normalize:
            # Z-normalization is global: new samples move every old
            # sample's normalized value, so the whole sequence re-breaks
            # (still batched through represent_many).
            normalized = [znormalize(sequence) for sequence in extended]
            representations = self.breaker.represent_many(
                normalized, curve_kind=self.curve_kind
            )
        else:
            previous = [
                [
                    (segment.start_index, segment.end_index)
                    for segment in self._representations[sequence_id].segments
                ]
                for sequence_id in ids
            ]
            boundaries = self.breaker.extend_indices_many(list(zip(extended, previous)))
            representations = [
                FunctionSeriesRepresentation.from_breakpoints_reusing(
                    sequence,
                    bounds,
                    self._representations[sequence_id],
                    curve_kind=self.curve_kind,
                    epsilon=self.breaker.epsilon,
                )
                for sequence_id, sequence, bounds in zip(ids, extended, boundaries)
            ]

        # Breaking/refitting (the stage a user-supplied breaker can fail
        # in) is done; only now touch durable state, archive first.
        for sequence_id, sequence in zip(ids, extended):
            self.archive.replace(sequence_id, sequence)

        store_items = []
        for sequence_id, representation in zip(ids, representations):
            symbols = symbols_from_slopes(representation.slopes(), self.theta)
            self.pattern_index.update_symbols(sequence_id, symbols)
            self.behavior_index.update_symbols(
                sequence_id, collapse_symbol_runs(symbols)
            )
            peaks = find_peaks(representation, self.theta)
            intervals = np.diff(
                np.asarray([peak.time for peak in peaks], dtype=float)
            )
            old_intervals = self.store.rr_intervals_of(sequence_id)
            self.rr_index.replace_tail(sequence_id, old_intervals, intervals)
            self._representations[sequence_id] = representation
            # The local tier and catalog replace the default blob; other
            # variants described the shorter data and are dropped.
            self.local_store.evict(sequence_id)
            self.local_store.store(sequence_id, representation)
            self.catalog.remove_sequence(sequence_id)
            self.catalog.put(sequence_id, "default", representation)
            store_items.append((sequence_id, representation, len(peaks), intervals))
        self.store.replace_many(store_items)
        return [len(sequence) for sequence in extended]

    @_mutator
    def add_variant(
        self,
        sequence_id: int,
        variant: str,
        breaker: "Breaker",
        curve_kind: "str | None" = None,
    ) -> FunctionSeriesRepresentation:
        """Store an additional representation of an ingested sequence.

        Paper Section 5.2: "it would be possible to compute and store
        multiple representations and indices for the same data ...
        useful for simultaneously supporting several common query
        forms."  The variant is built from the archived raw data (one
        simulated slow read), stored in the catalog and the local tier
        under its own tag, and returned.
        """
        self._require(sequence_id)
        raw = self.raw_sequence(sequence_id)
        if self.normalize:
            raw = znormalize(raw)
        representation = breaker.represent(raw, curve_kind=curve_kind or breaker.curve_kind)
        self.catalog.put(sequence_id, variant, representation)
        self.local_store.store(sequence_id, representation, tag=variant)
        return representation

    def variant_of(self, sequence_id: int, variant: str) -> FunctionSeriesRepresentation:
        """A previously stored representation variant."""
        return self.catalog.get(sequence_id, variant)

    @_mutator
    def delete(self, sequence_id: int) -> None:
        """Remove a sequence from the database and every index.

        The raw blob stays in the archive (archival media are
        append-only in the paper's setting); everything queryable —
        representation, local-tier blobs, catalog variants, pattern
        indexes, R-R postings, columnar store rows — is removed, so
        subsequent queries never see the sequence and storage
        accounting reflects only live data.
        """
        self._require(sequence_id)
        del self._representations[sequence_id]
        del self._names[sequence_id]
        self.pattern_index.remove(sequence_id)
        self.behavior_index.remove(sequence_id)
        self.rr_index.remove_sequence(sequence_id)
        self.store.delete(sequence_id)
        self.local_store.evict(sequence_id)
        self.catalog.remove_sequence(sequence_id)

    @_mutator
    def delete_many(self, sequence_ids: "Iterable[int]") -> None:
        """Remove many sequences, every index batched (see :meth:`delete`).

        End state is identical to deleting the ids one at a time, but
        each structure pays its fixed costs once for the batch: the
        pattern and behaviour tries prune dead branches in a single
        pass, the inverted R-R index filters its postings file once,
        and the columnar store compacts each touched shard's columns in
        one sweep — bumping each shard's generation (and therefore the
        result-cache epoch) once per shard rather than once per id.
        The whole batch is validated up front; an unknown or duplicate
        id removes nothing.
        """
        ids = [int(sequence_id) for sequence_id in sequence_ids]
        if len(set(ids)) != len(ids):
            raise QueryError("duplicate sequence ids in delete_many batch")
        for sequence_id in ids:
            self._require(sequence_id)
        if not ids:
            return
        for sequence_id in ids:
            del self._representations[sequence_id]
            del self._names[sequence_id]
            self.local_store.evict(sequence_id)
            self.catalog.remove_sequence(sequence_id)
        self.pattern_index.remove_many(ids)
        self.behavior_index.remove_many(ids)
        self.rr_index.remove_sequences(ids)
        self.store.delete_many(ids)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._representations)

    def __contains__(self, sequence_id: int) -> bool:
        return sequence_id in self._representations

    def ids(self) -> list[int]:
        return sorted(self._representations)

    def name_of(self, sequence_id: int) -> str:
        self._require(sequence_id)
        return self._names[sequence_id]

    def representation_of(self, sequence_id: int) -> FunctionSeriesRepresentation:
        self._require(sequence_id)
        return self._representations[sequence_id]

    def peak_count_of(self, sequence_id: int) -> int:
        self._require(sequence_id)
        return self.store.peak_count_of(sequence_id)

    def rr_intervals_of(self, sequence_id: int) -> np.ndarray:
        """One sequence's R-R intervals, read from the columnar store.

        Returns a copy: the store compacts its columns on delete, so a
        view would silently change under the caller.
        """
        self._require(sequence_id)
        return self.store.rr_intervals_of(sequence_id)

    def peaks_of(self, sequence_id: int) -> "list[Peak]":
        """Peak records of one sequence (see :func:`find_peaks`)."""
        return find_peaks(self.representation_of(sequence_id), self.theta)

    def peak_table_of(self, sequence_id: int) -> "list[PeakTableRow]":
        """The paper's Table 1 rows for one sequence."""
        return peak_table(self.representation_of(sequence_id), self.theta)

    def has_raw(self, sequence_id: int) -> bool:
        """Whether raw data for a live sequence is actually archived.

        False for sequences ingested via ``insert_representation`` (and
        for everything when the database was built with
        ``keep_raw=False``); such sequences can only be queried through
        their representation.
        """
        self._require(sequence_id)
        return self.keep_raw and sequence_id in self.archive

    def raw_sequence(self, sequence_id: int) -> Sequence:
        """Raw data from the archive — pays the simulated slow-tier cost."""
        self._require(sequence_id)
        if not self.keep_raw:
            raise QueryError("database was built with keep_raw=False")
        return self.archive.retrieve(sequence_id)

    def _require(self, sequence_id: int) -> None:
        if sequence_id not in self._representations:
            raise QueryError(f"unknown sequence id {sequence_id}")

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def query(
        self,
        query: Query,
        include_approximate: bool = True,
        engine: bool = True,
        cache: bool = True,
        limit: "int | None" = None,
    ) -> list[QueryMatch]:
        """Evaluate a query; exact matches first, then by deviation.

        By default the query is planned and executed by the vectorized
        engine (:mod:`repro.engine`); ``engine=False`` runs the legacy
        per-sequence loop instead.  Both paths return identical results
        — the legacy path survives as the engine's correctness oracle.

        ``limit`` keeps only the first ``limit`` matches of the sorted
        answer (a positive integer).  :class:`TopKQuery` carries its
        own ``k`` and rejects an extra ``limit``; for every other query
        the limited answer is cached under its own key, so the same
        query at different limits coexists in the cache and each entry
        is repaired by the top-k heap patch on mutation.

        With ``cache=True`` (the default) the engine consults the
        plan-level result cache: re-running a fingerprinted query on an
        unchanged database returns the memoized answer without planning
        a single stage, and any ``insert``/``delete`` invalidates it
        through the store's generation counter.  ``cache=False`` forces
        a full evaluation (and leaves the cache untouched); the legacy
        path never caches.
        """
        limit = self._validated_limit(query, limit)
        if engine:
            plan = self._planned(query, limit)
            return self.executor.execute(
                self,
                plan,
                include_approximate,
                cache=self.result_cache if cache else None,
            )
        matches = self.query_legacy(query, include_approximate)
        # The legacy loop grades everything; apply the same cut the
        # engine's plan would (a TopKQuery's k, or the explicit limit).
        effective = query.k if isinstance(query, TopKQuery) else limit
        return matches if effective is None else matches[:effective]

    @staticmethod
    def _validated_limit(query: Query, limit: "int | None") -> "int | None":
        if limit is None:
            return None
        if isinstance(limit, bool) or not isinstance(limit, (int, np.integer)) or limit <= 0:
            raise QueryError(f"limit must be a positive integer, got {limit!r}")
        if isinstance(query, TopKQuery):
            raise QueryError(
                "top-k queries carry their own k; build the query with the "
                "wanted k instead of passing limit"
            )
        return int(limit)

    def _planned(self, query: Query, limit: "int | None"):
        """The query's plan with any validated ``limit`` applied."""
        import dataclasses

        plan = self.planner.plan(query, self)
        if limit is not None:
            plan = dataclasses.replace(plan, limit=limit)
        return plan

    def query_legacy(self, query: Query, include_approximate: bool = True) -> list[QueryMatch]:
        """Pre-engine evaluation: per-sequence candidate grading."""
        candidate_ids = query.candidates(self)
        if candidate_ids is None:
            candidate_ids = self.ids()
        matches = []
        for sequence_id in candidate_ids:
            match = query.grade(self, sequence_id)
            if match.is_exact or (include_approximate and match.grade.value == "approximate"):
                matches.append(match)
        return sorted(matches, key=QueryMatch.sort_key)

    def explain(
        self,
        query: Query,
        include_approximate: bool = True,
        limit: "int | None" = None,
    ) -> str:
        """The stage list the engine will run for ``query``.

        A top-k plan renders its pruned pipeline
        (``probe-representatives -> lower-bound-prune -> heap-refine
        [limit=k]``); pass the same ``limit`` as the matching
        :meth:`query` call so the cache verdict inspects the right
        entry.

        Includes the result cache's verdict for this exact evaluation:
        ``cache-hit`` (the stages would be skipped entirely),
        ``cache: delta-revalidated (k dirty)`` (a stale answer would be
        patched by re-grading the ``k`` journal-dirty ids only),
        ``cache-miss`` (the stages run in full and the answer is
        remembered), or ``uncacheable`` (the query has no fingerprint).
        """
        limit = self._validated_limit(query, limit)
        plan = self._planned(query, limit)
        if plan.fingerprint is None:
            state = "uncacheable"
        else:
            key = (plan.fingerprint, bool(include_approximate))
            if plan.limit is not None:
                key = key + (plan.limit,)
            epoch = self.cache_epoch()
            if self.result_cache.peek(key, epoch):
                state = "cache-hit"
            else:
                state = "cache-miss"
                stale = self.result_cache.stale_entry(key, epoch)
                if stale is not None:
                    # The one eligibility rule the evaluation itself
                    # applies — verdict and behaviour cannot diverge.
                    kind, payload = QueryExecutor.revalidation_plan(self, stale, epoch)
                    if kind == "delta":
                        live_dirty, __ = payload
                        state = f"cache: delta-revalidated ({len(live_dirty)} dirty)"
        return f"{plan.describe()} [{state} @ generation {self.store.generation}]"

    def scan_rr(self, target: float, delta: float) -> list[int]:
        """Linear-scan answer to the R-R query (index validation path).

        One vectorized predicate over each shard's stacked R-R column —
        the "scan" is a scan of arrays, not of Python objects.
        """
        matched: "list[int]" = []
        for shard in self.store.shards():
            values = shard.rr_values
            if len(values) == 0:
                continue
            hits = np.abs(values - target) <= delta
            matched.extend(int(s) for s in np.unique(shard.rr_sequences[hits]))
        return sorted(matched)

    def count_matching(self, motif: str, collapse_runs: bool = True) -> int:
        """How many stored sequences contain ``motif`` as a substring.

        The ``COUNT MATCHING '<motif>'`` language form: a
        :class:`~repro.query.queries.CountQuery` over the behavioural
        symbol view (positional with ``collapse_runs=False``), answered
        scan-free under ``symbol_backend="succinct"``.
        """
        from repro.query.queries import CountQuery

        return len(self.query(CountQuery(motif, collapse_runs=collapse_runs)))

    def motif_positions(
        self, motif: str, collapse_runs: bool = True
    ) -> "dict[int, tuple[int, ...]]":
        """Occurrence start offsets of ``motif``, per matching sequence.

        The ``POSITIONS OF '<motif>'`` language form: a
        :class:`~repro.query.queries.MotifQuery`, returned as
        ``{sequence_id: ascending offsets}`` over the chosen symbol
        view.  Sequences without an occurrence are absent.
        """
        from repro.query.queries import MotifQuery

        return {
            match.sequence_id: match.positions
            for match in self.query(MotifQuery(motif, collapse_runs=collapse_runs))
        }

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def cache_stats(self) -> dict:
        """The plan-result cache's counters and estimated footprint."""
        return self.result_cache.stats()

    def save_result_cache(self, path: "str | Path") -> int:
        """Persist the warm plan-result cache entries to ``path``.

        See :func:`repro.storage.catalog.save_result_cache`; returns the
        number of entries written.
        """
        from repro.storage.catalog import save_result_cache

        return save_result_cache(self, path)

    def load_result_cache(self, path: "str | Path") -> int:
        """Adopt a persisted cache snapshot, if it still matches.

        See :func:`repro.storage.catalog.load_result_cache`; returns the
        number of entries adopted (0 when the data has mutated
        underneath the snapshot).
        """
        from repro.storage.catalog import load_result_cache

        return load_result_cache(self, path)

    def storage_report(self) -> dict:
        """Byte totals and compression for the storage benchmarks.

        Alongside the paper's raw-vs-representation accounting, reports
        the engine's columnar allocation (``engine_bytes``, growth
        headroom included), the plan-result cache's counters and
        estimated resident bytes (``result_cache``, including
        ``revalidations`` / ``delta_hits`` / ``delta_fallbacks`` and
        the top-k counters ``topk_entries`` / ``topk_refills``), the
        mutation journal's footprint (``journal``: retained entries,
        estimated bytes, rebase floor, compactions), and the cluster-
        representative pruning telemetry (``topk``: representatives,
        builds/rebuilds, clusters probed and pruned, candidates
        refined, early abandons, and the last query's pruned fraction),
        the executor's backend/pool telemetry (``executor``: backend
        name, query/retry/fallback counters and, for pooled backends,
        worker and dispatch counts), the succinct symbol-index
        telemetry (``succinct``: backend, bits per symbol, rank
        blocks, builds/rebuilds/patches, overlay size), and the
        shared-memory arena's block accounting (``shared_memory``:
        live blocks, bytes, retired counts — ``None`` when columns
        live on the heap).
        """
        raw_bytes = self.archive.total_bytes()
        rep_bytes = self.local_store.total_bytes()
        total_segments = sum(len(r) for r in self._representations.values())
        total_points = sum(r.source_length for r in self._representations.values())
        return {
            "sequences": len(self),
            "total_points": total_points,
            "total_segments": total_segments,
            "raw_bytes": raw_bytes,
            "representation_bytes": rep_bytes,
            "engine_bytes": self.store.nbytes,
            "result_cache": self.cache_stats(),
            "journal": self.store.journal_stats(),
            "topk": self.store.cluster_report(),
            "succinct": self.store.succinct_report(),
            "executor": self.executor.stats(),
            "shared_memory": self._arena.stats() if self._arena is not None else None,
            "byte_compression": raw_bytes / rep_bytes if rep_bytes else float("inf"),
            "paper_convention_compression": (
                total_points / (3 * total_segments) if total_segments else float("inf")
            ),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release pooled workers and shared-memory blocks (idempotent).

        Heap-backed, serially executed databases have nothing to
        release and every database stays usable after ``close`` for
        reads of heap state — but a shared-memory-backed store's
        columns are freed here, so treat ``close`` as end-of-life.
        Garbage collection would get there eventually (the arena and
        pools have finalizers); serving code should still close
        deterministically, and the analyzer's RL006 rule holds the
        engine layer to the same standard.
        """
        closer = getattr(self.executor, "close", None)
        if closer is not None:
            closer()
        if self._arena is not None:
            self._arena.close()

    def __enter__(self) -> "SequenceDatabase":
        return self

    def __exit__(
        self,
        exc_type: "type[BaseException] | None",
        exc: "BaseException | None",
        tb: "TracebackType | None",
    ) -> None:
        self.close()
