"""A small textual query language for generalized approximate queries.

The paper's future work (Section 6) calls for "a query language that
supports generalized approximate queries"; this module provides a
minimal, keyword-based one covering every query type in
:mod:`repro.query.queries`:

.. code-block:: text

    PATTERN '(0|-)* + (0|-)^+ + (0|-)*'
    PEAKS 2
    PEAKS 2 TOLERANCE 1
    INTERVAL 135 +/- 5
    STEEPNESS 5
    STEEPNESS 5 TOLERANCE 1.5
    SHAPE OF 3
    SHAPE OF 3 DURATION 0.15 AMPLITUDE 0.2
    NEAREST 10 TO 3
    NEAREST 10 TO 3 WITHIN 2.5
    COUNT MATCHING '+-+'
    COUNT MATCHING '+-+' POSITIONAL
    POSITIONS OF '+-+'
    POSITIONS OF '+-+' POSITIONAL

Keywords are case-insensitive; pattern text sits inside single or
double quotes.  ``SHAPE OF <id>`` and ``NEAREST <k> TO <id>`` use the
stored representation of an already-ingested sequence as the exemplar,
so they need the database at parse time; the other forms are
database-independent.  ``NEAREST`` builds a
:class:`~repro.query.queries.TopKQuery` — the ``k`` most similar
sequences by profile distance, optionally capped at ``WITHIN <d>``.
``COUNT MATCHING`` / ``POSITIONS OF`` take a literal slope-symbol
motif (``+``, ``-``, ``0`` only — substring containment, not a regex)
and build a :class:`~repro.query.queries.CountQuery` /
:class:`~repro.query.queries.MotifQuery` over the behavioural view;
the trailing ``POSITIONAL`` keyword switches to the positional
(per-segment) symbol view.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

from repro.core.errors import QueryError
from repro.query.queries import (
    CountQuery,
    IntervalQuery,
    MotifQuery,
    PatternQuery,
    PeakCountQuery,
    Query,
    ShapeQuery,
    SteepnessQuery,
    TopKQuery,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.query.database import SequenceDatabase

__all__ = ["parse_query"]

_PATTERN_RE = re.compile(r"^PATTERN\s+(?P<quote>['\"])(?P<pattern>.*)(?P=quote)\s*$", re.IGNORECASE)
_PEAKS_RE = re.compile(
    r"^PEAKS\s+(?P<count>\d+)(?:\s+TOLERANCE\s+(?P<tol>\d+))?\s*$", re.IGNORECASE
)
_NUMBER = r"[-+]?\d+(?:\.\d+)?"
_INTERVAL_RE = re.compile(
    rf"^INTERVAL\s+(?P<target>{_NUMBER})\s*\+/-\s*(?P<delta>{_NUMBER})\s*$", re.IGNORECASE
)
_STEEPNESS_RE = re.compile(
    rf"^STEEPNESS\s+(?P<slope>{_NUMBER})(?:\s+TOLERANCE\s+(?P<tol>{_NUMBER}))?\s*$",
    re.IGNORECASE,
)
_SHAPE_RE = re.compile(
    rf"^SHAPE\s+OF\s+(?P<sid>\d+)"
    rf"(?:\s+DURATION\s+(?P<dur>{_NUMBER}))?"
    rf"(?:\s+AMPLITUDE\s+(?P<amp>{_NUMBER}))?\s*$",
    re.IGNORECASE,
)
_NEAREST_RE = re.compile(
    rf"^NEAREST\s+(?P<k>\d+)\s+TO\s+(?P<sid>\d+)"
    rf"(?:\s+WITHIN\s+(?P<dist>{_NUMBER}))?\s*$",
    re.IGNORECASE,
)
_COUNT_RE = re.compile(
    r"^COUNT\s+MATCHING\s+(?P<quote>['\"])(?P<motif>.*)(?P=quote)"
    r"(?P<positional>\s+POSITIONAL)?\s*$",
    re.IGNORECASE,
)
_POSITIONS_RE = re.compile(
    r"^POSITIONS\s+OF\s+(?P<quote>['\"])(?P<motif>.*)(?P=quote)"
    r"(?P<positional>\s+POSITIONAL)?\s*$",
    re.IGNORECASE,
)


def parse_query(text: str, database: "SequenceDatabase | None" = None) -> Query:
    """Parse one query statement into a :class:`Query` object.

    Raises
    ------
    QueryError
        On syntax errors, or for ``SHAPE OF`` without a database.
    """
    statement = text.strip()
    if not statement:
        raise QueryError("empty query")

    match = _PATTERN_RE.match(statement)
    if match:
        return PatternQuery(match.group("pattern"))

    match = _PEAKS_RE.match(statement)
    if match:
        tolerance = int(match.group("tol")) if match.group("tol") else 0
        return PeakCountQuery(int(match.group("count")), count_tolerance=tolerance)

    match = _INTERVAL_RE.match(statement)
    if match:
        return IntervalQuery(float(match.group("target")), float(match.group("delta")))

    match = _STEEPNESS_RE.match(statement)
    if match:
        tolerance = float(match.group("tol")) if match.group("tol") else 0.0
        return SteepnessQuery(float(match.group("slope")), slope_tolerance=tolerance)

    match = _SHAPE_RE.match(statement)
    if match:
        if database is None:
            raise QueryError("SHAPE OF queries need the database to resolve the exemplar")
        sequence_id = int(match.group("sid"))
        duration_tol = float(match.group("dur")) if match.group("dur") else 0.1
        amplitude_tol = float(match.group("amp")) if match.group("amp") else 0.1
        exemplar = database.representation_of(sequence_id)
        return ShapeQuery(
            exemplar,
            duration_tolerance=duration_tol,
            amplitude_tolerance=amplitude_tol,
        )

    match = _NEAREST_RE.match(statement)
    if match:
        if database is None:
            raise QueryError("NEAREST queries need the database to resolve the exemplar")
        exemplar = database.representation_of(int(match.group("sid")))
        max_distance = (
            float(match.group("dist")) if match.group("dist") else float("inf")
        )
        return TopKQuery(exemplar, int(match.group("k")), max_distance=max_distance)

    match = _COUNT_RE.match(statement)
    if match:
        return CountQuery(
            match.group("motif"), collapse_runs=match.group("positional") is None
        )

    match = _POSITIONS_RE.match(statement)
    if match:
        return MotifQuery(
            match.group("motif"), collapse_runs=match.group("positional") is None
        )

    keyword = statement.split()[0].upper()
    known = (
        "PATTERN", "PEAKS", "INTERVAL", "STEEPNESS", "SHAPE", "NEAREST",
        "COUNT", "POSITIONS",
    )
    if keyword in known:
        raise QueryError(f"malformed {keyword} query: {statement!r}")
    raise QueryError(
        f"unknown query keyword {keyword!r}; expected one of {', '.join(known)}"
    )
