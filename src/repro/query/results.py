"""Query results: graded matches with per-dimension deviations.

The paper's generalized approximate queries produce results that are
either *exact* (members of the query's equivalence class) or
*approximate* (deviating within per-feature tolerances) — see
Section 2.2.  A :class:`QueryMatch` records the grade and every
dimension's measured deviation so callers can rank or explain results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tolerance import DimensionDeviation, MatchGrade

__all__ = ["QueryMatch"]


@dataclass(frozen=True)
class QueryMatch:
    """One matching sequence with its grade and deviations.

    ``positions`` is populated by position-reporting queries (e.g.
    :class:`~repro.query.queries.MotifQuery`): the ascending start
    offsets of every occurrence inside the matched sequence's symbol
    view.  Empty for every other query family.
    """

    sequence_id: int
    name: str
    grade: MatchGrade
    deviations: tuple[DimensionDeviation, ...] = ()
    positions: tuple[int, ...] = ()

    @property
    def is_exact(self) -> bool:
        return self.grade is MatchGrade.EXACT

    def deviation_in(self, dimension: str) -> "DimensionDeviation | None":
        for deviation in self.deviations:
            if deviation.dimension == dimension:
                return deviation
        return None

    @property
    def total_deviation(self) -> float:
        """Summed deviation across every dimension — the ranking metric.

        For a single-dimension distance query (top-k similarity) this is
        simply that distance; ``0.0`` for dimensionless pattern matches.
        """
        return sum(d.amount for d in self.deviations)

    def sort_key(self) -> tuple[int, float, int]:
        """Exact first, then by total deviation, then by id."""
        grade_rank = 0 if self.grade is MatchGrade.EXACT else 1
        return (grade_rank, self.total_deviation, self.sequence_id)
