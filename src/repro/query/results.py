"""Query results: graded matches with per-dimension deviations.

The paper's generalized approximate queries produce results that are
either *exact* (members of the query's equivalence class) or
*approximate* (deviating within per-feature tolerances) — see
Section 2.2.  A :class:`QueryMatch` records the grade and every
dimension's measured deviation so callers can rank or explain results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tolerance import DimensionDeviation, MatchGrade

__all__ = ["QueryMatch"]


@dataclass(frozen=True)
class QueryMatch:
    """One matching sequence with its grade and deviations."""

    sequence_id: int
    name: str
    grade: MatchGrade
    deviations: tuple[DimensionDeviation, ...] = ()

    @property
    def is_exact(self) -> bool:
        return self.grade is MatchGrade.EXACT

    def deviation_in(self, dimension: str) -> "DimensionDeviation | None":
        for deviation in self.deviations:
            if deviation.dimension == dimension:
                return deviation
        return None

    def sort_key(self) -> tuple[int, float, int]:
        """Exact first, then by total deviation, then by id."""
        grade_rank = 0 if self.grade is MatchGrade.EXACT else 1
        total = sum(d.amount for d in self.deviations)
        return (grade_rank, total, self.sequence_id)
