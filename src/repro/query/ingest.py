"""Batched ingest: buffer raw sequences, flush them columnarly.

Per-sequence :meth:`~repro.query.database.SequenceDatabase.insert`
pays the whole ingest stack — breaking, feature extraction, index
maintenance, a columnar append — once per call.  The
:class:`IngestPipeline` buffers incoming sequences and flushes whole
batches through :meth:`~repro.query.database.SequenceDatabase.insert_all`,
which is columnar end to end: one frontier-batched
:meth:`~repro.segmentation.base.Breaker.break_indices_many` recursion
over every sequence in the batch at once, representations assembled
with prefilled ``segment_columns``, one slope classification and
symbol decode for the whole batch feeding both pattern-index views
through their bulk ``add_symbols_many`` entry points, peaks and R-R
intervals derived by :func:`~repro.core.features.find_peaks_many` and
posted as one inverted-index block, and one whole column-block append
per touched shard.  Flushed state is bit-identical to per-sequence
inserts; the per-call Python and NumPy overhead is paid per *batch*
instead of per sequence.

The pipeline is a thin stateful front-end — ids are assigned at flush
time (in arrival order), every flushed sequence is immediately
queryable, and nothing is buffered past a ``flush()``/``with`` exit.
"""

from __future__ import annotations

from types import TracebackType
from typing import TYPE_CHECKING, Iterable

from repro.core.errors import QueryError
from repro.core.sequence import Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.database import SequenceDatabase

__all__ = ["IngestPipeline"]


class IngestPipeline:
    """Buffering front-end over a database's batched ingest.

    Parameters
    ----------
    database:
        The target database.
    batch_size:
        Buffered sequences per automatic flush; larger batches amortize
        more per-call overhead at the cost of ingest latency (a
        sequence is not queryable until its batch flushes).
    """

    def __init__(self, database: "SequenceDatabase", batch_size: int = 256) -> None:
        if batch_size < 1:
            raise QueryError(f"batch size must be at least 1, got {batch_size}")
        self.database = database
        self.batch_size = int(batch_size)
        self._buffer: "list[Sequence]" = []
        self._ingested_ids: "list[int]" = []

    @property
    def pending(self) -> int:
        """Sequences buffered but not yet flushed (not yet queryable)."""
        return len(self._buffer)

    @property
    def ingested_ids(self) -> "list[int]":
        """Ids assigned so far, in arrival order (flushed batches only)."""
        return list(self._ingested_ids)

    def add(self, sequence: Sequence) -> None:
        """Buffer one sequence; flushes automatically at ``batch_size``."""
        self._buffer.append(sequence)
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def add_many(self, sequences: "Iterable[Sequence]") -> None:
        """Buffer many sequences, flushing whenever a batch fills.

        One bulk buffer extension plus whole-batch flushes — no
        per-sequence Python call, no per-item flush check.  Batches are
        sliced at exactly ``batch_size``, so the flushed groups (and
        therefore the assigned ids) are identical to looping
        :meth:`add`.
        """
        buffer = self._buffer
        buffer.extend(
            sequences if isinstance(sequences, list) else list(sequences)
        )
        batch_size = self.batch_size
        while len(buffer) >= batch_size:
            batch = buffer[:batch_size]
            del buffer[:batch_size]
            self._ingested_ids.extend(self.database.insert_all(batch))

    def add_block(
        self,
        values: "Iterable[Iterable[float]]",
        times: "Iterable[float] | None" = None,
        names: "Iterable[str] | None" = None,
    ) -> None:
        """Buffer a whole 2-D value block of same-grid sequences.

        The columnar front door: the block is validated once and its
        rows are wrapped as zero-copy :class:`Sequence` views
        (:meth:`Sequence.from_block`) before flowing through
        :meth:`add_many` — skipping the per-sequence array copy and
        validation the scalar path pays per :meth:`add`.
        """
        self.add_many(Sequence.from_block(values, times=times, names=names))

    def flush(self) -> "list[int]":
        """Ingest everything buffered as one batch; returns its new ids."""
        if not self._buffer:
            return []
        batch, self._buffer = self._buffer, []
        sequence_ids = self.database.insert_all(batch)
        self._ingested_ids.extend(sequence_ids)
        return sequence_ids

    def __enter__(self) -> "IngestPipeline":
        return self

    def __exit__(
        self,
        exc_type: "type[BaseException] | None",
        exc: "BaseException | None",
        tb: "TracebackType | None",
    ) -> None:
        # Flush only on a clean exit: after an exception the buffer's
        # provenance is unclear, and silently ingesting it would hide
        # the failure.
        if exc_type is None:
            self.flush()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(batch_size={self.batch_size}, "
            f"pending={self.pending}, ingested={len(self._ingested_ids)})"
        )
