"""Compact binary codec for sequences and representations.

The paper's storage argument is quantitative — "500-point sequences are
represented by about 20 function segments ... about a factor of 8
reduction in space" — so the library needs an actual byte-level format
to measure.  The codec is self-describing and versioned:

* raw sequences: header + float64 samples (times stored only when the
  grid is non-uniform);
* representations: header + per-segment records of
  ``(family tag, parameter block, index window, endpoint pairs)``.

Decoding reconstructs real function objects through a family registry,
so a round-tripped representation answers queries identically.
"""

from __future__ import annotations

import hashlib
import json
import struct

import numpy as np

from repro.core.errors import StorageError
from repro.core.representation import FunctionSeriesRepresentation
from repro.core.segment import Segment
from repro.core.sequence import Sequence
from repro.functions.base import FittedFunction
from repro.functions.bezier import CubicBezier
from repro.functions.linear import LinearFunction
from repro.functions.polynomial import PolynomialFunction
from repro.functions.sinusoid import Sinusoid

__all__ = [
    "encode_sequence",
    "decode_sequence",
    "encode_representation",
    "decode_representation",
    "encode_cache_snapshot",
    "decode_cache_snapshot",
    "raw_size_bytes",
    "representation_size_bytes",
]

_MAGIC_SEQ = b"RSQ1"
_MAGIC_REP = b"RRP1"
_MAGIC_CACHE = b"RCS1"

_FAMILY_TAGS = {"linear": 1, "poly": 2, "sin": 3, "bezier": 4}
_TAG_FAMILIES = {v: k for k, v in _FAMILY_TAGS.items()}


def _function_from(family: str, params: tuple[float, ...]) -> FittedFunction:
    if family == "linear":
        if len(params) != 2:
            raise StorageError(f"linear function needs 2 parameters, got {len(params)}")
        return LinearFunction(*params)
    if family == "poly":
        return PolynomialFunction(params)
    if family == "sin":
        if len(params) != 4:
            raise StorageError(f"sinusoid needs 4 parameters, got {len(params)}")
        return Sinusoid(*params)
    if family == "bezier":
        if len(params) != 8:
            raise StorageError(f"bezier needs 8 parameters, got {len(params)}")
        return CubicBezier(np.asarray(params, dtype=float).reshape(4, 2))
    raise StorageError(f"unknown function family {family!r}")


# ----------------------------------------------------------------------
# Sequences
# ----------------------------------------------------------------------


def encode_sequence(sequence: Sequence) -> bytes:
    """Serialize a raw sequence.

    Uniform sequences store ``(start, step)`` instead of the full time
    axis — the honest baseline for the compression comparison, since
    sampled instruments emit uniform grids.
    """
    name_bytes = sequence.name.encode("utf-8")
    uniform = sequence.is_uniform()
    parts = [
        _MAGIC_SEQ,
        struct.pack("<H", len(name_bytes)),
        name_bytes,
        struct.pack("<?", uniform),
        struct.pack("<I", len(sequence)),
    ]
    if uniform:
        # Uniformity was just established; read the step directly
        # instead of paying sampling_step()'s second is_uniform() check.
        step = float(sequence.times[1] - sequence.times[0]) if len(sequence) > 1 else 1.0
        parts.append(struct.pack("<dd", sequence.start_time, step))
    else:
        parts.append(sequence.times.astype("<f8").tobytes())
    parts.append(sequence.values.astype("<f8").tobytes())
    return b"".join(parts)


def decode_sequence(blob: bytes) -> Sequence:
    view = memoryview(blob)
    if bytes(view[:4]) != _MAGIC_SEQ:
        raise StorageError("not a serialized sequence (bad magic)")
    offset = 4
    (name_len,) = struct.unpack_from("<H", view, offset)
    offset += 2
    name = bytes(view[offset : offset + name_len]).decode("utf-8")
    offset += name_len
    (uniform,) = struct.unpack_from("<?", view, offset)
    offset += 1
    (n,) = struct.unpack_from("<I", view, offset)
    offset += 4
    if uniform:
        start, step = struct.unpack_from("<dd", view, offset)
        offset += 16
        times = start + step * np.arange(n, dtype=float)
    else:
        times = np.frombuffer(view, dtype="<f8", count=n, offset=offset).copy()
        offset += 8 * n
    values = np.frombuffer(view, dtype="<f8", count=n, offset=offset).copy()
    return Sequence(times, values, name=name)


def raw_size_bytes(sequence: Sequence) -> int:
    """Encoded size of the raw sequence."""
    return len(encode_sequence(sequence))


# ----------------------------------------------------------------------
# Representations
# ----------------------------------------------------------------------


def encode_representation(representation: FunctionSeriesRepresentation) -> bytes:
    name_bytes = representation.name.encode("utf-8")
    kind_bytes = representation.curve_kind.encode("utf-8")
    parts = [
        _MAGIC_REP,
        struct.pack("<H", len(name_bytes)),
        name_bytes,
        struct.pack("<H", len(kind_bytes)),
        kind_bytes,
        struct.pack("<Id", representation.source_length, representation.epsilon),
        struct.pack("<I", len(representation)),
    ]
    segments = representation.segments
    if all(type(segment.function) is LinearFunction for segment in segments):
        # The dominant case — every segment a 2-parameter line — packs
        # the whole segment table with one struct call.  "<" disables
        # alignment padding, so the fused format yields the same bytes
        # as packing field by field.
        linear_tag = _FAMILY_TAGS["linear"]
        fields: "list[float]" = []
        for segment in segments:
            function = segment.function
            fields += (
                linear_tag,
                2,
                function.slope,
                function.intercept,
                segment.start_index,
                segment.end_index,
                segment.start_point[0],
                segment.start_point[1],
                segment.end_point[0],
                segment.end_point[1],
            )
        parts.append(struct.pack("<" + "BH2dIIdddd" * len(segments), *fields))
        return b"".join(parts)
    for segment in segments:
        family = segment.function.family
        if family not in _FAMILY_TAGS:
            raise StorageError(f"family {family!r} has no storage tag")
        params = segment.function.parameters()
        parts.append(
            struct.pack(
                f"<BH{len(params)}dIIdddd",
                _FAMILY_TAGS[family],
                len(params),
                *params,
                segment.start_index,
                segment.end_index,
                segment.start_point[0],
                segment.start_point[1],
                segment.end_point[0],
                segment.end_point[1],
            )
        )
    return b"".join(parts)


def decode_representation(blob: bytes) -> FunctionSeriesRepresentation:
    view = memoryview(blob)
    if bytes(view[:4]) != _MAGIC_REP:
        raise StorageError("not a serialized representation (bad magic)")
    offset = 4
    (name_len,) = struct.unpack_from("<H", view, offset)
    offset += 2
    name = bytes(view[offset : offset + name_len]).decode("utf-8")
    offset += name_len
    (kind_len,) = struct.unpack_from("<H", view, offset)
    offset += 2
    curve_kind = bytes(view[offset : offset + kind_len]).decode("utf-8")
    offset += kind_len
    source_length, epsilon = struct.unpack_from("<Id", view, offset)
    offset += 12
    (n_segments,) = struct.unpack_from("<I", view, offset)
    offset += 4
    segments = []
    for _ in range(n_segments):
        tag, n_params = struct.unpack_from("<BH", view, offset)
        offset += 3
        params = struct.unpack_from(f"<{n_params}d", view, offset)
        offset += 8 * n_params
        start_index, end_index = struct.unpack_from("<II", view, offset)
        offset += 8
        st, sv, et, ev = struct.unpack_from("<dddd", view, offset)
        offset += 32
        family = _TAG_FAMILIES.get(tag)
        if family is None:
            raise StorageError(f"unknown family tag {tag}")
        segments.append(
            Segment(
                function=_function_from(family, tuple(params)),
                start_index=start_index,
                end_index=end_index,
                start_point=(st, sv),
                end_point=(et, ev),
            )
        )
    return FunctionSeriesRepresentation(
        segments,
        name=name,
        source_length=source_length,
        curve_kind=curve_kind,
        epsilon=epsilon,
    )


def representation_size_bytes(representation: FunctionSeriesRepresentation) -> int:
    """Encoded size of a representation."""
    return len(encode_representation(representation))


# ----------------------------------------------------------------------
# Result-cache snapshots
# ----------------------------------------------------------------------


def encode_cache_snapshot(payload: dict) -> bytes:
    """Serialize a plan-result-cache snapshot (see storage.catalog).

    Magic + SHA-1 checksum + canonical JSON body.  The payload is a
    JSON-safe dict of primitives (fingerprint keys become nested lists;
    infinite deviation amounts round-trip through Python's JSON
    ``Infinity`` extension).  The checksum makes tampering or torn
    writes loudly detectable at load time.
    """
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return _MAGIC_CACHE + hashlib.sha1(body).digest() + body


def decode_cache_snapshot(blob: bytes) -> dict:
    """Verify and parse a cache snapshot blob.

    Raises :class:`~repro.core.errors.StorageError` on a bad magic,
    a checksum mismatch (corrupted/mutated file) or malformed JSON.
    """
    if len(blob) < 24 or bytes(blob[:4]) != _MAGIC_CACHE:
        raise StorageError("not a serialized cache snapshot (bad magic)")
    checksum = bytes(blob[4:24])
    body = bytes(blob[24:])
    if hashlib.sha1(body).digest() != checksum:
        raise StorageError("cache snapshot corrupted (checksum mismatch)")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageError(f"cache snapshot unreadable: {exc}") from exc
    if not isinstance(payload, dict):
        raise StorageError("cache snapshot body is not an object")
    return payload
