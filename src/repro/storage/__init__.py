"""Storage substrates: binary codec, archival/local tiers with latency
accounting, and the multi-representation catalog."""

from repro.storage.archive import AccessLog, ArchivalStore, LocalStore
from repro.storage.catalog import RepresentationCatalog
from repro.storage.serialization import (
    decode_representation,
    decode_sequence,
    encode_representation,
    encode_sequence,
    raw_size_bytes,
    representation_size_bytes,
)

__all__ = [
    "ArchivalStore",
    "LocalStore",
    "AccessLog",
    "RepresentationCatalog",
    "encode_sequence",
    "decode_sequence",
    "encode_representation",
    "decode_representation",
    "raw_size_bytes",
    "representation_size_bytes",
]
