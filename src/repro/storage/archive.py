"""Archival raw store with a latency model (the paper's tape motivation).

"Often this data is archived off-line on very slow storage media (e.g.
magnetic tape) in a remote central site ... obtaining raw seismic data
can take several days" (Section 1).  We "don't propose discarding the
actual sequences.  They can be stored archivally and used when finer
resolution is needed" (Section 3).

:class:`ArchivalStore` keeps the raw bytes and *accounts for* (never
actually sleeps through) the access latency of such media, so the
benchmarks can contrast raw-archive access against local representation
access in simulated seconds.  :class:`LocalStore` models the fast local
tier the compact representations live on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.errors import StorageError
from repro.core.representation import FunctionSeriesRepresentation
from repro.core.sequence import Sequence
from repro.storage.serialization import (
    decode_representation,
    decode_sequence,
    encode_representation,
    encode_sequence,
)

__all__ = ["AccessLog", "ArchivalStore", "LocalStore"]


@dataclass
class AccessLog:
    """Running totals of simulated storage traffic."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    simulated_seconds: float = 0.0

    def record(self, kind: str, n_bytes: int, seconds: float) -> None:
        if kind == "read":
            self.reads += 1
            self.bytes_read += n_bytes
        else:
            self.writes += 1
            self.bytes_written += n_bytes
        self.simulated_seconds += seconds


@dataclass
class _LatencyModel:
    """``seconds = seek_seconds + bytes / bandwidth``."""

    seek_seconds: float
    bandwidth_bytes_per_s: float

    def cost(self, n_bytes: int) -> float:
        return self.seek_seconds + n_bytes / self.bandwidth_bytes_per_s


class ArchivalStore:
    """Slow, remote raw-sequence archive.

    Defaults model an archival tape robot: minutes of mount/seek
    latency and modest streaming bandwidth.  All costs are accounted in
    :attr:`log`, not slept through.
    """

    def __init__(self, seek_seconds: float = 120.0, bandwidth_bytes_per_s: float = 2e6) -> None:
        if seek_seconds < 0 or bandwidth_bytes_per_s <= 0:
            raise StorageError("invalid latency model")
        self._model = _LatencyModel(seek_seconds, bandwidth_bytes_per_s)
        self._blobs: dict[int, bytes] = {}
        self.log = AccessLog()

    def store(self, sequence_id: int, sequence: Sequence) -> int:
        """Archive a raw sequence; returns its encoded size."""
        if sequence_id in self._blobs:
            raise StorageError(f"sequence {sequence_id} already archived")
        blob = encode_sequence(sequence)
        self._blobs[sequence_id] = blob
        self.log.record("write", len(blob), self._model.cost(len(blob)))
        return len(blob)

    def retrieve(self, sequence_id: int) -> Sequence:
        """Fetch raw data back — the expensive "finer resolution" path."""
        try:
            blob = self._blobs[sequence_id]
        except KeyError as exc:
            raise StorageError(f"sequence {sequence_id} not archived") from exc
        self.log.record("read", len(blob), self._model.cost(len(blob)))
        return decode_sequence(blob)

    def peek(self, sequence_id: int) -> Sequence:
        """Read raw data without latency accounting.

        The streaming append path's internal read: the writer that
        extends a live sequence is modelled as holding its tail warm,
        so consulting the archived prefix is not a tape mount.  Query
        paths must keep using :meth:`retrieve` — their raw access *is*
        the cost the paper's architecture avoids.
        """
        try:
            return decode_sequence(self._blobs[sequence_id])
        except KeyError as exc:
            raise StorageError(f"sequence {sequence_id} not archived") from exc

    def replace(self, sequence_id: int, sequence: Sequence) -> int:
        """Overwrite an archived sequence with its extended form.

        The streaming tail write: only the *net new* bytes are
        accounted (appending to an archival file streams the tail, not
        the whole history).  Returns the new encoded size.
        """
        try:
            old_blob = self._blobs[sequence_id]
        except KeyError as exc:
            raise StorageError(f"sequence {sequence_id} not archived") from exc
        blob = encode_sequence(sequence)
        self._blobs[sequence_id] = blob
        appended = max(len(blob) - len(old_blob), 0)
        self.log.record("write", appended, self._model.cost(appended))
        return len(blob)

    def __contains__(self, sequence_id: int) -> bool:
        return sequence_id in self._blobs

    def __len__(self) -> int:
        return len(self._blobs)

    def total_bytes(self) -> int:
        return sum(len(b) for b in self._blobs.values())

    def content_digest(self) -> str:
        """SHA-1 over every archived ``(id, blob)`` pair, id-ordered.

        No latency is accounted — this is bookkeeping (cache-snapshot
        validation), not a data access.
        """
        digest = hashlib.sha1()
        for sequence_id in sorted(self._blobs):
            digest.update(str(sequence_id).encode("utf-8"))
            digest.update(self._blobs[sequence_id])
        return digest.hexdigest()


class LocalStore:
    """Fast local tier holding the compact representations."""

    def __init__(self, seek_seconds: float = 0.005, bandwidth_bytes_per_s: float = 2e8) -> None:
        if seek_seconds < 0 or bandwidth_bytes_per_s <= 0:
            raise StorageError("invalid latency model")
        self._model = _LatencyModel(seek_seconds, bandwidth_bytes_per_s)
        self._blobs: dict[tuple[int, str], bytes] = {}
        self.log = AccessLog()

    def store(self, sequence_id: int, representation: FunctionSeriesRepresentation, tag: str = "default") -> int:
        key = (sequence_id, tag)
        if key in self._blobs:
            raise StorageError(f"representation {key} already stored")
        blob = encode_representation(representation)
        self._blobs[key] = blob
        self.log.record("write", len(blob), self._model.cost(len(blob)))
        return len(blob)

    def retrieve(self, sequence_id: int, tag: str = "default") -> FunctionSeriesRepresentation:
        try:
            blob = self._blobs[(sequence_id, tag)]
        except KeyError as exc:
            raise StorageError(f"representation {(sequence_id, tag)} not stored") from exc
        self.log.record("read", len(blob), self._model.cost(len(blob)))
        return decode_representation(blob)

    def evict(self, sequence_id: int) -> int:
        """Drop every stored variant of one sequence; returns bytes freed.

        Unlike the archival tier, the local tier is mutable: when a
        sequence is deleted from the database its representation blobs
        are reclaimed so storage accounting reflects only live data.
        Evicting an unknown sequence frees nothing and is not an error.
        """
        keys = [key for key in self._blobs if key[0] == sequence_id]
        return sum(len(self._blobs.pop(key)) for key in keys)

    def __contains__(self, key: "tuple[int, str] | int") -> bool:
        if isinstance(key, tuple):
            return key in self._blobs
        return any(sid == key for sid, __ in self._blobs)

    def __len__(self) -> int:
        return len(self._blobs)

    def total_bytes(self) -> int:
        return sum(len(b) for b in self._blobs.values())
