"""Catalog of multiple representations per sequence, plus engine-state
persistence.

"Since our representation is quite compact, it would be possible to
compute and store multiple representations and indices for the same
data.  This would be useful for simultaneously supporting several
common query forms" (Section 5.2).  The catalog names each
representation variant (e.g. ``"regression-eps0.5"`` vs
``"bezier-eps2"``) and tracks per-variant byte totals.

The module also persists the *warm* plan-result cache across restarts
(:func:`save_result_cache` / :func:`load_result_cache`): a snapshot
records every cache entry valid at save time together with a content
digest of the columnar store and the journal's rebase epoch.  A
restarted database that rebuilds to the same data adopts the entries
warm — ``db.query()`` answers without running a single stage — while a
database whose files mutated underneath the snapshot adopts nothing
(the digest disagrees) and a corrupted snapshot fails loudly on its
checksum.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.errors import StorageError
from repro.core.representation import FunctionSeriesRepresentation
from repro.storage.serialization import (
    decode_cache_snapshot,
    encode_cache_snapshot,
    representation_size_bytes,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.database import SequenceDatabase
    from repro.query.results import QueryMatch

__all__ = [
    "RepresentationCatalog",
    "engine_state_digest",
    "save_result_cache",
    "load_result_cache",
]


class RepresentationCatalog:
    """Named representation variants keyed by ``(sequence_id, variant)``."""

    def __init__(self) -> None:
        self._entries: dict[int, dict[str, FunctionSeriesRepresentation]] = {}

    def put(self, sequence_id: int, variant: str, representation: FunctionSeriesRepresentation) -> None:
        if not variant:
            raise StorageError("variant name must be non-empty")
        slots = self._entries.setdefault(sequence_id, {})
        if variant in slots:
            raise StorageError(f"variant {variant!r} already exists for sequence {sequence_id}")
        slots[variant] = representation

    def get(self, sequence_id: int, variant: str) -> FunctionSeriesRepresentation:
        try:
            return self._entries[sequence_id][variant]
        except KeyError as exc:
            raise StorageError(f"no {variant!r} representation for sequence {sequence_id}") from exc

    def variants_of(self, sequence_id: int) -> list[str]:
        return sorted(self._entries.get(sequence_id, {}))

    def remove_sequence(self, sequence_id: int) -> list[str]:
        """Drop every variant of one sequence; returns the variant names.

        Removing an uncatalogued sequence is a no-op returning ``[]``.
        """
        return sorted(self._entries.pop(sequence_id, {}))

    def sequences_with(self, variant: str) -> list[int]:
        return sorted(sid for sid, slots in self._entries.items() if variant in slots)

    def __contains__(self, key: "tuple[int, str]") -> bool:
        sequence_id, variant = key
        return variant in self._entries.get(sequence_id, {})

    def __len__(self) -> int:
        return sum(len(slots) for slots in self._entries.values())

    def total_bytes(self, variant: "str | None" = None) -> int:
        """Encoded byte total, overall or for one variant."""
        total = 0
        for slots in self._entries.values():
            for name, rep in slots.items():
                if variant is None or name == variant:
                    total += representation_size_bytes(rep)
        return total


# ----------------------------------------------------------------------
# Result-cache persistence
# ----------------------------------------------------------------------

_SNAPSHOT_VERSION = 1


def engine_state_digest(database: "SequenceDatabase") -> str:
    """Content digest of everything a cached answer depends on.

    Hashes the pipeline configuration, the sequence names (they ride
    along in every ``QueryMatch``), the raw-archive contents (the
    exemplar query grades against them) and, per shard, the columnar
    store's query-visible columns (ids, segment geometry and symbols,
    behaviour runs, R-R values, peak counts, source lengths).  Two
    databases with equal digests answer every fingerprinted query
    identically, so a cache snapshot taken on one is valid on the other
    — the contract :func:`load_result_cache` checks before adopting.
    """
    digest = hashlib.sha1()
    digest.update(
        repr(
            (
                database.theta,
                database.normalize,
                database.curve_kind,
                database.keep_raw,
                database.store.shard_count,
            )
        ).encode("utf-8")
    )
    for sequence_id in database.ids():
        digest.update(f"{sequence_id}={database.name_of(sequence_id)};".encode("utf-8"))
    digest.update(database.archive.content_digest().encode("utf-8"))
    for shard in database.store.shards():
        digest.update(shard.sequence_ids.tobytes())
        digest.update(shard.segment_counts.tobytes())
        digest.update(shard.segment_slopes.tobytes())
        digest.update(shard.segment_symbols.tobytes())
        digest.update(shard.segment_column("start_time").tobytes())
        digest.update(shard.segment_column("end_time").tobytes())
        digest.update(shard.segment_column("start_value").tobytes())
        digest.update(shard.segment_column("end_value").tobytes())
        digest.update(shard.behavior_symbols.tobytes())
        digest.update(shard.rr_values.tobytes())
        digest.update(shard.peak_counts.tobytes())
        digest.update(shard.source_lengths.tobytes())
    return digest.hexdigest()


def _encode_match(match: "QueryMatch") -> list:
    return [
        match.sequence_id,
        match.name,
        match.grade.value,
        [[d.dimension, d.amount, d.bound] for d in match.deviations],
    ]


def _decode_match(record: list) -> "QueryMatch":
    from repro.core.tolerance import DimensionDeviation, MatchGrade
    from repro.query.results import QueryMatch

    sequence_id, name, grade, deviations = record
    return QueryMatch(
        int(sequence_id),
        str(name),
        MatchGrade(grade),
        tuple(
            DimensionDeviation(str(dim), float(amount), float(bound))
            for dim, amount, bound in deviations
        ),
    )


def _key_to_tuple(obj):
    """JSON round-trip turns fingerprint tuples into lists; undo that."""
    if isinstance(obj, list):
        return tuple(_key_to_tuple(item) for item in obj)
    return obj


def save_result_cache(database: "SequenceDatabase", path: "str | Path") -> int:
    """Persist the database's warm cache entries to ``path``.

    Writes every entry valid at the current cache epoch, plus the
    content digest, the store's generation vector and the journal's
    rebase state (so a report can tell how far the snapshot's epoch
    was from compaction).  Returns the number of entries written.
    """
    epoch = database.cache_epoch()
    entries = database.result_cache.export_entries(epoch)
    payload = {
        "version": _SNAPSHOT_VERSION,
        "digest": engine_state_digest(database),
        "generation_vector": list(database.store.generation_vector()),
        "journal": database.store.journal_stats(),
        "entries": [
            {"key": list(key), "matches": [_encode_match(m) for m in matches]}
            for key, matches in entries
        ],
    }
    Path(path).write_bytes(encode_cache_snapshot(payload))
    return len(entries)


def load_result_cache(database: "SequenceDatabase", path: "str | Path") -> int:
    """Adopt a cache snapshot into ``database``, if it still applies.

    The snapshot's content digest is recomputed against the live store:
    on a match every persisted entry is adopted at the database's
    *current* epoch (the data is identical, so the answers are valid
    now — queries hit warm instead of starting cold); on a mismatch —
    the data mutated underneath the snapshot — nothing is adopted and 0
    is returned.  A corrupted or truncated snapshot raises
    :class:`~repro.core.errors.StorageError` from its checksum.
    """
    payload = decode_cache_snapshot(Path(path).read_bytes())
    if payload.get("version") != _SNAPSHOT_VERSION:
        raise StorageError(
            f"unsupported cache snapshot version {payload.get('version')!r}"
        )
    if payload.get("digest") != engine_state_digest(database):
        return 0
    epoch = database.cache_epoch()
    vector = database.store.generation_vector()
    adopted = []
    for entry in payload.get("entries", []):
        key = _key_to_tuple(entry["key"])
        matches = [_decode_match(record) for record in entry["matches"]]
        database.result_cache.store(key, epoch, matches, vector=vector)
        adopted.append(key)
    # store() may reject oversized entries or LRU-evict earlier ones
    # under the live cache's budgets; report only what actually stuck.
    return sum(1 for key in adopted if database.result_cache.peek(key, epoch))
