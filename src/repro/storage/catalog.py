"""Catalog of multiple representations per sequence.

"Since our representation is quite compact, it would be possible to
compute and store multiple representations and indices for the same
data.  This would be useful for simultaneously supporting several
common query forms" (Section 5.2).  The catalog names each
representation variant (e.g. ``"regression-eps0.5"`` vs
``"bezier-eps2"``) and tracks per-variant byte totals.
"""

from __future__ import annotations

from repro.core.errors import StorageError
from repro.core.representation import FunctionSeriesRepresentation
from repro.storage.serialization import representation_size_bytes

__all__ = ["RepresentationCatalog"]


class RepresentationCatalog:
    """Named representation variants keyed by ``(sequence_id, variant)``."""

    def __init__(self) -> None:
        self._entries: dict[int, dict[str, FunctionSeriesRepresentation]] = {}

    def put(self, sequence_id: int, variant: str, representation: FunctionSeriesRepresentation) -> None:
        if not variant:
            raise StorageError("variant name must be non-empty")
        slots = self._entries.setdefault(sequence_id, {})
        if variant in slots:
            raise StorageError(f"variant {variant!r} already exists for sequence {sequence_id}")
        slots[variant] = representation

    def get(self, sequence_id: int, variant: str) -> FunctionSeriesRepresentation:
        try:
            return self._entries[sequence_id][variant]
        except KeyError as exc:
            raise StorageError(f"no {variant!r} representation for sequence {sequence_id}") from exc

    def variants_of(self, sequence_id: int) -> list[str]:
        return sorted(self._entries.get(sequence_id, {}))

    def remove_sequence(self, sequence_id: int) -> list[str]:
        """Drop every variant of one sequence; returns the variant names.

        Removing an uncatalogued sequence is a no-op returning ``[]``.
        """
        return sorted(self._entries.pop(sequence_id, {}))

    def sequences_with(self, variant: str) -> list[int]:
        return sorted(sid for sid, slots in self._entries.items() if variant in slots)

    def __contains__(self, key: "tuple[int, str]") -> bool:
        sequence_id, variant = key
        return variant in self._entries.get(sequence_id, {})

    def __len__(self) -> int:
        return sum(len(slots) for slots in self._entries.values())

    def total_bytes(self, variant: "str | None" = None) -> int:
        """Encoded byte total, overall or for one variant."""
        total = 0
        for slots in self._entries.values():
            for name, rep in slots.items():
                if variant is None or name == variant:
                    total += representation_size_bytes(rep)
        return total
