"""Value-based approximate matching — the prior notion of Figures 1-5.

"The query defines an exact result in terms of specific values ... the
actual results are within some measurable distance from the desired
one."  A query sequence plus a tolerance ``epsilon`` defines a band
(paper Figure 1); a stored sequence matches if it never leaves the band
(the L-infinity metric) or if its overall Euclidean distance is within
``epsilon`` (the L2 metric used by the DFT line of work).

The point of carrying this baseline is the paper's negative result: a
value-based match accepts pointwise fluctuations of the exemplar
(Figure 4) but rejects *every* feature-preserving transformation of it
(Figure 5) — reproduced in ``benchmarks/test_fig3_5_valuebased_vs_transforms.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import QueryError
from repro.core.sequence import Sequence

__all__ = ["linf_distance", "l2_distance", "time_aligned_distance", "EpsilonMatcher"]


def _aligned_values(a: Sequence, b: Sequence) -> tuple[np.ndarray, np.ndarray]:
    if len(a) != len(b):
        raise QueryError(
            f"value-based distance needs equal lengths, got {len(a)} and {len(b)}"
        )
    return a.values, b.values


def linf_distance(a: Sequence, b: Sequence) -> float:
    """Largest pointwise amplitude difference (the Figure 1 band)."""
    va, vb = _aligned_values(a, b)
    return float(np.abs(va - vb).max())


def l2_distance(a: Sequence, b: Sequence) -> float:
    """Euclidean distance between the value vectors."""
    va, vb = _aligned_values(a, b)
    diff = va - vb
    return float(np.sqrt(np.dot(diff, diff)))


def time_aligned_distance(exemplar: Sequence, candidate: Sequence, metric: str = "linf") -> float:
    """Distance after sampling the candidate at the exemplar's clock times.

    This is how a stored fixed-grid log is compared against a query
    exemplar in the paper's Figures 3-5: both are read at the same
    clock positions (hours 0..24), so transformations that move the
    pattern in time produce genuinely different values.  The candidate
    is linearly interpolated (and clamped at its ends).
    """
    resampled = np.interp(exemplar.times, candidate.times, candidate.values)
    diff = exemplar.values - resampled
    if metric == "linf":
        return float(np.abs(diff).max())
    if metric == "l2":
        return float(np.sqrt(np.dot(diff, diff)))
    raise QueryError(f"unknown metric {metric!r}")


class EpsilonMatcher:
    """The value-based query of paper Figure 1.

    Parameters
    ----------
    exemplar:
        The query sequence (the solid curve).
    epsilon:
        The band half-width (the dashed curves).
    metric:
        ``"linf"`` for the pointwise band, ``"l2"`` for Euclidean.
    align:
        ``"index"`` compares values position by position (the classic
        fixed-length formulation; candidates of a different length are
        rejected outright).  ``"time"`` samples the candidate at the
        exemplar's clock times first, which is how the paper's 24-hour
        temperature grids are compared.
    """

    def __init__(
        self, exemplar: Sequence, epsilon: float, metric: str = "linf", align: str = "index"
    ) -> None:
        if epsilon < 0:
            raise QueryError("epsilon must be non-negative")
        if metric not in ("linf", "l2"):
            raise QueryError(f"unknown metric {metric!r}")
        if align not in ("index", "time"):
            raise QueryError(f"unknown alignment {align!r}")
        self.exemplar = exemplar
        self.epsilon = float(epsilon)
        self.metric = metric
        self.align = align

    def distance(self, candidate: Sequence) -> float:
        if self.align == "time":
            return time_aligned_distance(self.exemplar, candidate, self.metric)
        if self.metric == "linf":
            return linf_distance(self.exemplar, candidate)
        return l2_distance(self.exemplar, candidate)

    def matches(self, candidate: Sequence) -> bool:
        """Whether the candidate stays within the epsilon band/ball.

        In index alignment, candidates of a different length cannot be
        compared value-by-value at all — they are rejected, which is
        precisely the failure mode the paper's dilation/contraction
        examples exhibit.
        """
        if self.align == "index" and len(candidate) != len(self.exemplar):
            return False
        return self.distance(candidate) <= self.epsilon

    def filter(self, candidates: "list[Sequence]") -> "list[Sequence]":
        return [c for c in candidates if self.matches(c)]
