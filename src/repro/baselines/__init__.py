"""Baseline matchers the paper compares against (Sections 1 and 3)."""

from repro.baselines.dft import (
    FIndex,
    SubsequenceIndex,
    dft_features,
    dominant_frequency,
    feature_distance,
)
from repro.baselines.euclidean import EpsilonMatcher, l2_distance, linf_distance
from repro.baselines.shift_scale import ShiftScaleMatcher, normalized_distance

__all__ = [
    "EpsilonMatcher",
    "linf_distance",
    "l2_distance",
    "FIndex",
    "SubsequenceIndex",
    "dft_features",
    "feature_distance",
    "dominant_frequency",
    "ShiftScaleMatcher",
    "normalized_distance",
]
