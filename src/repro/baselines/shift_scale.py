"""Shift/scale-invariant matching — the [GK95] / [ALSS95] comparator.

The intermediate notion between raw value matching and the paper's
feature-based similarity: normalize away amplitude translation and
scaling before comparing values.  [GK95] extends the DFT approach with
shifting and scaling of sequence amplitude; [ALSS95] does the same with
the L-infinity metric and no DFT.  Both still compare values position
by position, so time dilation and contraction defeat them — the gap the
paper's transformation-closure notion fills.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import QueryError
from repro.core.sequence import Sequence
from repro.preprocessing.normalization import znormalize

__all__ = ["normalized_distance", "ShiftScaleMatcher"]


def normalized_distance(a: Sequence, b: Sequence, metric: str = "linf") -> float:
    """Distance between z-normalized value vectors."""
    if len(a) != len(b):
        raise QueryError("normalized distance needs equal lengths")
    va = znormalize(a).values
    vb = znormalize(b).values
    if metric == "linf":
        return float(np.abs(va - vb).max())
    if metric == "l2":
        diff = va - vb
        return float(np.sqrt(np.dot(diff, diff)))
    raise QueryError(f"unknown metric {metric!r}")


class ShiftScaleMatcher:
    """Epsilon matching modulo amplitude shift and scale."""

    def __init__(self, exemplar: Sequence, epsilon: float, metric: str = "linf") -> None:
        if epsilon < 0:
            raise QueryError("epsilon must be non-negative")
        self.exemplar = exemplar
        self.epsilon = float(epsilon)
        self.metric = metric

    def matches(self, candidate: Sequence) -> bool:
        if len(candidate) != len(self.exemplar):
            return False
        return normalized_distance(self.exemplar, candidate, self.metric) <= self.epsilon

    def filter(self, candidates: "list[Sequence]") -> "list[Sequence]":
        return [c for c in candidates if self.matches(c)]
