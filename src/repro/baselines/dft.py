"""DFT-based similarity search — the [AFS93] / [FRM94] comparator.

The related work the paper positions itself against: map (sub)sequences
to the first ``k`` coefficients of the Discrete Fourier Transform, index
the resulting k-dimensional points, and answer epsilon-range queries in
feature space.  With the orthonormal DFT, Parseval's theorem gives the
*lower-bounding lemma*: distance in the truncated feature space never
exceeds true Euclidean distance, so the index returns no false
dismissals (candidates are verified against the raw data).

The paper's criticism (Section 3), reproduced in
``benchmarks/test_baseline_dft_dilation.py``: proximity of main
frequencies cannot detect similarity under dilation or contraction —
"none of the sequences of Figure 5 matches the sequence given in
Figure 3 if main frequencies are compared".

``FIndex`` implements whole-sequence matching ([AFS93]) and
``SubsequenceIndex`` the FRM-style sliding-window variant.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import QueryError
from repro.core.sequence import Sequence

__all__ = [
    "dft_features",
    "feature_distance",
    "dominant_frequency",
    "FIndex",
    "SubsequenceIndex",
]


def dft_features(values: np.ndarray, k: int) -> np.ndarray:
    """First ``k`` orthonormal DFT coefficients as a real vector.

    Each complex coefficient contributes its real and imaginary parts,
    so the result has ``2k`` entries.  The ``1/sqrt(n)`` normalization
    makes the full transform an isometry (Parseval), which is what the
    lower-bounding guarantee rests on.
    """
    if k < 1:
        raise QueryError("k must be at least 1")
    values = np.asarray(values, dtype=float)
    n = len(values)
    coeffs = np.fft.fft(values) / np.sqrt(n)
    k = min(k, n)
    first = coeffs[:k]
    return np.concatenate([first.real, first.imag])


def feature_distance(fa: np.ndarray, fb: np.ndarray) -> float:
    """Euclidean distance in DFT-feature space."""
    if fa.shape != fb.shape:
        raise QueryError("feature vectors must have equal length")
    diff = fa - fb
    return float(np.sqrt(np.dot(diff, diff)))


def dominant_frequency(sequence: Sequence) -> float:
    """The non-DC frequency with the largest spectral magnitude.

    Expressed in cycles per time unit using the sequence's uniform
    sampling step.  This is the "main frequency" whose comparison the
    paper shows to be dilation-blind.
    """
    values = sequence.values - sequence.values.mean()
    step = sequence.sampling_step()
    spectrum = np.abs(np.fft.rfft(values))
    freqs = np.fft.rfftfreq(len(values), d=step)
    if len(spectrum) < 2:
        return 0.0
    peak = int(spectrum[1:].argmax()) + 1
    return float(freqs[peak])


class FIndex:
    """Whole-sequence epsilon matching in truncated DFT space ([AFS93]).

    Sequences must share a common length ``n`` (the original work maps
    everything onto fixed-length windows for the same reason).
    """

    def __init__(self, k: int = 3) -> None:
        if k < 1:
            raise QueryError("k must be at least 1")
        self.k = int(k)
        self._features: dict[int, np.ndarray] = {}
        self._raw: dict[int, Sequence] = {}
        self._length: "int | None" = None

    def add(self, sequence_id: int, sequence: Sequence) -> None:
        if self._length is None:
            self._length = len(sequence)
        elif len(sequence) != self._length:
            raise QueryError(
                f"FIndex holds length-{self._length} sequences; got {len(sequence)}"
            )
        if sequence_id in self._features:
            raise QueryError(f"sequence {sequence_id} already indexed")
        self._features[sequence_id] = dft_features(sequence.values, self.k)
        self._raw[sequence_id] = sequence

    def __len__(self) -> int:
        return len(self._features)

    def candidates(self, query: Sequence, epsilon: float) -> list[int]:
        """Ids passing the feature-space filter (no false dismissals)."""
        if epsilon < 0:
            raise QueryError("epsilon must be non-negative")
        q = dft_features(query.values, self.k)
        return sorted(
            sid for sid, f in self._features.items() if feature_distance(q, f) <= epsilon
        )

    def query(self, query: Sequence, epsilon: float) -> list[int]:
        """Ids whose true Euclidean distance is within epsilon.

        Feature-space filtering followed by exact verification — the
        classic two-phase plan whose correctness the lower-bounding
        lemma guarantees.
        """
        hits = []
        for sid in self.candidates(query, epsilon):
            raw = self._raw[sid]
            diff = raw.values - query.values
            if float(np.sqrt(np.dot(diff, diff))) <= epsilon:
                hits.append(sid)
        return hits


class SubsequenceIndex:
    """FRM-style subsequence matching over sliding windows.

    Every length-``window`` subsequence of every stored sequence is
    mapped to its DFT features ("indexing over all fixed-length
    subsequences of each sequence" — the design the paper argues wastes
    effort on uninteresting subsequences, but implemented faithfully as
    the comparator).
    """

    def __init__(self, window: int, k: int = 3) -> None:
        if window < 2:
            raise QueryError("window must cover at least two samples")
        self.window = int(window)
        self.k = int(k)
        #: (sequence_id, offset) -> feature vector
        self._entries: list[tuple[int, int, np.ndarray]] = []
        self._raw: dict[int, Sequence] = {}

    def add(self, sequence_id: int, sequence: Sequence) -> None:
        if sequence_id in self._raw:
            raise QueryError(f"sequence {sequence_id} already indexed")
        if len(sequence) < self.window:
            raise QueryError("sequence shorter than the window")
        self._raw[sequence_id] = sequence
        values = sequence.values
        for offset in range(len(values) - self.window + 1):
            feats = dft_features(values[offset : offset + self.window], self.k)
            self._entries.append((sequence_id, offset, feats))

    def window_count(self) -> int:
        return len(self._entries)

    def query(self, pattern: Sequence, epsilon: float) -> list[tuple[int, int]]:
        """``(sequence_id, offset)`` pairs truly within epsilon (L2)."""
        if len(pattern) != self.window:
            raise QueryError(f"pattern must have window length {self.window}")
        q = dft_features(pattern.values, self.k)
        matches = []
        for sid, offset, feats in self._entries:
            if feature_distance(q, feats) > epsilon:
                continue
            raw = self._raw[sid].values[offset : offset + self.window]
            diff = raw - pattern.values
            if float(np.sqrt(np.dot(diff, diff))) <= epsilon:
                matches.append((sid, offset))
        return sorted(matches)
