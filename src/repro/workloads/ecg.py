"""Synthetic electrocardiogram workloads (substitute for Section 5.2 data).

The paper used "actual digitized segments of electrocardiograms"
(500 points each, amplitudes roughly -150..150, a handful of prominent
R peaks) fetched from ``avnode.wustl.edu`` — unavailable here, so this
generator produces the closest synthetic equivalent: P-QRS-T beat
morphology on a flat baseline with controllable R-R intervals, R
amplitudes, baseline wander and noise.  Everything the paper's
evaluation relies on (sharp dominant R spikes separated by bounded
intervals; smaller P/T bumps; a noisy baseline) is present, so the
breaker, the peak table (Table 1), the R-R sequences, and the inverted
index (Figure 10) all exercise the same code paths they would on real
ECGs.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import SequenceError
from repro.core.sequence import Sequence

__all__ = ["synthetic_ecg", "ecg_corpus", "figure9_pair"]


def _add_bump(values: np.ndarray, center: float, amplitude: float, width: float) -> None:
    """Add a Gaussian bump in-place (index units)."""
    n = len(values)
    lo = max(int(center - 4 * width), 0)
    hi = min(int(center + 4 * width) + 1, n)
    idx = np.arange(lo, hi)
    values[lo:hi] += amplitude * np.exp(-0.5 * ((idx - center) / width) ** 2)


def synthetic_ecg(
    rr_intervals: "list[int]",
    n_points: int = 500,
    r_amplitude: float = 150.0,
    first_beat: int = 40,
    noise: float = 1.5,
    baseline_wander: float = 3.0,
    seed: int = 0,
    name: str = "ecg",
) -> Sequence:
    """One ECG segment with R peaks at prescribed sample distances.

    Parameters
    ----------
    rr_intervals:
        Sample distances between consecutive R peaks.  With
        ``first_beat`` they determine every beat position; beats beyond
        ``n_points`` are dropped.
    r_amplitude:
        Height of the R spike (the paper's ECGs reach about 150).
    noise, baseline_wander:
        Additive measurement noise (uniform, ±noise) and a slow
        low-frequency drift of the given amplitude.
    """
    if first_beat < 10:
        raise SequenceError("first beat must leave room for its P wave")
    if any(rr <= 0 for rr in rr_intervals):
        raise SequenceError("R-R intervals must be positive")
    rng = np.random.default_rng(seed)
    values = np.zeros(n_points)

    beat_positions = [first_beat]
    for rr in rr_intervals:
        beat_positions.append(beat_positions[-1] + rr)
    beat_positions = [b for b in beat_positions if b < n_points - 10]

    for beat in beat_positions:
        # P wave: small (below typical breaking tolerance), before the R spike.
        _add_bump(values, beat - 20.0, 0.055 * r_amplitude, 4.0)
        # Q dip: slight negative deflection just before R.
        _add_bump(values, beat - 3.5, -0.1 * r_amplitude, 1.5)
        # R spike: tall and narrow — the feature the breaker must keep.
        _add_bump(values, float(beat), r_amplitude, 1.8)
        # S dip after R.
        _add_bump(values, beat + 4.0, -0.18 * r_amplitude, 2.0)
        # T wave: medium and broad — survives breaking but with gentle
        # slopes, so a slope threshold separates it from R flanks.
        _add_bump(values, beat + 22.0, 0.15 * r_amplitude, 7.0)

    if baseline_wander > 0:
        phase = rng.uniform(0.0, 2.0 * np.pi)
        cycles = rng.uniform(1.0, 2.5)
        values += baseline_wander * np.sin(
            2.0 * np.pi * cycles * np.arange(n_points) / n_points + phase
        )
    if noise > 0:
        values += rng.uniform(-noise, noise, size=n_points)

    return Sequence.from_values(values, name=name)


def figure9_pair(seed: int = 9) -> "tuple[Sequence, Sequence]":
    """Two 500-point ECG segments shaped like paper Figure 9.

    The top segment carries three to four prominent R peaks with R-R
    distances in the 130-180 sample range, the bottom one a denser
    rhythm — mirroring the paper's two examples whose R-R sequences were
    ``<135, 175, ...>``-like values.
    """
    top = synthetic_ecg(
        rr_intervals=[135, 175], n_points=500, first_beat=60, seed=seed, name="ecg-top"
    )
    bottom = synthetic_ecg(
        rr_intervals=[115, 135, 120], n_points=500, first_beat=50, seed=seed + 1, name="ecg-bottom"
    )
    return top, bottom


def ecg_corpus(
    n_sequences: int = 100,
    n_points: int = 500,
    rr_range: "tuple[int, int]" = (100, 200),
    seed: int = 11,
) -> "list[Sequence]":
    """A corpus of ECGs with varied R-R intervals for index benchmarks.

    Each sequence uses a base interval drawn from ``rr_range`` with
    small per-beat jitter, reflecting the paper's observation that R-R
    intervals "can not exceed a certain integer and can not go below
    some threshold for any living patient".
    """
    lo, hi = rr_range
    if not 10 <= lo < hi:
        raise SequenceError("rr_range must satisfy 10 <= lo < hi")
    rng = np.random.default_rng(seed)
    corpus: "list[Sequence]" = []
    for i in range(n_sequences):
        base = int(rng.integers(lo, hi + 1))
        intervals: "list[int]" = []
        position = 40
        while position < n_points:
            jitter = int(rng.integers(-5, 6))
            interval = max(lo, min(hi, base + jitter))
            intervals.append(interval)
            position += interval
        corpus.append(
            synthetic_ecg(
                rr_intervals=intervals,
                n_points=n_points,
                seed=int(rng.integers(1 << 30)),
                name=f"ecg-{i}",
            )
        )
    return corpus
