"""Synthetic server-metrics workloads (latency and CPU traces).

Operational telemetry is the modern counterpart of the paper's "large
data sequences": long, mostly piecewise-flat series punctuated by
structure a function-series representation captures compactly.  Two
trace shapes:

``latency_trace``
    Request-latency samples on a flat service baseline with occasional
    *bursts* — sharp spikes that decay over a few samples, the latency
    tail of a slow dependency.
``cpu_trace``
    CPU-utilization samples that step between sustained *plateaus*
    (deployment or load-shift levels) with short ramps in between.

``server_metrics_corpus`` mixes the two into amplitude-separated
*families* (baseline level × burst/plateau regime), which is exactly
the structure cluster-representative pruning thrives on: traces in the
same family share a profile, traces across families are far apart, so
a top-k query over the corpus prunes most clusters from their
representatives alone.  Every generator is deterministic given its
seed.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import SequenceError
from repro.core.sequence import Sequence

__all__ = ["latency_trace", "cpu_trace", "server_metrics_corpus"]


def latency_trace(
    n_points: int = 120,
    baseline: float = 20.0,
    n_bursts: int = 3,
    burst_height: float = 80.0,
    noise: float = 0.8,
    seed: int = 0,
    name: str = "latency",
) -> Sequence:
    """One request-latency trace: flat baseline plus decaying bursts.

    Each burst jumps ``burst_height`` (±25%, seeded) above the baseline
    and decays geometrically over the following samples — the classic
    latency-spike signature.  Burst onsets are spread across the trace
    with seeded jitter so no two seeds align.
    """
    if n_points < 16:
        raise SequenceError("latency traces need at least 16 points")
    if baseline < 0 or burst_height <= 0:
        raise SequenceError("baseline must be non-negative and burst_height positive")
    if n_bursts < 0:
        raise SequenceError("n_bursts must be non-negative")
    rng = np.random.default_rng(seed)
    values = np.full(n_points, baseline)
    if n_bursts:
        spacing = n_points / (n_bursts + 1)
        for burst in range(n_bursts):
            onset = int((burst + 1) * spacing + rng.integers(-3, 4))
            onset = min(max(onset, 1), n_points - 2)
            height = burst_height * rng.uniform(0.75, 1.25)
            decay = rng.uniform(0.45, 0.65)
            length = min(8, n_points - onset)
            values[onset : onset + length] += height * decay ** np.arange(length)
    if noise > 0:
        values += rng.uniform(-noise, noise, size=n_points)
    return Sequence.from_values(values, name=name)


def cpu_trace(
    n_points: int = 120,
    levels: "tuple[float, ...]" = (25.0, 60.0, 40.0),
    ramp: int = 3,
    noise: float = 0.6,
    seed: int = 0,
    name: str = "cpu",
) -> Sequence:
    """One CPU-utilization trace: sustained plateaus with short ramps.

    The trace dwells on each level of ``levels`` in order (equal
    seeded-jittered dwell times), connecting consecutive plateaus with
    a ``ramp``-sample linear transition — the load-shift / deployment
    step shape.
    """
    if n_points < 16:
        raise SequenceError("cpu traces need at least 16 points")
    if not levels:
        raise SequenceError("cpu traces need at least one plateau level")
    if any(level < 0 for level in levels):
        raise SequenceError("plateau levels must be non-negative")
    if ramp < 1:
        raise SequenceError("ramp must be at least one sample")
    rng = np.random.default_rng(seed)
    boundaries = np.linspace(0, n_points, len(levels) + 1).astype(int)
    if len(levels) > 1:
        jitter = rng.integers(-2, 3, size=len(levels) - 1)
        boundaries[1:-1] = np.clip(
            boundaries[1:-1] + jitter, 1, n_points - 1
        )
    values = np.empty(n_points)
    for i, level in enumerate(levels):
        values[boundaries[i] : boundaries[i + 1]] = level
    for boundary in boundaries[1:-1]:
        lo = max(int(boundary) - ramp // 2, 0)
        hi = min(lo + ramp + 1, n_points)
        if hi - lo >= 2:
            values[lo:hi] = np.linspace(values[lo], values[hi - 1], hi - lo)
    if noise > 0:
        values += rng.uniform(-noise, noise, size=n_points)
    return Sequence.from_values(values, name=name)


def server_metrics_corpus(
    n_sequences: int = 100,
    n_points: int = 120,
    n_families: int = 8,
    seed: int = 17,
) -> "list[Sequence]":
    """A corpus of latency/CPU traces in amplitude-separated families.

    Families alternate between burst-shaped latency traces and
    plateau-shaped CPU traces, each family pinned to its own baseline
    band so members cluster tightly and families stay far apart —
    the top-k pruning benchmark's corpus.  Deterministic per seed;
    sequences are named ``metrics-<family>-<i>``.
    """
    if n_sequences < 1:
        raise SequenceError("corpus needs at least one sequence")
    if n_families < 1:
        raise SequenceError("corpus needs at least one family")
    rng = np.random.default_rng(seed)
    corpus: "list[Sequence]" = []
    for i in range(n_sequences):
        family = i % n_families
        trace_seed = int(rng.integers(1 << 30))
        name = f"metrics-{family}-{i}"
        band = 15.0 + 30.0 * family
        if family % 2 == 0:
            corpus.append(
                latency_trace(
                    n_points=n_points,
                    baseline=band,
                    n_bursts=2 + family // 2 % 3,
                    burst_height=40.0 + 10.0 * family,
                    seed=trace_seed,
                    name=name,
                )
            )
        else:
            base = band
            corpus.append(
                cpu_trace(
                    n_points=n_points,
                    levels=(base, base + 20.0 + 5.0 * family, base + 8.0),
                    seed=trace_seed,
                    name=name,
                )
            )
    return corpus
