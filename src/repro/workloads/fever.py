"""Goal-post fever temperature workloads (paper Section 2.1 / Figures 2-7).

"One of the symptoms of Hodgkin's disease is a temperature pattern
known as goal-post fever, that peaks exactly twice within 24 hours."
The paper's fever figures are synthetic; these generators rebuild them
deterministically:

* :func:`goalpost_fever` — smooth two-peak 24-hour temperature logs
  with controllable peak positions, widths and amplitudes;
* :func:`k_peak_sequence` — the same machinery for any peak count
  (one-peak and three-peak negatives for the query benchmarks);
* :func:`figure3_sequence` — the fixed triangular exemplar of Figure 3
  (peaks at hours 6 and 18, range roughly 95-107);
* :func:`figure5_variants` — the transformation suite of Figure 5
  (time/amplitude shifts, scaling, dilation, contraction) applied to an
  exemplar, all of which must remain exact matches for the two-peak
  query while failing value-based matching.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import SequenceError
from repro.core.sequence import Sequence
from repro.core.transformations import (
    AmplitudeScale,
    AmplitudeShift,
    Compose,
    TimeScale,
    TimeShift,
    Transformation,
)

__all__ = [
    "goalpost_fever",
    "k_peak_sequence",
    "figure3_sequence",
    "figure4_fluctuated",
    "figure5_variants",
    "fever_corpus",
]

_BODY_TEMP = 98.0  # baseline body temperature, Fahrenheit


def k_peak_sequence(
    peak_hours: "list[float]",
    n_points: int = 49,
    duration_hours: float = 24.0,
    baseline: float = _BODY_TEMP,
    amplitudes: "list[float] | None" = None,
    widths: "list[float] | None" = None,
    noise: float = 0.0,
    seed: int = 0,
    name: str = "",
) -> Sequence:
    """A temperature log with Gaussian bumps at the given hours."""
    if not peak_hours:
        raise SequenceError("at least one peak position is required")
    if amplitudes is None:
        amplitudes = [7.0] * len(peak_hours)
    if widths is None:
        widths = [1.6] * len(peak_hours)
    if not (len(peak_hours) == len(amplitudes) == len(widths)):
        raise SequenceError("peak_hours, amplitudes and widths must align")
    times = np.linspace(0.0, duration_hours, n_points)
    values = np.full(n_points, baseline)
    for center, amp, width in zip(peak_hours, amplitudes, widths):
        if width <= 0:
            raise SequenceError("peak widths must be positive")
        values = values + amp * np.exp(-0.5 * ((times - center) / width) ** 2)
    if noise > 0:
        rng = np.random.default_rng(seed)
        values = values + rng.uniform(-noise, noise, size=n_points)
    return Sequence(times, values, name=name or f"{len(peak_hours)}-peak-fever")


def goalpost_fever(
    first_peak: float = 6.0,
    second_peak: float = 18.0,
    n_points: int = 49,
    amplitude: float = 7.0,
    width: float = 1.6,
    noise: float = 0.0,
    seed: int = 0,
    name: str = "goalpost",
) -> Sequence:
    """The canonical two-peak 24-hour fever log."""
    if not 0 < first_peak < second_peak < 24.0:
        raise SequenceError("peaks must be ordered inside the 24-hour window")
    return k_peak_sequence(
        [first_peak, second_peak],
        n_points=n_points,
        amplitudes=[amplitude, amplitude * 0.9],
        widths=[width, width * 1.2],
        noise=noise,
        seed=seed,
        name=name,
    )


def figure3_sequence(n_points: int = 49) -> Sequence:
    """The fixed exemplar of paper Figure 3.

    Piecewise-linear: climbs 95 -> 107 to a peak at hour 6, returns to
    95 at hour 12, peaks again at hour 18, and returns by hour 24.
    """
    times = np.linspace(0.0, 24.0, n_points)
    knots_t = np.array([0.0, 6.0, 12.0, 18.0, 24.0])
    knots_v = np.array([95.0, 107.0, 95.0, 107.0, 95.0])
    values = np.interp(times, knots_t, knots_v)
    return Sequence(times, values, name="figure3")


def figure4_fluctuated(delta: float = 1.0, seed: int = 4) -> Sequence:
    """Figure 4: the exemplar with pointwise fluctuations within ±delta.

    Value-based matching accepts this sequence (it never leaves the
    band) even though the fluctuations corrupt the clean two-peak
    behaviour; the feature-based approach judges it on its peaks.
    """
    base = figure3_sequence()
    rng = np.random.default_rng(seed)
    noise = rng.uniform(-delta, delta, size=len(base))
    return Sequence(base.times, base.values + noise, name="figure4")


def figure5_variants(exemplar: Sequence) -> "list[tuple[str, Transformation, Sequence]]":
    """The transformation suite of paper Figure 5.

    Returns ``(label, transformation, transformed sequence)`` triples:
    every entry preserves the two-peak property (so each is an *exact*
    match for the goal-post query) while moving far outside any
    value-based epsilon band.
    """
    variants: list[tuple[str, Transformation, Sequence]] = []
    suite: list[tuple[str, Transformation]] = [
        ("time-shift", TimeShift(3.0)),
        ("amplitude-shift", AmplitudeShift(-6.0)),
        ("amplitude-scale", AmplitudeScale(1.8, baseline=float(exemplar.values.min()))),
        ("dilation", TimeScale(2.0, origin=exemplar.start_time)),
        ("contraction", TimeScale(0.5, origin=exemplar.start_time)),
        (
            "shift+scale+dilate",
            Compose(
                [
                    TimeShift(1.5),
                    AmplitudeScale(1.4, baseline=float(exemplar.values.min())),
                    TimeScale(1.5, origin=exemplar.start_time),
                ]
            ),
        ),
    ]
    for label, transform in suite:
        variants.append((label, transform, transform(exemplar).with_name(label)))
    return variants


def fever_corpus(
    n_two_peak: int = 20,
    n_one_peak: int = 10,
    n_three_peak: int = 10,
    n_points: int = 49,
    noise: float = 0.15,
    seed: int = 7,
) -> "list[Sequence]":
    """A mixed corpus for the goal-post query benchmarks.

    Peak positions, amplitudes and widths vary per sequence; names
    encode the ground-truth peak count (``"fever-2p-<i>"`` etc.) so
    benchmarks can score precision and recall.
    """
    rng = np.random.default_rng(seed)
    corpus: list[Sequence] = []
    for i in range(n_two_peak):
        first = float(rng.uniform(4.0, 9.0))
        second = float(rng.uniform(14.0, 20.0))
        corpus.append(
            k_peak_sequence(
                [first, second],
                n_points=n_points,
                amplitudes=[float(rng.uniform(5.0, 9.0)) for _ in range(2)],
                widths=[float(rng.uniform(1.2, 2.2)) for _ in range(2)],
                noise=noise,
                seed=int(rng.integers(1 << 30)),
                name=f"fever-2p-{i}",
            )
        )
    for i in range(n_one_peak):
        corpus.append(
            k_peak_sequence(
                [float(rng.uniform(8.0, 16.0))],
                n_points=n_points,
                amplitudes=[float(rng.uniform(5.0, 9.0))],
                widths=[float(rng.uniform(1.5, 2.5))],
                noise=noise,
                seed=int(rng.integers(1 << 30)),
                name=f"fever-1p-{i}",
            )
        )
    for i in range(n_three_peak):
        # Separation of at least 5.5 hours with widths <= 1.4 keeps the
        # three bumps from merging into fewer prominent peaks.
        centers = sorted(float(c) for c in rng.uniform(3.0, 21.0, size=3))
        while min(b - a for a, b in zip(centers, centers[1:])) < 5.5:
            centers = sorted(float(c) for c in rng.uniform(3.0, 21.0, size=3))
        corpus.append(
            k_peak_sequence(
                centers,
                n_points=n_points,
                amplitudes=[float(rng.uniform(5.0, 9.0)) for _ in range(3)],
                widths=[float(rng.uniform(1.0, 1.4)) for _ in range(3)],
                noise=noise,
                seed=int(rng.integers(1 << 30)),
                name=f"fever-3p-{i}",
            )
        )
    return corpus
