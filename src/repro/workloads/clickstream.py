"""Synthetic clickstream workloads (session activity traces).

Web-analytics activity counts are a natural motif corpus: a session
trace rises while the user is engaged, falls as they idle, and plateaus
between page loads — so its slope-sign string is rich in short
up/down/flat motifs, which is exactly what the succinct counting
queries (``COUNT MATCHING`` / ``POSITIONS OF``) probe for.  Two trace
shapes:

``session_trace``
    Per-interval activity of one browsing session: engagement ramps
    up to a seeded peak, decays through idle gaps, and re-engages a
    seeded number of times before tailing off.
``burst_trace``
    Campaign-style traffic: a low ambient level interrupted by sharp
    arrival *bursts* (push notification, mail blast) that collapse
    back to ambient within a few intervals.

``clickstream_corpus`` mixes the two into seeded families with
distinct re-engagement/burst regimes, giving a corpus whose symbol
columns contain every short slope motif at predictable densities —
the counting-query parity suite and the symbol-compression benchmark
both draw from it.  Every generator is deterministic given its seed.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import SequenceError
from repro.core.sequence import Sequence

__all__ = ["session_trace", "burst_trace", "clickstream_corpus"]


def session_trace(
    n_points: int = 96,
    peak: float = 30.0,
    n_reengagements: int = 2,
    idle_depth: float = 0.35,
    noise: float = 0.5,
    seed: int = 0,
    name: str = "session",
) -> Sequence:
    """One browsing-session activity trace: ramps, idles, re-engagements.

    Activity climbs to a seeded fraction of ``peak``, sinks toward
    ``idle_depth`` of the way back down during idle gaps, and repeats
    for ``n_reengagements`` further engagement cycles before the final
    tail-off — so the slope string alternates ``+`` runs, ``-`` runs
    and ``0`` plateaus in session-sized blocks.
    """
    if n_points < 16:
        raise SequenceError("session traces need at least 16 points")
    if peak <= 0:
        raise SequenceError("peak activity must be positive")
    if n_reengagements < 0:
        raise SequenceError("n_reengagements must be non-negative")
    if not 0.0 <= idle_depth <= 1.0:
        raise SequenceError("idle_depth must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    cycles = n_reengagements + 1
    segment = n_points // (2 * cycles + 1)
    if segment < 2:
        raise SequenceError(
            "too many re-engagements for the trace length; "
            "each cycle needs at least four points"
        )
    values = np.empty(n_points)
    cursor = 0
    level = 0.0
    for cycle in range(cycles):
        top = peak * rng.uniform(0.7, 1.0) * (1.0 - 0.15 * cycle)
        rise = segment + int(rng.integers(-2, 3))
        rise = max(2, min(rise, n_points - cursor - 2))
        values[cursor : cursor + rise] = np.linspace(level, top, rise)
        cursor += rise
        floor = top * idle_depth * rng.uniform(0.8, 1.2)
        fall = segment + int(rng.integers(-2, 3))
        fall = max(2, min(fall, n_points - cursor))
        values[cursor : cursor + fall] = np.linspace(top, floor, fall)
        cursor += fall
        level = floor
        if cursor >= n_points:
            break
    values[cursor:] = np.linspace(level, level * 0.25, n_points - cursor)
    if noise > 0:
        values += rng.uniform(-noise, noise, size=n_points)
    return Sequence.from_values(values, name=name)


def burst_trace(
    n_points: int = 96,
    ambient: float = 4.0,
    n_bursts: int = 3,
    burst_height: float = 40.0,
    noise: float = 0.4,
    seed: int = 0,
    name: str = "burst",
) -> Sequence:
    """One campaign-traffic trace: ambient level plus arrival bursts.

    Each burst jumps ``burst_height`` (±30%, seeded) above ambient and
    collapses geometrically over the next few intervals — the push-
    notification arrival signature, a dense source of ``+-`` and
    ``+--`` motifs.  Burst onsets are spread with seeded jitter.
    """
    if n_points < 16:
        raise SequenceError("burst traces need at least 16 points")
    if ambient < 0 or burst_height <= 0:
        raise SequenceError("ambient must be non-negative and burst_height positive")
    if n_bursts < 0:
        raise SequenceError("n_bursts must be non-negative")
    rng = np.random.default_rng(seed)
    values = np.full(n_points, ambient)
    if n_bursts:
        spacing = n_points / (n_bursts + 1)
        for burst in range(n_bursts):
            onset = int((burst + 1) * spacing + rng.integers(-3, 4))
            onset = min(max(onset, 1), n_points - 2)
            height = burst_height * rng.uniform(0.7, 1.3)
            collapse = rng.uniform(0.35, 0.55)
            length = min(6, n_points - onset)
            values[onset : onset + length] += height * collapse ** np.arange(length)
    if noise > 0:
        values += rng.uniform(-noise, noise, size=n_points)
    return Sequence.from_values(values, name=name)


def clickstream_corpus(
    n_sequences: int = 100,
    n_points: int = 96,
    n_families: int = 6,
    seed: int = 23,
) -> "list[Sequence]":
    """A corpus of session/burst traces in seeded families.

    Families alternate between session-shaped and burst-shaped traces
    with per-family engagement and burst regimes, so every short slope
    motif (``+-+``, ``++--``, ``-0``, …) occurs at a predictable
    density — the counting-query parity suite's corpus.  Deterministic
    per seed; sequences are named ``click-<family>-<i>``.
    """
    if n_sequences < 1:
        raise SequenceError("corpus needs at least one sequence")
    if n_families < 1:
        raise SequenceError("corpus needs at least one family")
    rng = np.random.default_rng(seed)
    corpus: "list[Sequence]" = []
    for i in range(n_sequences):
        family = i % n_families
        trace_seed = int(rng.integers(1 << 30))
        name = f"click-{family}-{i}"
        if family % 2 == 0:
            corpus.append(
                session_trace(
                    n_points=n_points,
                    peak=20.0 + 8.0 * family,
                    n_reengagements=1 + family // 2 % 3,
                    seed=trace_seed,
                    name=name,
                )
            )
        else:
            corpus.append(
                burst_trace(
                    n_points=n_points,
                    ambient=3.0 + 2.0 * family,
                    n_bursts=2 + family % 4,
                    burst_height=25.0 + 10.0 * family,
                    seed=trace_seed,
                    name=name,
                )
            )
    return corpus
