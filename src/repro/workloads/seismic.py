"""Seismic workloads (the paper's motivating geochemistry domain).

"In a seismic database we may look for sudden vigorous seismic
activity" (Section 1) and raw seismic data "can take several days" to
obtain from archival tape.  This generator produces quiescent
background noise punctuated by exponentially-decaying oscillatory
bursts — enough structure for burst-detection pattern queries and for
the storage benchmarks that quantify the archival-latency motivation.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import SequenceError
from repro.core.sequence import Sequence

__all__ = ["seismic_sequence", "seismic_corpus"]


def seismic_sequence(
    n_points: int = 2000,
    event_positions: "list[int] | None" = None,
    event_amplitude: float = 40.0,
    background: float = 1.0,
    decay: float = 0.02,
    oscillation_period: float = 12.0,
    seed: int = 0,
    name: str = "seismic",
) -> "tuple[Sequence, list[int]]":
    """A seismogram plus the ground-truth event onsets.

    Each event is a damped oscillation ``A * exp(-decay*k) * sin(...)``
    riding on uniform background noise of amplitude ``background``.
    """
    if background < 0 or event_amplitude <= 0:
        raise SequenceError("amplitudes must be positive")
    rng = np.random.default_rng(seed)
    values = rng.uniform(-background, background, size=n_points)
    if event_positions is None:
        count = max(1, n_points // 700)
        event_positions = sorted(
            int(p) for p in rng.integers(n_points // 10, n_points - n_points // 10, size=count)
        )
    for onset in event_positions:
        if not 0 <= onset < n_points:
            raise SequenceError(f"event onset {onset} outside the sequence")
        k = np.arange(n_points - onset, dtype=float)
        burst = (
            event_amplitude
            * np.exp(-decay * k)
            * np.sin(2.0 * np.pi * k / oscillation_period)
        )
        values[onset:] += burst
    return Sequence.from_values(values, name=name), list(event_positions)


def seismic_corpus(n_sequences: int = 20, n_points: int = 2000, seed: int = 13) -> "list[tuple[Sequence, list[int]]]":
    """Seismograms with randomized event counts and positions."""
    rng = np.random.default_rng(seed)
    corpus: "list[tuple[Sequence, list[int]]]" = []
    for i in range(n_sequences):
        n_events = int(rng.integers(1, 4))
        positions = sorted(
            int(p) for p in rng.integers(n_points // 10, n_points - n_points // 5, size=n_events)
        )
        # Enforce separation so bursts do not merge.
        separated: "list[int]" = []
        for p in positions:
            if not separated or p - separated[-1] > n_points // 8:
                separated.append(p)
        corpus.append(
            seismic_sequence(
                n_points=n_points,
                event_positions=separated,
                event_amplitude=float(rng.uniform(25.0, 60.0)),
                seed=int(rng.integers(1 << 30)),
                name=f"seismic-{i}",
            )
        )
    return corpus
