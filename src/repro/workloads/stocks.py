"""Stock-price workloads (the paper's market motivation).

"In a stock market database we look at rises and drops of stock values"
(Section 1).  The generator emits piecewise-trend random walks: regimes
of rising, falling or sideways drift with noise — data on which the
slope-sign pattern queries ("rise then drop then rise") are natural.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import SequenceError
from repro.core.sequence import Sequence

__all__ = ["stock_sequence", "stock_corpus"]


def stock_sequence(
    n_points: int = 250,
    start_price: float = 100.0,
    regimes: "list[tuple[int, float]] | None" = None,
    volatility: float = 0.4,
    seed: int = 0,
    name: str = "stock",
) -> Sequence:
    """A price series with explicit trend regimes.

    ``regimes`` is a list of ``(length, drift-per-step)`` pairs; when
    omitted, regimes are drawn at random.  Volatility is the standard
    deviation of the per-step noise.
    """
    if start_price <= 0:
        raise SequenceError("start price must be positive")
    rng = np.random.default_rng(seed)
    if regimes is None:
        regimes = []
        remaining = n_points
        while remaining > 0:
            length = int(min(remaining, rng.integers(20, 60)))
            drift = float(rng.choice([-0.5, -0.2, 0.0, 0.2, 0.5]))
            regimes.append((length, drift))
            remaining -= length
    steps: "list[np.ndarray]" = []
    for length, drift in regimes:
        if length <= 0:
            raise SequenceError("regime lengths must be positive")
        steps.append(drift + rng.normal(0.0, volatility, size=length))
    increments = np.concatenate(steps)[: n_points - 1]
    prices = start_price + np.concatenate([[0.0], np.cumsum(increments)])
    prices = np.maximum(prices, 1.0)  # prices stay positive
    return Sequence.from_values(prices[:n_points], name=name)


def stock_corpus(n_sequences: int = 30, n_points: int = 250, seed: int = 17) -> "list[Sequence]":
    rng = np.random.default_rng(seed)
    return [
        stock_sequence(
            n_points=n_points,
            start_price=float(rng.uniform(20.0, 300.0)),
            seed=int(rng.integers(1 << 30)),
            name=f"stock-{i}",
        )
        for i in range(n_sequences)
    ]
