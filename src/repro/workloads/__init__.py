"""Deterministic workload generators standing in for the paper's data
(medical ECGs and fever logs, seismic traces, stock series, server
operational metrics)."""

from repro.workloads.clickstream import (
    burst_trace,
    clickstream_corpus,
    session_trace,
)
from repro.workloads.ecg import ecg_corpus, figure9_pair, synthetic_ecg
from repro.workloads.server_metrics import (
    cpu_trace,
    latency_trace,
    server_metrics_corpus,
)
from repro.workloads.fever import (
    fever_corpus,
    figure3_sequence,
    figure4_fluctuated,
    figure5_variants,
    goalpost_fever,
    k_peak_sequence,
)
from repro.workloads.seismic import seismic_corpus, seismic_sequence
from repro.workloads.stocks import stock_corpus, stock_sequence

__all__ = [
    "synthetic_ecg",
    "ecg_corpus",
    "figure9_pair",
    "goalpost_fever",
    "k_peak_sequence",
    "figure3_sequence",
    "figure4_fluctuated",
    "figure5_variants",
    "fever_corpus",
    "seismic_sequence",
    "seismic_corpus",
    "stock_sequence",
    "stock_corpus",
    "latency_trace",
    "cpu_trace",
    "server_metrics_corpus",
    "session_trace",
    "burst_trace",
    "clickstream_corpus",
]
