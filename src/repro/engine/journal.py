"""Per-store mutation journal: which sequences changed, and when.

The scalar ``generation`` counter answers *whether* a store changed;
the :class:`MutationJournal` answers *what* changed.  Every mutation a
:class:`~repro.engine.columnar.ColumnarSegmentStore` applies —
insert/extend, delete, streaming append — records one
:class:`JournalEntry` of ``(generation, kind, sequence_ids)`` at the
post-mutation generation.  A consumer holding an answer computed at
generation ``g`` can then ask :meth:`MutationJournal.dirty_since` for
the exact id set touched after ``g`` and repair its answer for those
ids only, instead of recomputing the world — the delta-revalidation
contract the plan-result cache (:mod:`repro.engine.cache`) runs on.

The journal is a bounded ring: once ``max_entries`` is exceeded the
oldest entries are dropped and the *rebase epoch* (:attr:`floor`)
advances to the last dropped generation.  ``dirty_since(g)`` for a
``g`` older than the floor returns ``None`` — the precise dirty set is
gone, and the caller must fall back to a full recomputation.  That
makes compaction safe by construction: forgetting history can only cost
work, never correctness.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, NamedTuple

from repro.core.errors import EngineError

__all__ = ["JournalEntry", "MutationJournal"]

#: Fixed overhead charged per journal entry (deque slot, tuple, kind).
_ENTRY_OVERHEAD = 120


class JournalEntry(NamedTuple):
    """One recorded mutation: the generation it produced, its kind
    (``"insert"``, ``"delete"`` or ``"append"``) and the touched ids."""

    generation: int
    kind: str
    sequence_ids: "tuple[int, ...]"


class MutationJournal:
    """Bounded ring of mutation records with a rebase floor.

    Parameters
    ----------
    max_entries:
        Retained entries before the ring compacts.  May be reassigned
        (tests shrink it to force compaction); the new bound applies
        from the next :meth:`record` on.
    """

    __slots__ = ("max_entries", "_entries", "_floor", "compactions")

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise EngineError("journal must retain at least one entry")
        self.max_entries = int(max_entries)
        self._entries: "deque[JournalEntry]" = deque()
        self._floor = 0
        self.compactions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def floor(self) -> int:
        """The rebase epoch: the newest generation compacted away.

        Dirty sets are answerable exactly for baselines ``>= floor``.
        """
        return self._floor

    def record(self, generation: int, kind: str, sequence_ids: "Iterable[int]") -> None:
        """Append one mutation record (at its post-mutation generation)."""
        ids = tuple(int(sequence_id) for sequence_id in sequence_ids)
        self._entries.append(JournalEntry(int(generation), kind, ids))
        while len(self._entries) > self.max_entries:
            dropped = self._entries.popleft()
            self._floor = dropped.generation
            self.compactions += 1

    def dirty_since(self, generation: int) -> "set[int] | None":
        """Every sequence id touched after ``generation``, or ``None``.

        ``None`` means the ring has compacted past ``generation`` — the
        precise dirty set is unrecoverable and the caller must treat
        everything as dirty (full recomputation).  Deleted ids are
        included: the caller decides what "dirty" means for a dead id.
        """
        if generation < self._floor:
            return None
        dirty: "set[int]" = set()
        for entry in reversed(self._entries):
            if entry.generation <= generation:
                break
            dirty.update(entry.sequence_ids)
        return dirty

    def entries_since(self, generation: int) -> "list[JournalEntry] | None":
        """The retained entries after ``generation``, oldest first
        (``None`` once compaction has passed the baseline)."""
        if generation < self._floor:
            return None
        return [entry for entry in self._entries if entry.generation > generation]

    @property
    def nbytes(self) -> int:
        """Estimated resident bytes of the retained ring."""
        return sum(
            _ENTRY_OVERHEAD + 8 * len(entry.sequence_ids) for entry in self._entries
        )

    def stats(self) -> dict:
        """Counters for ``storage_report`` and monitoring."""
        return {
            "entries": len(self._entries),
            "bytes": self.nbytes,
            "floor": self._floor,
            "compactions": self.compactions,
        }
