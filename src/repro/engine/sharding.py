"""Horizontal partitioning of the columnar store.

The representation is embarrassingly partitionable by sequence: every
query stage grades each sequence against its own rows only, so the
store can be split into N independent :class:`ColumnarSegmentStore`
shards and every stage can run per shard and merge — the scatter-gather
shape of the BrainEx-style partitioned in-memory engines.

Routing is hash-by-sequence-id (``sequence_id % n_shards``); the
database assigns monotonically increasing ids, so the modulus deals
consecutive sequences round-robin across shards and keeps every shard's
id column strictly increasing, preserving each shard's binary-search
lookup invariant.  Each shard keeps its own ``generation`` mutation
counter; the sharded store rolls them up into a single monotone token
that the plan-result cache folds into its epoch, so a mutation on any
shard invalidates cached answers exactly like a single-store mutation
would.

Batch :meth:`ShardedSegmentStore.extend` groups the batch by shard and
appends one whole column block per shard — the ingest pipeline's
append path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence as TypingSequence

import numpy as np

from repro.core.errors import EngineError
from repro.engine.columnar import ColumnarSegmentStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Any

    from repro.core.representation import FunctionSeriesRepresentation
    from repro.engine.shm import SharedMemoryArena

__all__ = ["ShardedSegmentStore"]


class ShardedSegmentStore:
    """N independent columnar shards behind the single-store interface.

    Sequence-scoped reads route to the owning shard; whole-store scans
    (query stages, ``scan_rr``) iterate :meth:`shards` and merge.  The
    mutation API (``insert``/``extend``/``delete``) and the integrity
    checker mirror :class:`ColumnarSegmentStore`, so the database and
    the executor treat both interchangeably; ``shards()`` /
    ``partition_ids()`` are the only operations the scatter-gather
    executor needs.
    """

    def __init__(
        self,
        n_shards: int,
        theta: float = 0.0,
        arena: "SharedMemoryArena | None" = None,
        symbol_backend: str = "uncompressed",
    ) -> None:
        if n_shards < 1:
            raise EngineError(f"need at least one shard, got {n_shards}")
        self.theta = float(theta)
        self.symbol_backend = symbol_backend
        self._shards = tuple(
            ColumnarSegmentStore(
                theta=theta,
                arena=arena,
                label=f"s{index}",
                symbol_backend=symbol_backend,
            )
            for index in range(int(n_shards))
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shards(self) -> "tuple[ColumnarSegmentStore, ...]":
        """The leaf column stores, in shard order."""
        return self._shards

    def shard_index(self, sequence_id: int) -> int:
        """Which shard owns a sequence id (hash-by-id routing)."""
        return int(sequence_id) % len(self._shards)

    def shard_of(self, sequence_id: int) -> ColumnarSegmentStore:
        return self._shards[self.shard_index(sequence_id)]

    def partition_ids(
        self, candidate_ids: "TypingSequence[int] | np.ndarray | None"
    ) -> "list[list[int] | None]":
        """Candidate ids split per shard, aligned with :meth:`shards`.

        ``None`` (scan everything) stays ``None`` for every shard; a
        concrete candidate list is routed by id, preserving the callers'
        relative order within each shard.
        """
        if candidate_ids is None:
            return [None] * len(self._shards)
        parts: "list[list[int]]" = [[] for _ in self._shards]
        n = len(self._shards)
        for sequence_id in candidate_ids:
            parts[int(sequence_id) % n].append(int(sequence_id))
        return list(parts)

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, sequence_id: int) -> bool:
        return sequence_id in self.shard_of(sequence_id)

    @property
    def n_sequences(self) -> int:
        return sum(shard.n_sequences for shard in self._shards)

    @property
    def n_segments(self) -> int:
        return sum(shard.n_segments for shard in self._shards)

    @property
    def n_rr(self) -> int:
        return sum(shard.n_rr for shard in self._shards)

    @property
    def n_behavior(self) -> int:
        return sum(shard.n_behavior for shard in self._shards)

    @property
    def nbytes(self) -> int:
        return sum(shard.nbytes for shard in self._shards)

    @property
    def generation(self) -> int:
        """Rolled-up mutation counter: the sum of every shard's counter.

        Each shard's generation is monotone, so the sum is a monotone
        token that changes whenever *any* shard mutates — exactly the
        invalidation contract the plan-result cache epoch needs.
        """
        return sum(shard.generation for shard in self._shards)

    def generation_vector(self) -> "tuple[int, ...]":
        """Per-shard generations, in shard order — the precise baseline
        delta revalidation replays each shard's journal from."""
        return tuple(shard.generation for shard in self._shards)

    def dirty_ids_since(self, vector: "tuple[int, ...]") -> "set[int] | None":
        """Union of every shard's dirty ids since the baseline vector.

        ``None`` as soon as any shard's journal has compacted past its
        baseline (or the vector's shard count disagrees) — partial
        dirty sets are useless, the caller must recompute everything.
        """
        if len(vector) != len(self._shards):
            return None
        dirty: "set[int]" = set()
        for shard, baseline in zip(self._shards, vector):
            shard_dirty = shard.dirty_ids_since((int(baseline),))
            if shard_dirty is None:
                return None
            dirty |= shard_dirty
        return dirty

    def read_token(self) -> "tuple[int, ...]":
        """Per-shard write seqlocks, aligned with :meth:`generation_vector`."""
        return tuple(shard.read_token()[0] for shard in self._shards)

    def shm_manifests(self) -> "list[dict[str, Any] | None]":
        """Per-shard worker attachment manifests (``None`` = heap-backed)."""
        return [shard.shm_manifest() for shard in self._shards]

    def journal_stats(self) -> dict:
        """Aggregated journal counters across every shard."""
        per_shard = [shard.journal_stats() for shard in self._shards]
        return {
            "entries": sum(stats["entries"] for stats in per_shard),
            "bytes": sum(stats["bytes"] for stats in per_shard),
            "floor": max(stats["floor"] for stats in per_shard),
            "compactions": sum(stats["compactions"] for stats in per_shard),
        }

    def cluster_report(self) -> dict:
        """Aggregated cluster-index telemetry across every shard.

        Counters sum; ``last_pruned_fraction`` is recomputed from the
        shards' last-query row/refine totals, so it describes the last
        scattered query as a whole rather than averaging per-shard
        ratios with different weights.
        """
        per_shard = [shard.cluster_report() for shard in self._shards]
        summed = {
            key: sum(report[key] for report in per_shard)
            for key in (
                "sequences", "representatives", "builds", "rebuilds",
                "stale_mutations", "nbytes", "queries", "clusters_probed",
                "clusters_pruned", "members_pruned", "candidates_refined",
                "early_abandoned", "last_rows_considered",
                "last_candidates_refined",
            )
        }
        last_rows = summed["last_rows_considered"]
        last_refined = summed["last_candidates_refined"]
        summed["built"] = any(report["built"] for report in per_shard)
        summed["last_pruned_fraction"] = (
            1.0 - last_refined / last_rows if last_rows else 0.0
        )
        return summed

    def succinct_report(self) -> dict:
        """Aggregated succinct-index telemetry across every shard.

        Counters sum; ``bits_per_symbol`` is recomputed from the summed
        matrix footprints so it describes the whole store rather than
        averaging per-shard ratios with different weights.
        """
        per_shard = [shard.succinct_report() for shard in self._shards]
        summed = {
            key: sum(report[key] for report in per_shard)
            for key in (
                "symbols", "rank_blocks", "nbytes", "builds", "rebuilds",
                "patches", "overlay_entries", "stale_mutations", "queries",
            )
        }
        summed["built"] = any(report["built"] for report in per_shard)
        weighted_bits = sum(
            report["bits_per_symbol"] * report["symbols"] for report in per_shard
        )
        summed["bits_per_symbol"] = (
            weighted_bits / summed["symbols"] if summed["symbols"] else 0.0
        )
        summed["backend"] = self.symbol_backend
        return summed

    @property
    def sequence_ids(self) -> np.ndarray:
        """All live sequence ids, ascending (materialized per call)."""
        parts = [shard.sequence_ids for shard in self._shards if len(shard)]
        if not parts:
            return np.empty(0, dtype=np.int64)
        merged = np.concatenate(parts)
        merged.sort()
        return merged

    # ------------------------------------------------------------------
    # Sequence-scoped reads (routed to the owning shard)
    # ------------------------------------------------------------------

    def peak_count_of(self, sequence_id: int) -> int:
        return self.shard_of(sequence_id).peak_count_of(sequence_id)

    def rr_intervals_of(self, sequence_id: int) -> np.ndarray:
        return self.shard_of(sequence_id).rr_intervals_of(sequence_id)

    def symbols_of(self, sequence_id: int, collapse_runs: bool = False) -> str:
        return self.shard_of(sequence_id).symbols_of(sequence_id, collapse_runs=collapse_runs)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(
        self,
        sequence_id: int,
        representation: "FunctionSeriesRepresentation",
        *,
        peak_count: int,
        rr: "np.ndarray | TypingSequence[float]",
    ) -> None:
        """Append one sequence's columns to its owning shard."""
        self.extend([(sequence_id, representation, peak_count, rr)])

    def extend(
        self,
        items: "Iterable[tuple[int, FunctionSeriesRepresentation, int, np.ndarray]]",
    ) -> None:
        """Append a batch as one whole column block per touched shard.

        Items must arrive in strictly increasing id order and above
        every live id, matching the single store's append-only contract;
        the batch is routed by id and each shard's arrays grow at most
        once.
        """
        batch = list(items)
        if not batch:
            return
        last = -1
        for shard in self._shards:
            if len(shard):
                last = max(last, int(shard.sequence_ids[-1]))
        groups: "dict[int, list]" = {}
        for item in batch:
            sequence_id = int(item[0])
            if sequence_id <= last:
                raise EngineError(
                    f"sequence ids must be inserted in increasing order "
                    f"({sequence_id} after {last})"
                )
            last = sequence_id
            groups.setdefault(self.shard_index(sequence_id), []).append(item)
        for shard_index, group in groups.items():
            self._shards[shard_index].extend(group)

    def replace(
        self,
        sequence_id: int,
        representation: "FunctionSeriesRepresentation",
        *,
        peak_count: int,
        rr: "np.ndarray | TypingSequence[float]",
    ) -> None:
        """Rewrite one live sequence's rows on its owning shard."""
        self.replace_many([(sequence_id, representation, peak_count, rr)])

    def replace_many(
        self,
        items: "Iterable[tuple[int, FunctionSeriesRepresentation, int, np.ndarray]]",
    ) -> None:
        """Rewrite many live sequences' rows, batched per owning shard.

        Each touched shard splices its items in one
        :meth:`ColumnarSegmentStore.replace_many` call — one generation
        bump and one ``"append"`` journal entry per shard; untouched
        shards (and their cached per-shard stage outputs) are left
        entirely alone.  The whole batch is validated up front.
        """
        batch = list(items)
        if not batch:
            return
        missing = [int(item[0]) for item in batch if int(item[0]) not in self]
        if missing:
            raise EngineError(f"sequences {sorted(set(missing))} not in columnar store")
        groups: "dict[int, list]" = {}
        for item in batch:
            groups.setdefault(self.shard_index(int(item[0])), []).append(item)
        for shard_index, group in groups.items():
            self._shards[shard_index].replace_many(group)

    def delete(self, sequence_id: int) -> None:
        """Drop one sequence from its owning shard (compacting it)."""
        self.shard_of(sequence_id).delete(sequence_id)

    def delete_many(self, sequence_ids: "TypingSequence[int] | np.ndarray") -> None:
        """Drop many sequences, one batched pass per touched shard.

        Ids are grouped by owning shard and each shard runs its own
        :meth:`ColumnarSegmentStore.delete_many` — one column
        compaction and one ``generation`` bump per touched shard, so
        the rolled-up generation (and with it the result-cache epoch)
        moves once per shard instead of once per id.  Untouched shards
        are left entirely alone.
        """
        groups: "dict[int, list[int]]" = {}
        missing = []
        for sequence_id in sequence_ids:
            sequence_id = int(sequence_id)
            if sequence_id not in self:
                missing.append(sequence_id)
            groups.setdefault(self.shard_index(sequence_id), []).append(sequence_id)
        if missing:
            # Validate the whole batch up front so a bad id deletes
            # nothing from any shard.
            raise EngineError(f"sequences {sorted(set(missing))} not in columnar store")
        for shard_index, ids in groups.items():
            self._shards[shard_index].delete_many(ids)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def check_consistency(self) -> None:
        """Verify every shard's columns plus the id→shard routing."""
        for index, shard in enumerate(self._shards):
            shard.check_consistency()
            ids = shard.sequence_ids
            misrouted = ids[ids % len(self._shards) != index]
            if len(misrouted):
                raise EngineError(
                    f"sequences {misrouted.tolist()} stored in shard {index}, "
                    f"which does not own them"
                )
