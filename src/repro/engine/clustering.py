"""Cluster-representative pruning for top-k similarity search.

The function-series representation already *is* a reduced form of the
raw data; this module reduces it one step further into fixed-dimension
feature vectors and groups each shard's sequences under cluster
representatives, so a top-k query can skip whole clusters without
grading a single member — the BrainEx/GeneX shape of approximate
similarity search (probe representatives, lower-bound prune, refine),
built on the classic GEMINI contract: a cheap lower bound with **no
false dismissals**.

Three layers, all deterministic:

``profile_features``
    One sequence's *profile*: its piecewise-function representation
    resampled at :data:`N_FEATURES` uniformly spaced times across its
    span.  The true distance between two stored sequences is the
    Euclidean distance between their profiles
    (:func:`chunked_distances`, the single kernel both the pruned path
    and the full-grade oracle call — which is what makes the two
    byte-identical).
``sketch_of`` / ``lower_bound_scale``
    The PAA sketch: block means over :data:`SKETCH_DIMS` equal blocks
    of the profile.  For profiles ``q, s``::

        LB(q, s) = scale * ||sketch(q) - sketch(s)||  <=  ||q - s||

    with ``scale = sqrt(block_size)`` (Cauchy-Schwarz per block), so
    pruning on the sketch alone is provably lossless.  The scale is
    additionally deflated by one part in 1e9 so float rounding in the
    8-dimensional norm can never push a bound a last-place digit above
    the true distance.
``ClusterIndex``
    Per-leaf-store index: the profile/sketch matrices plus a sketch
    clustering around ~sqrt(n) evenly-seeded representatives (new
    points join the nearest representative leader-style, within a
    build-time tau).  Representatives are maintained incrementally through insert/extend/delete/append by replaying the
    store's :class:`~repro.engine.journal.MutationJournal`, with a
    staleness-ratio full rebuild
    (:func:`repro.index.maintenance.stale_rebuild_due` — the same
    policy :meth:`repro.index.trie.SymbolTrie.update` applies) once
    incremental reassignments dominate.  Clustering quality only ever
    affects *speed*: the query path compares true distances for every
    candidate it does not prove away, so a badly clustered index
    returns the same answers, just slower.

The query path (:meth:`ClusterIndex.topk`) visits clusters in
ascending representative-lower-bound order, prunes members whose
sketch lower bound exceeds the current k-th best distance, and refines
survivors through the chunked kernel with per-candidate early
abandoning against the same bound — maintaining a bounded max-heap of
``(distance, sequence_id)`` so ties always resolve to the ascending
id, exactly like :meth:`repro.query.results.QueryMatch.sort_key`.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

import numpy as np

from repro.core.errors import EngineError
from repro.index.maintenance import stale_rebuild_due

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.columnar import ColumnarSegmentStore

__all__ = [
    "N_FEATURES",
    "SKETCH_DIMS",
    "profile_features",
    "sketch_of",
    "lower_bound_scale",
    "chunked_distances",
    "ClusterIndex",
]

#: Profile dimensionality: resampled points per sequence.
N_FEATURES = 64
#: Sketch dimensionality: PAA block means per sequence.
SKETCH_DIMS = 8
#: Profile points averaged into one sketch dimension.
_BLOCK = N_FEATURES // SKETCH_DIMS
#: Profile columns accumulated per early-abandon round.
_CHUNK = 8
#: Deflation applied to every lower bound: strict enough that float
#: rounding cannot lift a bound above the true distance, far too small
#: to cost measurable pruning power.
_LB_SAFETY = 1.0 - 1e-9
#: Relative slack on the squared-distance early-abandon limit — the
#: mirror of ``_LB_SAFETY``: abandon only when the partial sum already
#: *strictly* exceeds the bound even after adverse rounding.
_ABANDON_SLACK = 1.0 + 1e-9


def profile_features(
    start_times: np.ndarray,
    end_times: np.ndarray,
    start_values: np.ndarray,
    end_values: np.ndarray,
    n_features: int = N_FEATURES,
) -> np.ndarray:
    """One represented sequence's profile feature vector.

    The piecewise function is sampled at ``n_features`` uniformly
    spaced times across its span via linear interpolation over the
    interleaved segment endpoints.  Interleaving keeps discontinuous
    representations honest: regression segments need not join at their
    boundaries, and a repeated boundary time makes ``np.interp`` take
    the later segment's value there — a fixed, deterministic choice.

    The inputs are exactly the ``start_time``/``end_time``/
    ``start_value``/``end_value`` segment columns, whether read from a
    representation's :meth:`segment_columns` or from the columnar
    store (the store copies those columns verbatim at ingest, so both
    sources yield bit-identical profiles).
    """
    n = len(start_times)
    if n == 0:
        return np.zeros(n_features)
    xp = np.empty(2 * n)
    xp[0::2] = start_times
    xp[1::2] = end_times
    fp = np.empty(2 * n)
    fp[0::2] = start_values
    fp[1::2] = end_values
    ts = xp[0] + (np.arange(n_features) / (n_features - 1)) * (xp[-1] - xp[0])
    return np.interp(ts, xp, fp)


def sketch_of(features: np.ndarray) -> np.ndarray:
    """PAA sketch: block means over the (trailing) profile axis.

    Accepts one profile (1-D) or a stacked profile matrix (2-D); the
    result has :data:`SKETCH_DIMS` entries per profile either way.
    """
    shape = features.shape[:-1] + (SKETCH_DIMS, _BLOCK)
    return features.reshape(shape).mean(axis=-1)


def lower_bound_scale() -> float:
    """Multiplier turning a sketch-space norm into a distance lower
    bound (safety deflation included): ``sqrt(block_size) * (1-1e-9)``."""
    return float(np.sqrt(_BLOCK)) * _LB_SAFETY


def _sketch_gaps(sketches: np.ndarray, query_sketch: np.ndarray) -> np.ndarray:
    """Euclidean norms in sketch space (un-scaled)."""
    diff = sketches - query_sketch
    return np.sqrt((diff * diff).sum(axis=-1))


def chunked_distances(
    rows: np.ndarray,
    query: np.ndarray,
    abandon_above: "float | None" = None,
) -> "tuple[np.ndarray, int]":
    """Euclidean distances from ``query`` to each profile row.

    The one true-distance kernel: squared deviations accumulate in
    fixed :data:`_CHUNK`-column chunks in ascending column order, so
    any two calls — a single scalar grade, a full-store sweep, a
    pruned refine over a gathered candidate subset — produce
    bit-identical floats for the same row.

    With ``abandon_above`` set, a row whose *partial* sum already
    proves its distance strictly above the bound stops accumulating
    (squared deviations are non-negative, so partials only grow); its
    reported distance is ``+inf``.  Returns ``(distances,
    abandoned_count)``.
    """
    rows = np.atleast_2d(np.asarray(rows))
    n, n_columns = rows.shape
    partial = np.zeros(n)
    if abandon_above is None or not np.isfinite(abandon_above):
        for lo in range(0, n_columns, _CHUNK):
            diff = rows[:, lo : lo + _CHUNK] - query[lo : lo + _CHUNK]
            partial += (diff * diff).sum(axis=1)
        return np.sqrt(partial), 0
    limit = float(abandon_above) * float(abandon_above) * _ABANDON_SLACK
    alive = np.ones(n, dtype=bool)
    abandoned = 0
    for lo in range(0, n_columns, _CHUNK):
        live = np.flatnonzero(alive)
        if not len(live):
            break
        diff = rows[live, lo : lo + _CHUNK] - query[lo : lo + _CHUNK]
        partial[live] += (diff * diff).sum(axis=1)
        if lo + _CHUNK < n_columns:
            dead = partial[live] > limit
            if bool(dead.any()):
                alive[live[dead]] = False
                abandoned += int(dead.sum())
    distances = np.sqrt(partial)
    distances[~alive] = np.inf
    return distances, abandoned


class _Cluster:
    """One cluster: representative sketch, members, coverage radius.

    ``radius`` is the largest sketch-space distance from the
    representative to any member *ever admitted* — deletions leave it
    alone (shrinking it is never needed for soundness, only for
    tightness, and the staleness rebuild restores tightness anyway).
    """

    __slots__ = ("representative", "member_ids", "radius")

    def __init__(self, representative: np.ndarray) -> None:
        self.representative = representative
        self.member_ids: "list[int]" = []
        self.radius = 0.0

    def admit(self, sequence_id: int, gap: float) -> None:
        self.member_ids.append(int(sequence_id))
        if gap > self.radius:
            self.radius = float(gap)


class ClusterIndex:
    """Cluster-representative pruning index over one leaf store.

    Lazily built from the store's segment columns on first use
    (``ColumnarSegmentStore.cluster_index()``), then kept in lock-step
    with the store by replaying its mutation journal: each sync
    removes dead ids, re-profiles journal-dirty live ids and reassigns
    them to the nearest representative (or founds a new cluster), and
    a full rebuild runs when the journal has compacted past the last
    synced generation or when :func:`stale_rebuild_due` says
    incremental reassignments have degraded the seeded partition.

    Not safe for concurrent mutation — like the store it mirrors, one
    query evaluates against one shard's index at a time (the scatter
    runs at most one stage task per shard).
    """

    #: Incremental admits join the nearest representative when within
    #: ``_TAU_SLACK`` times the mean assignment gap observed at build
    #: time, else found their own cluster.
    _TAU_SLACK = 2.0
    #: Staleness floor before a ratio rebuild can trigger — lower than
    #: the trie's 256: reassignments erode pruning power faster than
    #: stale trie occurrences erode lookups.
    _STALE_FLOOR = 64

    def __init__(self, store: "ColumnarSegmentStore") -> None:
        self._store = store
        self._ids = np.empty(0, dtype=np.int64)
        self._features = np.empty((0, N_FEATURES))
        self._sketches = np.empty((0, SKETCH_DIMS))
        self._clusters: "list[_Cluster]" = []
        self._cluster_of: "dict[int, _Cluster]" = {}
        # Probe-side view (live clusters, representative matrix, radii,
        # per-cluster row positions) built lazily on the first query
        # after any mutation — queries between mutations reuse it.
        self._probe_cache: "tuple | None" = None
        self._tau = 0.0
        self._synced_generation: "int | None" = None
        self._stale_mutations = 0
        # Lifecycle + pruning telemetry (cumulative, plus last-query).
        self.builds = 0
        self.rebuilds = 0
        self.queries = 0
        self.clusters_probed = 0
        self.clusters_pruned = 0
        self.members_pruned = 0
        self.candidates_refined = 0
        self.early_abandoned = 0
        self.last_rows_considered = 0
        self.last_candidates_refined = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def n_clusters(self) -> int:
        return sum(1 for cluster in self._clusters if cluster.member_ids)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the profile/sketch matrices (the bulk)."""
        return self._ids.nbytes + self._features.nbytes + self._sketches.nbytes

    def report(self) -> dict:
        """Telemetry counters for ``storage_report``."""
        rows = self.last_rows_considered
        last_fraction = (
            1.0 - self.last_candidates_refined / rows if rows else 0.0
        )
        return {
            "built": self._synced_generation is not None,
            "sequences": len(self._ids),
            "representatives": self.n_clusters,
            "builds": self.builds,
            "rebuilds": self.rebuilds,
            "stale_mutations": self._stale_mutations,
            "nbytes": self.nbytes,
            "queries": self.queries,
            "clusters_probed": self.clusters_probed,
            "clusters_pruned": self.clusters_pruned,
            "members_pruned": self.members_pruned,
            "candidates_refined": self.candidates_refined,
            "early_abandoned": self.early_abandoned,
            "last_rows_considered": self.last_rows_considered,
            "last_candidates_refined": self.last_candidates_refined,
            "last_pruned_fraction": last_fraction,
        }

    def features_of(self, sequence_id: int) -> np.ndarray:
        """The stored profile row for one live sequence (a copy)."""
        position = int(np.searchsorted(self._ids, int(sequence_id)))
        if position >= len(self._ids) or self._ids[position] != sequence_id:
            raise EngineError(f"sequence {sequence_id} not in cluster index")
        return self._features[position].copy()

    def all_distances(self, query_features: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """``(sequence_ids, distances)`` for every indexed sequence.

        The full-grade path: the same chunked kernel as the pruned
        refine, over every row — the benchmark baseline and the
        vectorized parity oracle.
        """
        if not len(self._ids):
            return self._ids.copy(), np.empty(0)
        distances, __ = chunked_distances(self._features, query_features)
        return self._ids.copy(), distances

    # ------------------------------------------------------------------
    # Maintenance: journal replay + staleness rebuild
    # ------------------------------------------------------------------

    def sync(self) -> None:
        """Bring the index to the store's current generation.

        Cheap no-op when nothing changed; journal replay for small
        dirty sets; full rebuild when the journal compacted past the
        baseline or accumulated reassignments trip the staleness
        ratio.
        """
        store = self._store
        if self._synced_generation is None:
            self._rebuild()
            return
        if store.generation == self._synced_generation:
            return
        dirty = store.dirty_ids_since((self._synced_generation,))
        if dirty is None:
            self._rebuild()
            return
        self._stale_mutations += len(dirty)
        if stale_rebuild_due(self._stale_mutations, len(self._ids), self._STALE_FLOOR):
            self._rebuild()
            return
        for sequence_id in sorted(dirty):
            self._remove(sequence_id)
            if sequence_id in store:
                self._admit(sequence_id)
        self._synced_generation = store.generation

    def _profile_rows(self, positions: np.ndarray) -> np.ndarray:
        """Profiles for the store rows at ``positions``, one interp each."""
        store = self._store
        start_times = store.segment_column("start_time")
        end_times = store.segment_column("end_time")
        start_values = store.segment_column("start_value")
        end_values = store.segment_column("end_value")
        seg_starts = store.segment_starts
        seg_counts = store.segment_counts
        features = np.empty((len(positions), N_FEATURES))
        for row, position in enumerate(positions):
            lo = int(seg_starts[position])
            hi = lo + int(seg_counts[position])
            features[row] = profile_features(
                start_times[lo:hi], end_times[lo:hi],
                start_values[lo:hi], end_values[lo:hi],
            )
        return features

    def _rebuild(self) -> None:
        """Re-profile and re-cluster the whole store, id-ascending."""
        store = self._store
        was_built = self._synced_generation is not None
        n = store.n_sequences
        self._ids = store.sequence_ids[:n].astype(np.int64, copy=True)
        self._features = self._profile_rows(np.arange(n))
        self._sketches = (
            sketch_of(self._features) if n else np.empty((0, SKETCH_DIMS))
        )
        self._clusters = []
        self._cluster_of = {}
        if n:
            # ~sqrt(n) seed representatives taken at quantiles of the
            # lexicographically *sorted* sketches (deduplicated), then
            # one vectorized nearest-seed assignment — clusters stay
            # small enough that a probe refines O(sqrt(n)) rows, the
            # build avoids the quadratic leader pass, and sorting
            # before seeding spreads seeds over the sketch range no
            # matter how ingest order correlates with shape.  Cluster
            # *quality* only affects speed; any partition is correct
            # under the radius bound.
            n_seeds = min(n, int(np.ceil(np.sqrt(n))))
            sorted_order = np.lexsort(self._sketches.T[::-1])
            seed_positions = sorted_order[(np.arange(n_seeds) * n) // n_seeds]
            seeds = np.unique(self._sketches[seed_positions], axis=0)
            labels = np.empty(n, dtype=np.int64)
            assign_gaps = np.empty(n)
            for lo in range(0, n, 2048):
                block = self._sketches[lo : lo + 2048]
                gaps = np.linalg.norm(
                    block[:, None, :] - seeds[None, :, :], axis=2
                )
                block_labels = np.argmin(gaps, axis=1)
                labels[lo : lo + 2048] = block_labels
                assign_gaps[lo : lo + 2048] = gaps[
                    np.arange(len(block)), block_labels
                ]
            self._clusters = [_Cluster(seed.copy()) for seed in seeds]
            for position in range(n):
                cluster = self._clusters[int(labels[position])]
                sequence_id = int(self._ids[position])
                cluster.admit(sequence_id, float(assign_gaps[position]))
                self._cluster_of[sequence_id] = cluster
            # A degenerate corpus (all-identical sketches) gets tau 0:
            # exact twins still join, anything else founds a cluster.
            self._tau = self._TAU_SLACK * float(assign_gaps.mean())
        else:
            self._tau = 0.0
        self._probe_cache = None
        self._synced_generation = store.generation
        self._stale_mutations = 0
        self.builds += 1
        if was_built:
            self.rebuilds += 1

    def _assign(self, sequence_id: int, sketch: np.ndarray) -> None:
        """Leader rule: join the nearest representative within tau,
        else found a new cluster (deterministic: first-best wins)."""
        self._probe_cache = None
        if self._clusters:
            representatives = np.stack(
                [cluster.representative for cluster in self._clusters]
            )
            gaps = _sketch_gaps(representatives, sketch)
            best = int(np.argmin(gaps))
            if gaps[best] <= self._tau:
                cluster = self._clusters[best]
                cluster.admit(sequence_id, float(gaps[best]))
                self._cluster_of[sequence_id] = cluster
                return
        cluster = _Cluster(sketch.copy())
        cluster.admit(sequence_id, 0.0)
        self._clusters.append(cluster)
        self._cluster_of[sequence_id] = cluster

    def _remove(self, sequence_id: int) -> None:
        cluster = self._cluster_of.pop(sequence_id, None)
        if cluster is None:
            return
        self._probe_cache = None
        cluster.member_ids.remove(sequence_id)
        position = int(np.searchsorted(self._ids, sequence_id))
        self._ids = np.delete(self._ids, position)
        self._features = np.delete(self._features, position, axis=0)
        self._sketches = np.delete(self._sketches, position, axis=0)

    def _admit(self, sequence_id: int) -> None:
        store_position = self._store.position_of(sequence_id)
        row = self._profile_rows(np.array([store_position]))[0]
        sketch = sketch_of(row)
        position = int(np.searchsorted(self._ids, sequence_id))
        self._ids = np.insert(self._ids, position, sequence_id)
        self._features = np.insert(self._features, position, row, axis=0)
        self._sketches = np.insert(self._sketches, position, sketch, axis=0)
        self._assign(sequence_id, sketch)

    # ------------------------------------------------------------------
    # Query: probe representatives -> lower-bound prune -> heap refine
    # ------------------------------------------------------------------

    def topk(
        self,
        query_features: np.ndarray,
        k: int,
        threshold: float = np.inf,
    ) -> "list[tuple[float, int]]":
        """The ``k`` nearest indexed sequences to ``query_features``.

        Returns ascending ``(distance, sequence_id)`` pairs with
        ``distance <= threshold``, identical to computing every true
        distance and sorting — the lower-bound invariant makes every
        prune a proof, and the max-heap compares ``(distance, id)``
        tuples so equal distances resolve to the smaller id.  Call
        :meth:`sync` first (the store accessor does).
        """
        self.queries += 1
        self.last_rows_considered = len(self._ids)
        self.last_candidates_refined = 0
        if k <= 0 or not len(self._ids):
            return []
        query_sketch = sketch_of(np.asarray(query_features))
        scale = lower_bound_scale()
        if self._probe_cache is None:
            live = [cluster for cluster in self._clusters if cluster.member_ids]
            self._probe_cache = (
                live,
                np.stack([cluster.representative for cluster in live]),
                np.array([cluster.radius for cluster in live]),
                [
                    np.searchsorted(
                        self._ids,
                        np.sort(np.asarray(cluster.member_ids, dtype=np.int64)),
                    )
                    for cluster in live
                ],
            )
        live, representatives, radii, positions_of = self._probe_cache
        cluster_bounds = scale * np.maximum(
            0.0, _sketch_gaps(representatives, query_sketch) - radii
        )
        order = np.argsort(cluster_bounds, kind="stable")
        # (-distance, -id) max-heap: the root is the *worst* retained
        # pair under ascending (distance, id), so replacement keeps the
        # k best with the exact sort_key tie-break.
        heap: "list[tuple[float, int]]" = []
        probed = 0
        for rank, cluster_position in enumerate(order):
            bound = threshold if len(heap) < k else min(threshold, -heap[0][0])
            if cluster_bounds[cluster_position] > bound:
                # Bounds ascend and the k-th best only improves: every
                # remaining cluster is pruned by the same comparison.
                self.clusters_pruned += len(order) - rank
                for remaining in order[rank:]:
                    self.members_pruned += len(live[int(remaining)].member_ids)
                break
            probed += 1
            member_positions = positions_of[int(cluster_position)]
            member_bounds = scale * _sketch_gaps(
                self._sketches[member_positions], query_sketch
            )
            surviving = member_bounds <= bound
            self.members_pruned += int(len(member_positions) - surviving.sum())
            if not bool(surviving.any()):
                continue
            refine_positions = member_positions[surviving]
            self.candidates_refined += len(refine_positions)
            self.last_candidates_refined += len(refine_positions)
            distances, abandoned = chunked_distances(
                self._features[refine_positions], query_features, abandon_above=bound
            )
            self.early_abandoned += abandoned
            for offset in np.flatnonzero(np.isfinite(distances)):
                distance = float(distances[offset])
                if distance > threshold:
                    continue
                item = (-distance, -int(self._ids[refine_positions[offset]]))
                if len(heap) < k:
                    heapq.heappush(heap, item)
                elif item > heap[0]:
                    heapq.heapreplace(heap, item)
        self.clusters_probed += probed
        return sorted((-distance, -negated_id) for distance, negated_id in heap)
