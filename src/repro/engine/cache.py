"""Plan-level result caching keyed on query content and store generation.

Query answers only change when the data changes.  The columnar store
tracks that precisely — every ``insert``/``extend``/``append``/``delete``
bumps its :attr:`~repro.engine.columnar.ColumnarSegmentStore.generation`
and records the touched ids in its
:class:`~repro.engine.journal.MutationJournal` — so a graded result
list can be reused verbatim for as long as the generation it was
computed at stays current, and *repaired* rather than discarded when it
does not.  :class:`PlanResultCache` implements that contract:

* entries are keyed on ``(query fingerprint, include_approximate)`` —
  extended to ``(fingerprint, include_approximate, limit)`` for top-k /
  limited plans, so the same query at different ``k`` caches separately
  — where the fingerprint is the query's *content* key (see
  :meth:`repro.query.queries.Query.fingerprint`) — never an ``id()``,
  which can be recycled;
* each entry remembers the generation token it was computed at (the
  database combines the store generation with its pipeline config, see
  ``SequenceDatabase.cache_epoch``) plus the store's per-shard
  generation *vector*; a lookup at any other token is a miss, but the
  stale entry is **retained**: the executor replays the mutation
  journal since the entry's vector, re-grades only the dirty ids
  (:meth:`repro.engine.executor.QueryExecutor.run_stages_subset`) and
  :meth:`revalidate`-s the entry in place — falling back to a full
  re-grade when the journal has compacted past the baseline;
* capacity is bounded two ways, both with LRU eviction: an entry count
  (``max_entries``) and an estimated *byte* budget (``max_bytes``)
  covering each entry's result payload and fingerprint key.  Byte
  accounting always reflects the entry's *current* payload — a
  revalidated entry is re-estimated from its patched match list, so
  eviction pressure stays truthful after any number of deltas.
  `QueryMatch` objects are frozen, so sharing them across callers is
  safe (the returned list itself is fresh per call).

A hit skips every plan stage; a delta revalidation skips them for all
but the dirty ids.  ``SequenceDatabase.explain`` surfaces the would-be
outcome, and :meth:`stats` (exposed through
``SequenceDatabase.storage_report``) reports hits / misses /
invalidations / evictions plus ``revalidations`` / ``delta_hits`` /
``delta_fallbacks`` and the estimated resident bytes.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.core.errors import EngineError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.results import QueryMatch

__all__ = ["PlanResultCache"]

#: Fixed overhead charged per entry: the OrderedDict slot, the entry
#: object, and the generation token + vector.
_ENTRY_OVERHEAD = 240


def _flat_sizeof(value: object) -> int:
    """Estimated deep size of a (possibly nested) fingerprint tuple.

    Fingerprints are small tuples of scalars/strings by contract, so a
    shallow recursion over tuples is exact enough for budgeting.
    """
    size = sys.getsizeof(value)
    if isinstance(value, tuple):
        size += sum(_flat_sizeof(item) for item in value)
    return size


def _estimate_entry_bytes(key: tuple, matches: "tuple[QueryMatch, ...]") -> int:
    """Estimated resident cost of one cache entry.

    Counts the fingerprint key and, per match, the frozen dataclass,
    its name string and its deviation records.  An estimate (Python
    object graphs share plenty), but a *monotone* one: more matches or
    fatter fingerprints always cost more, which is all eviction needs.
    """
    cost = _ENTRY_OVERHEAD + _flat_sizeof(key)
    for match in matches:
        cost += 96 + sys.getsizeof(match.name)
        cost += 120 * len(match.deviations)
    return cost


class _CacheEntry:
    """One remembered answer with its epoch, baseline vector and cost."""

    __slots__ = ("epoch", "payload", "entry_bytes", "vector", "stale_seen")

    def __init__(self, epoch, payload, entry_bytes, vector) -> None:
        self.epoch = epoch
        self.payload = payload
        self.entry_bytes = entry_bytes
        self.vector = vector
        #: Whether this entry has already been counted as invalidated
        #: (it is retained for delta revalidation, so repeated stale
        #: lookups must not inflate the counter).
        self.stale_seen = False


class PlanResultCache:
    """LRU cache of graded result lists with delta revalidation support.

    Parameters
    ----------
    max_entries:
        Hard cap on the number of cached answers.
    max_bytes:
        Estimated-byte budget across all entries (result payloads plus
        fingerprint keys); ``None`` disables the byte bound.  A single
        answer larger than the whole budget is not cached at all
        (tracked as ``oversized`` in :meth:`stats`) — storing it would
        just evict everything else for one entry.
    """

    def __init__(self, max_entries: int = 256, max_bytes: "int | None" = 32 * 1024 * 1024) -> None:
        if max_entries <= 0:
            raise EngineError("cache capacity must be positive")
        if max_bytes is not None and max_bytes <= 0:
            raise EngineError("cache byte budget must be positive (or None for unbounded)")
        self.max_entries = int(max_entries)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        #: Serializes every read *and* write: concurrent serving runs
        #: queries from many threads against one cache, and even lookup
        #: mutates shared state (LRU order, hit/miss counters).  An
        #: RLock (not a plain Lock) so a future caller composing two
        #: public methods under the lock cannot deadlock itself.
        self._lock = threading.RLock()
        self._entries: "OrderedDict[tuple, _CacheEntry]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.oversized = 0
        self.revalidations = 0
        self.delta_hits = 0
        self.delta_fallbacks = 0
        self.topk_refills = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def estimated_bytes(self) -> int:
        """Estimated resident bytes across every cached entry."""
        return self._bytes

    def lookup(self, key: tuple, generation: object) -> "list[QueryMatch] | None":
        """Cached result list for ``key`` at generation token
        ``generation`` (any equality-comparable value — the database
        passes its ``cache_epoch()`` tuple), or None.

        A stale entry (computed at another generation) counts as a miss
        and as one invalidation, but is *retained* so the executor can
        delta-revalidate it (see :meth:`stale_entry`); it stays until
        replaced, evicted or cleared.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if entry.epoch != generation:
                if not entry.stale_seen:
                    entry.stale_seen = True
                    self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return list(entry.payload)

    def stale_entry(self, key: tuple, generation: object) -> "tuple | None":
        """The retained stale entry for ``key``, if any.

        Returns ``(epoch, matches, vector)`` for an entry whose epoch
        differs from ``generation`` — the raw material for a delta
        revalidation — without touching stats or LRU order.  ``None``
        when the key is absent or the entry is current.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.epoch == generation:
                return None
            return (entry.epoch, entry.payload, entry.vector)

    def store(
        self,
        key: tuple,
        generation: object,
        matches: "list[QueryMatch]",
        *,
        vector: "tuple | None" = None,
    ) -> None:
        """Remember a freshly computed result list at its generation.

        ``vector`` is the store's per-shard generation baseline
        (``generation_vector()``); entries without one can never be
        delta-revalidated, only replaced.
        """
        payload = tuple(matches)
        entry_bytes = _estimate_entry_bytes(key, payload)
        with self._lock:
            if self.max_bytes is not None and entry_bytes > self.max_bytes:
                self._discard(key)
                self.oversized += 1
                return
            self._discard(key)
            self._entries[key] = _CacheEntry(generation, payload, entry_bytes, vector)
            self._bytes += entry_bytes
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries or (
                self.max_bytes is not None and self._bytes > self.max_bytes
            ):
                __, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.entry_bytes
                self.evictions += 1

    def revalidate(
        self,
        key: tuple,
        generation: object,
        vector: "tuple | None",
        matches: "list[QueryMatch]",
        dirty_count: "int | None",
        refill: bool = False,
    ) -> None:
        """Refresh a stale entry in place at a new generation.

        ``dirty_count`` names how many ids the journal replay re-graded
        (counted as a ``delta_hit``); ``None`` records a fallback full
        re-grade (journal compacted past the baseline).  ``refill=True``
        marks a top-k heap patch that could not prove its k-th boundary
        from survivors alone and had to re-run the pruned search — it is
        counted as ``topk_refills`` *in addition to* the hit/fallback
        outcome.  Byte accounting is recomputed from the *patched*
        payload, so a heavily patched entry weighs exactly what it
        currently holds.
        """
        with self._lock:
            self.revalidations += 1
            if dirty_count is None:
                self.delta_fallbacks += 1
            else:
                self.delta_hits += 1
            if refill:
                self.topk_refills += 1
            self.store(key, generation, matches, vector=vector)

    def _discard(self, key: tuple) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._bytes -= entry.entry_bytes

    def peek(self, key: tuple, generation: object) -> bool:
        """Whether a lookup would hit, without touching stats or LRU order."""
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and entry.epoch == generation

    def export_entries(self, generation: object) -> "list[tuple[tuple, tuple]]":
        """``(key, matches)`` pairs for every entry current at
        ``generation`` — the warm set a cache snapshot persists."""
        with self._lock:
            return [
                (key, entry.payload)
                for key, entry in self._entries.items()
                if entry.epoch == generation
            ]

    def clear(self) -> None:
        """Drop every entry (stats are kept; they are running totals)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> dict:
        """Counters for benchmarks/monitoring."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "topk_entries": sum(1 for key in self._entries if len(key) > 2),
                "estimated_bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
                "oversized": self.oversized,
                "revalidations": self.revalidations,
                "delta_hits": self.delta_hits,
                "delta_fallbacks": self.delta_fallbacks,
                "topk_refills": self.topk_refills,
            }
