"""Plan-level result caching keyed on query content and store generation.

Query answers only change when the data changes.  The columnar store
already tracks that precisely — every ``insert``/``extend``/``delete``
bumps its :attr:`~repro.engine.columnar.ColumnarSegmentStore.generation`
(and a sharded store rolls its per-shard counters up into one monotone
token) — so a graded result list can be reused verbatim for as long as
the generation it was computed at stays current.
:class:`PlanResultCache` implements exactly that contract:

* entries are keyed on ``(query fingerprint, include_approximate)``,
  where the fingerprint is the query's *content* key (see
  :meth:`repro.query.queries.Query.fingerprint`) — never an ``id()``,
  which can be recycled;
* each entry remembers the generation token it was computed at (the
  database combines the store generation with its pipeline config, see
  ``SequenceDatabase.cache_epoch``); a lookup at any other token is a
  miss and drops the stale entry, so ingest, deletion and config
  reassignment invalidate implicitly and immediately;
* capacity is bounded two ways, both with LRU eviction: an entry count
  (``max_entries``) and an estimated *byte* budget (``max_bytes``)
  covering each entry's result payload and fingerprint key, so a
  handful of huge result lists cannot hold the memory of thousands of
  small ones.  `QueryMatch` objects are frozen, so sharing them across
  callers is safe (the returned list itself is fresh per call).

A hit skips every plan stage — no index probe, no columnar scan, no
grading.  ``SequenceDatabase.explain`` surfaces the would-be outcome,
and :meth:`stats` (exposed through ``SequenceDatabase.storage_report``)
reports hits/misses/invalidations/evictions and the estimated resident
bytes for benchmarks and monitoring.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.core.errors import EngineError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.results import QueryMatch

__all__ = ["PlanResultCache"]

#: Fixed overhead charged per entry: the OrderedDict slot, the entry
#: tuple, and the generation token.
_ENTRY_OVERHEAD = 200


def _flat_sizeof(value: object) -> int:
    """Estimated deep size of a (possibly nested) fingerprint tuple.

    Fingerprints are small tuples of scalars/strings by contract, so a
    shallow recursion over tuples is exact enough for budgeting.
    """
    size = sys.getsizeof(value)
    if isinstance(value, tuple):
        size += sum(_flat_sizeof(item) for item in value)
    return size


def _estimate_entry_bytes(key: tuple, matches: "tuple[QueryMatch, ...]") -> int:
    """Estimated resident cost of one cache entry.

    Counts the fingerprint key and, per match, the frozen dataclass,
    its name string and its deviation records.  An estimate (Python
    object graphs share plenty), but a *monotone* one: more matches or
    fatter fingerprints always cost more, which is all eviction needs.
    """
    cost = _ENTRY_OVERHEAD + _flat_sizeof(key)
    for match in matches:
        cost += 96 + sys.getsizeof(match.name)
        cost += 120 * len(match.deviations)
    return cost


class PlanResultCache:
    """LRU cache of graded result lists, invalidated by store generation.

    Parameters
    ----------
    max_entries:
        Hard cap on the number of cached answers.
    max_bytes:
        Estimated-byte budget across all entries (result payloads plus
        fingerprint keys); ``None`` disables the byte bound.  A single
        answer larger than the whole budget is not cached at all
        (tracked as ``oversized`` in :meth:`stats`) — storing it would
        just evict everything else for one entry.
    """

    def __init__(self, max_entries: int = 256, max_bytes: "int | None" = 32 * 1024 * 1024) -> None:
        if max_entries <= 0:
            raise EngineError("cache capacity must be positive")
        if max_bytes is not None and max_bytes <= 0:
            raise EngineError("cache byte budget must be positive (or None for unbounded)")
        self.max_entries = int(max_entries)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self._entries: "OrderedDict[tuple, tuple[object, tuple[QueryMatch, ...], int]]" = (
            OrderedDict()
        )
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.oversized = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def estimated_bytes(self) -> int:
        """Estimated resident bytes across every cached entry."""
        return self._bytes

    def lookup(self, key: tuple, generation) -> "list[QueryMatch] | None":
        """Cached result list for ``key`` at generation token
        ``generation`` (any equality-comparable value — the database
        passes its ``cache_epoch()`` tuple), or None.

        A stale entry (computed at another generation) counts as a miss
        and is evicted on the spot.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        cached_generation, matches, entry_bytes = entry
        if cached_generation != generation:
            del self._entries[key]
            self._bytes -= entry_bytes
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return list(matches)

    def store(self, key: tuple, generation, matches: "list[QueryMatch]") -> None:
        """Remember a freshly computed result list at its generation."""
        payload = tuple(matches)
        entry_bytes = _estimate_entry_bytes(key, payload)
        if self.max_bytes is not None and entry_bytes > self.max_bytes:
            self._discard(key)
            self.oversized += 1
            return
        self._discard(key)
        self._entries[key] = (generation, payload, entry_bytes)
        self._bytes += entry_bytes
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries or (
            self.max_bytes is not None and self._bytes > self.max_bytes
        ):
            __, (___, ____, evicted_bytes) = self._entries.popitem(last=False)
            self._bytes -= evicted_bytes
            self.evictions += 1

    def _discard(self, key: tuple) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._bytes -= entry[2]

    def peek(self, key: tuple, generation) -> bool:
        """Whether a lookup would hit, without touching stats or LRU order."""
        entry = self._entries.get(key)
        return entry is not None and entry[0] == generation

    def clear(self) -> None:
        """Drop every entry (stats are kept; they are running totals)."""
        self._entries.clear()
        self._bytes = 0

    def stats(self) -> dict:
        """Counters for benchmarks/monitoring."""
        return {
            "entries": len(self._entries),
            "estimated_bytes": self._bytes,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "oversized": self.oversized,
        }
