"""Plan-level result caching keyed on query content and store generation.

Query answers only change when the data changes.  The columnar store
already tracks that precisely — every ``insert``/``extend``/``delete``
bumps its :attr:`~repro.engine.columnar.ColumnarSegmentStore.generation`
— so a graded result list can be reused verbatim for as long as the
generation it was computed at stays current.  :class:`PlanResultCache`
implements exactly that contract:

* entries are keyed on ``(query fingerprint, include_approximate)``,
  where the fingerprint is the query's *content* key (see
  :meth:`repro.query.queries.Query.fingerprint`) — never an ``id()``,
  which can be recycled;
* each entry remembers the generation token it was computed at (the
  database combines the store generation with its pipeline config, see
  ``SequenceDatabase.cache_epoch``); a lookup at any other token is a
  miss and drops the stale entry, so ingest, deletion and config
  reassignment invalidate implicitly and immediately;
* capacity is bounded with LRU eviction, and `QueryMatch` objects are
  frozen, so sharing them across callers is safe (the returned list
  itself is fresh per call).

A hit skips every plan stage — no index probe, no columnar scan, no
grading.  ``SequenceDatabase.explain`` surfaces the would-be outcome,
and :attr:`hits`/:attr:`misses`/:attr:`invalidations` expose running
totals for benchmarks and monitoring.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.core.errors import EngineError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.results import QueryMatch

__all__ = ["PlanResultCache"]


class PlanResultCache:
    """LRU cache of graded result lists, invalidated by store generation."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries <= 0:
            raise EngineError("cache capacity must be positive")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[tuple, tuple[object, tuple[QueryMatch, ...]]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple, generation) -> "list[QueryMatch] | None":
        """Cached result list for ``key`` at generation token
        ``generation`` (any equality-comparable value — the database
        passes its ``cache_epoch()`` tuple), or None.

        A stale entry (computed at another generation) counts as a miss
        and is evicted on the spot.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        cached_generation, matches = entry
        if cached_generation != generation:
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return list(matches)

    def store(self, key: tuple, generation, matches: "list[QueryMatch]") -> None:
        """Remember a freshly computed result list at its generation."""
        self._entries[key] = (generation, tuple(matches))
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def peek(self, key: tuple, generation) -> bool:
        """Whether a lookup would hit, without touching stats or LRU order."""
        entry = self._entries.get(key)
        return entry is not None and entry[0] == generation

    def clear(self) -> None:
        """Drop every entry (stats are kept; they are running totals)."""
        self._entries.clear()

    def stats(self) -> dict:
        """Counters for benchmarks/monitoring."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
        }
