"""Vectorized pattern matching over the store's symbol columns.

:class:`ColumnPatternMatcher` takes a pattern tabulated by
:func:`repro.patterns.automata.compile_table` and runs its transition
table across the columnar store's ``int8`` slope-sign columns with
NumPy: one state vector holds every candidate sequence's DFA state, and
each iteration advances *all* still-alive sequences by one symbol with
a single fancy-indexing gather.  Total work is ``O(max_length)`` NumPy
steps regardless of how many sequences are stored — the per-sequence
Python NFA loop disappears, which is where the engine's PatternQuery
speedup comes from.

Symbol codes are the store's convention (+1 rising, -1 falling, 0
flat); the table's alphabet must be
:data:`~repro.patterns.automata.SLOPE_ALPHABET` so that ``code + 1`` is
the table column.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import EngineError
from repro.core.representation import SYMBOL_CODES
from repro.patterns.automata import SLOPE_ALPHABET, TransitionTable, compile_table
from repro.patterns.regex import SymbolPattern

__all__ = ["ColumnPatternMatcher"]

# The column arithmetic below (table column = symbol code + 1) is only
# valid if the tabulation alphabet lists symbols in code order.
for _symbol, _code in SYMBOL_CODES.items():
    if SLOPE_ALPHABET[_code + 1] != _symbol:  # pragma: no cover - layout guard
        raise EngineError("SLOPE_ALPHABET order must match SYMBOL_CODES")


class ColumnPatternMatcher:
    """Batch full-match of one compiled pattern against symbol columns."""

    def __init__(self, table: TransitionTable) -> None:
        if table.alphabet != SLOPE_ALPHABET:
            raise EngineError(
                f"column matching needs alphabet {SLOPE_ALPHABET!r}, "
                f"got {table.alphabet!r}"
            )
        self.table = table

    @classmethod
    def for_pattern(cls, pattern: "SymbolPattern | str") -> "ColumnPatternMatcher":
        """Tabulate a pattern over the slope alphabet and wrap it.

        Raises :class:`PatternSyntaxError` if the pattern exceeds the
        tabulation budget; callers treat that as "use the NFA path".
        """
        return cls(compile_table(pattern, alphabet=SLOPE_ALPHABET))

    def fullmatch_column(
        self,
        symbols: np.ndarray,
        starts: np.ndarray,
        counts: np.ndarray,
    ) -> np.ndarray:
        """Which of many packed symbol strings the pattern fully matches.

        ``symbols`` is a concatenated int8 code column; string ``i``
        occupies rows ``starts[i] : starts[i] + counts[i]``.  Returns a
        boolean array aligned with ``starts``/``counts``.
        """
        starts = np.asarray(starts, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        n = len(starts)
        transitions = self.table.table
        states = np.full(n, self.table.start, dtype=np.int32)
        if n:
            symbols = np.asarray(symbols)
            max_length = int(counts.max())
            alive = np.arange(n, dtype=np.int64)
            for step in range(max_length):
                # Keep only sequences that still have input and are not
                # already in the absorbing reject state.
                keep = (counts[alive] > step) & (states[alive] != self.table.dead)
                alive = alive[keep]
                if len(alive) == 0:
                    break
                # Gather only the alive rows; +1 maps the int8 code to
                # its table column (SLOPE_ALPHABET order), so the full
                # column is never copied or upcast.
                states[alive] = transitions[states[alive], symbols[starts[alive] + step] + 1]
        return self.table.accepting[states]

    def fullmatch_strings(self, symbol_strings: "list[str]") -> np.ndarray:
        """Batch full-match of plain ``{+,-,0}`` strings (test helper)."""
        codes = {symbol: np.int8(code) for symbol, code in SYMBOL_CODES.items()}
        counts = np.asarray([len(s) for s in symbol_strings], dtype=np.int64)
        starts = np.zeros(len(counts), dtype=np.int64)
        if len(counts):
            np.cumsum(counts[:-1], out=starts[1:])
        packed = np.asarray(
            [codes[symbol] for text in symbol_strings for symbol in text], dtype=np.int8
        )
        return self.fullmatch_column(packed, starts, counts)
