"""MVCC-lite snapshot tokens for reads concurrent with writers.

A query pins the store's per-shard :meth:`generation_vector` (plus the
per-shard write seqlocks, when the store exposes them) at plan time.
The executor validates the pin per shard at scatter time and again
after grading; any observed movement raises :class:`SnapshotMoved`,
and the executor retries the whole read against a freshly pinned
snapshot instead of returning torn results.  Writers keep journaling
exactly as before — the token is read-side only.

Seqlock convention (see ``ColumnarSegmentStore``): a shard's write
seqlock is incremented to *odd* on mutation entry and back to *even*
after the generation bump and journal record.  A token captured while
any seqlock is odd is *unsettled* — the executor re-pins rather than
racing an in-flight writer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import EngineError

__all__ = ["SnapshotMoved", "SnapshotToken"]


class SnapshotMoved(EngineError):
    """A pinned read observed shard state newer than its snapshot."""


def _read_seqlocks(store: object) -> "tuple[int, ...] | None":
    token_fn = getattr(store, "read_token", None)
    if not callable(token_fn):
        return None
    return tuple(int(value) for value in token_fn())


@dataclass(frozen=True)
class SnapshotToken:
    """A pinned view of per-shard store state.

    ``generations`` mirrors ``store.generation_vector()``; ``seqlocks``
    mirrors ``store.read_token()`` (``None`` for duck-typed stores
    without one).  ``settled`` is ``False`` when the capture raced an
    in-flight writer and must be re-pinned before use.
    """

    generations: "tuple[int, ...]"
    seqlocks: "tuple[int, ...] | None"
    settled: bool = True

    @classmethod
    def pin(cls, store: object) -> "SnapshotToken | None":
        """Capture a snapshot of ``store``; ``None`` if it has no vector."""
        vector_fn = getattr(store, "generation_vector", None)
        if not callable(vector_fn):
            return None
        before = _read_seqlocks(store)
        generations = tuple(int(value) for value in vector_fn())
        after = _read_seqlocks(store)
        settled = before == after and (
            before is None or all(value % 2 == 0 for value in before)
        )
        return cls(generations=generations, seqlocks=after, settled=settled)

    def moved(self, store: object) -> "list[int]":
        """Indices of shards whose state moved past this snapshot."""
        vector_fn = getattr(store, "generation_vector", None)
        if not callable(vector_fn):
            return []
        current = tuple(int(value) for value in vector_fn())
        if len(current) != len(self.generations):
            return list(range(max(len(current), len(self.generations))))
        shifted = [
            index
            for index, (pinned, now) in enumerate(zip(self.generations, current))
            if pinned != now
        ]
        if self.seqlocks is not None:
            locks = _read_seqlocks(store)
            if locks is not None and len(locks) == len(self.seqlocks):
                for index, (pinned, now) in enumerate(zip(self.seqlocks, locks)):
                    if (pinned != now or now % 2 == 1) and index not in shifted:
                        shifted.append(index)
                shifted.sort()
        return shifted

    def validate(self, store: object) -> None:
        """Raise :class:`SnapshotMoved` if any shard moved past the pin."""
        shifted = self.moved(store)
        if shifted:
            raise SnapshotMoved(
                "snapshot moved for shard(s) "
                + ", ".join(str(index) for index in shifted)
            )
