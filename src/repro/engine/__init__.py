"""Execution engine: columnar storage and vectorized query plans.

The engine layer stores every ingested representation column-wise
(:class:`ColumnarSegmentStore`) and evaluates queries as staged plans
(:class:`QueryPlan`) of index probe, columnar prefilter, vectorized
grading and residual per-sequence grading, built by the
:class:`QueryPlanner` and run by the :class:`QueryExecutor`.
"""

from repro.engine.columnar import ColumnarSegmentStore
from repro.engine.executor import QueryExecutor, QueryPlanner
from repro.engine.plan import DimensionColumn, QueryPlan, VectorVerdicts

__all__ = [
    "ColumnarSegmentStore",
    "QueryPlan",
    "QueryPlanner",
    "QueryExecutor",
    "DimensionColumn",
    "VectorVerdicts",
]
