"""Execution engine: columnar storage and vectorized query plans.

The engine layer stores every ingested representation column-wise
(:class:`ColumnarSegmentStore`, including the int8 slope-sign symbol
columns) — optionally split into independent per-sequence shards
(:class:`ShardedSegmentStore`) — and evaluates queries as staged plans
(:class:`QueryPlan`) of index probe, columnar prefilter, vectorized
grading and residual per-sequence grading, built by the
:class:`QueryPlanner` and run by the :class:`QueryExecutor`.  On a
sharded store the per-store stages scatter across shards and gather
deterministically; :class:`ParallelExecutor` runs the scatter on a
thread pool.  Pattern queries vectorize through
:class:`ColumnPatternMatcher` (a tabulated DFA run over the symbol
columns), and graded result lists are memoized per store generation by
:class:`PlanResultCache` under entry-count and byte budgets.  Every
mutation additionally records its touched ids in a per-shard
:class:`MutationJournal`, which the executor replays to
*delta-revalidate* stale cached answers — only the journal-dirty ids
re-grade (:meth:`QueryExecutor.run_stages_subset`), the cached verdict
list is patched in place, and a compacted journal falls back to a full
re-grade.

Concurrent serving adds snapshot reads and a process backend: every
execution pins a :class:`SnapshotToken` (per-shard generations plus
seqlock words) and retries — never returns — a read that observed a
concurrent mutation (:class:`SnapshotMoved`); shard columns can be
backed by named shared-memory blocks (:class:`SharedMemoryArena`) so
:class:`ProcessParallelExecutor` scatters stages to worker *processes*
that attach the blocks by name, zero-copy, and re-run the same stage
code byte-identically.

Top-k similarity search adds a pruned path: each leaf store lazily
builds a :class:`ClusterIndex` (:mod:`repro.engine.clustering`) —
profile features, PAA sketches and seeded sketch clusters maintained through
the same mutation journal — and a top-k plan's single stage probes
representatives, prunes on a provable distance lower bound and
heap-refines survivors with early abandoning, per shard, merged and
cut at ``k`` by the executor.

Succinct symbol columns (:mod:`repro.engine.succinct`) add a scan-free
counting path: under ``symbol_backend="succinct"`` each leaf store
lazily builds a :class:`SuccinctSymbolIndex` — rank/select bitvectors
composed into wavelet matrices over both symbol views, maintained
through the same mutation journal — and count/position queries answer
from rank/select probes, byte-identical to the uncompressed scan
oracle.
"""

from repro.engine.cache import PlanResultCache
from repro.engine.clustering import ClusterIndex
from repro.engine.columnar import SYMBOL_BACKENDS, ColumnarSegmentStore
from repro.engine.executor import QueryExecutor, QueryPlanner
from repro.engine.journal import JournalEntry, MutationJournal
from repro.engine.nfa import ColumnPatternMatcher
from repro.engine.parallel import ParallelExecutor
from repro.engine.plan import DimensionColumn, QueryPlan, VectorVerdicts
from repro.engine.procpool import ProcessParallelExecutor
from repro.engine.sharding import ShardedSegmentStore
from repro.engine.shm import SharedMemoryArena
from repro.engine.snapshot import SnapshotMoved, SnapshotToken
from repro.engine.succinct import BitVector, SuccinctSymbolIndex, WaveletMatrix

__all__ = [
    "BitVector",
    "ClusterIndex",
    "ColumnarSegmentStore",
    "SuccinctSymbolIndex",
    "SYMBOL_BACKENDS",
    "WaveletMatrix",
    "ColumnPatternMatcher",
    "JournalEntry",
    "MutationJournal",
    "ParallelExecutor",
    "PlanResultCache",
    "ProcessParallelExecutor",
    "QueryPlan",
    "QueryPlanner",
    "QueryExecutor",
    "ShardedSegmentStore",
    "SharedMemoryArena",
    "SnapshotMoved",
    "SnapshotToken",
    "DimensionColumn",
    "VectorVerdicts",
]
