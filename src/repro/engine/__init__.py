"""Execution engine: columnar storage and vectorized query plans.

The engine layer stores every ingested representation column-wise
(:class:`ColumnarSegmentStore`, including the int8 slope-sign symbol
columns) — optionally split into independent per-sequence shards
(:class:`ShardedSegmentStore`) — and evaluates queries as staged plans
(:class:`QueryPlan`) of index probe, columnar prefilter, vectorized
grading and residual per-sequence grading, built by the
:class:`QueryPlanner` and run by the :class:`QueryExecutor`.  On a
sharded store the per-store stages scatter across shards and gather
deterministically; :class:`ParallelExecutor` runs the scatter on a
thread pool.  Pattern queries vectorize through
:class:`ColumnPatternMatcher` (a tabulated DFA run over the symbol
columns), and graded result lists are memoized per store generation by
:class:`PlanResultCache` under entry-count and byte budgets.
"""

from repro.engine.cache import PlanResultCache
from repro.engine.columnar import ColumnarSegmentStore
from repro.engine.executor import QueryExecutor, QueryPlanner
from repro.engine.nfa import ColumnPatternMatcher
from repro.engine.parallel import ParallelExecutor
from repro.engine.plan import DimensionColumn, QueryPlan, VectorVerdicts
from repro.engine.sharding import ShardedSegmentStore

__all__ = [
    "ColumnarSegmentStore",
    "ColumnPatternMatcher",
    "ParallelExecutor",
    "PlanResultCache",
    "QueryPlan",
    "QueryPlanner",
    "QueryExecutor",
    "ShardedSegmentStore",
    "DimensionColumn",
    "VectorVerdicts",
]
