"""Execution engine: columnar storage and vectorized query plans.

The engine layer stores every ingested representation column-wise
(:class:`ColumnarSegmentStore`, including the int8 slope-sign symbol
columns) and evaluates queries as staged plans (:class:`QueryPlan`) of
index probe, columnar prefilter, vectorized grading and residual
per-sequence grading, built by the :class:`QueryPlanner` and run by the
:class:`QueryExecutor`.  Pattern queries vectorize through
:class:`ColumnPatternMatcher` (a tabulated DFA run over the symbol
columns), and graded result lists are memoized per store generation by
:class:`PlanResultCache`.
"""

from repro.engine.cache import PlanResultCache
from repro.engine.columnar import ColumnarSegmentStore
from repro.engine.executor import QueryExecutor, QueryPlanner
from repro.engine.nfa import ColumnPatternMatcher
from repro.engine.plan import DimensionColumn, QueryPlan, VectorVerdicts

__all__ = [
    "ColumnarSegmentStore",
    "ColumnPatternMatcher",
    "PlanResultCache",
    "QueryPlan",
    "QueryPlanner",
    "QueryExecutor",
    "DimensionColumn",
    "VectorVerdicts",
]
