"""Planner and executor: vectorized scatter-gather query evaluation.

The planner asks each query for its staged :class:`QueryPlan`; the
executor runs the stages against a database and its columnar store.
Queries that supply a ``vector_filter`` are graded entirely in NumPy —
the executor applies the same grading rule as
:func:`repro.core.tolerance.grade_deviations` to whole columns at once
and materializes :class:`QueryMatch` objects only for the sequences
that survive, so results are identical to the legacy per-sequence path
while the hot loop disappears.

When the database's store is sharded (:mod:`repro.engine.sharding`) the
per-store stages — columnar prefilter and vectorized grading — are
*scattered*: each shard runs the stage over its own columns and the
per-shard outputs are gathered and merged (candidate unions, verdict
concatenation in ascending id order) before grading materializes.  The
index probe runs once, against the database-wide indexes.  The base
executor scatters serially; :class:`repro.engine.parallel.ParallelExecutor`
overrides :meth:`QueryExecutor._scatter` with a thread pool — results
are collected by shard position, so answers are identical for any
worker count, any shard count, and the single unsharded store.

Top-k plans (``plan.topk`` set) scatter the pruned search itself: each
shard runs probe-representatives → lower-bound-prune → heap-refine over
its own cluster index (:mod:`repro.engine.clustering`) and returns its
partial top-k heap as a sorted match list; the executor merges the
partials by :meth:`QueryMatch.sort_key` — ``(grade, deviation, id)``,
so ties break on ascending sequence id — and cuts the merged list at
``plan.limit``.  Plans with ``limit`` but no ``topk`` stage simply
truncate their sorted matches.  Cached limited answers are repaired by
a *heap patch*: dirty ids are re-graded, survivors keep their order,
and the patched list is provably exact whenever the old k-th boundary
still covers ``limit`` candidates — otherwise the pruned search re-runs
(a bounded *re-fill*, counted by the cache as ``topk_refills``).
"""

from __future__ import annotations

import bisect
import time
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.tolerance import (
    EXACT_EPSILON,
    WITHIN_EPSILON,
    DimensionDeviation,
    MatchGrade,
)
from repro.engine.cache import PlanResultCache
from repro.engine.plan import DimensionColumn, QueryPlan, VectorVerdicts
from repro.engine.snapshot import SnapshotMoved, SnapshotToken
from repro.query.results import QueryMatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.columnar import ColumnarSegmentStore
    from repro.query.database import SequenceDatabase
    from repro.query.queries import Query

__all__ = ["QueryPlanner", "QueryExecutor"]


class QueryPlanner:
    """Turns queries into staged plans.

    For a human-readable account of what a query will do, use
    ``SequenceDatabase.explain``, which renders ``plan(...).describe()``
    plus the result cache's verdict.
    """

    def plan(self, query: "Query", database: "SequenceDatabase") -> QueryPlan:
        return query.plan(database)


_SNAPSHOT_ATTEMPTS = 5
_SNAPSHOT_BACKOFF_S = 0.0005


def _mutation_seq(database: "SequenceDatabase") -> "int | None":
    """The database-level mutation seqlock, ``None`` for duck-typed dbs."""
    seq = getattr(database, "mutation_seq", None)
    return seq if isinstance(seq, int) else None


# A deferred cache write: built while an attempt runs, executed only
# after the attempt's snapshot validated — so a torn read can never
# poison the plan-result cache.
CacheCommit = Callable[[], None]


class QueryExecutor:
    """Runs a staged plan and returns graded, sorted matches.

    Reads are snapshot-isolated (MVCC-lite): each attempt pins the
    store's per-shard generation vector and write seqlocks up front,
    validates them at scatter time and again after grading, and retries
    against a fresh pin when a concurrent writer moved any shard —
    never returning (or caching) torn results.  After
    ``_SNAPSHOT_ATTEMPTS`` collisions the read falls back to running
    under the database's ``mutation_lock``, which cannot starve.
    """

    def __init__(self) -> None:
        self._queries = 0
        self._snapshot_retries = 0
        self._locked_fallbacks = 0

    def stats(self) -> "dict[str, object]":
        """Executor telemetry for ``storage_report()["executor"]``."""
        return {
            "backend": "serial",
            "queries": self._queries,
            "snapshot_retries": self._snapshot_retries,
            "locked_fallbacks": self._locked_fallbacks,
        }

    def execute(
        self,
        database: "SequenceDatabase",
        plan: QueryPlan,
        include_approximate: bool = True,
        cache: "PlanResultCache | None" = None,
    ) -> "list[QueryMatch]":
        """Run the plan's stages; consult ``cache`` around them if given.

        With a cache and a fingerprinted plan, a hit at the database's
        current cache epoch (store generation + pipeline config) returns
        the remembered matches without touching a single stage.  A
        *stale* hit — same pipeline config, moved data generation — is
        **delta-revalidated**: the store's mutation journal names the
        ids touched since the entry's generation vector, the plan's
        stages re-run over that dirty set only
        (:meth:`run_stages_subset`) and the cached verdicts are patched
        in place, byte-identical to a cold re-run.  When the journal
        has compacted past the entry (or config changed), the stages
        run in full and the answer is remembered at the new epoch.
        """
        self._queries += 1
        attempts = 0
        while True:
            pinned_seq = _mutation_seq(database)
            token = SnapshotToken.pin(database.store)
            unsettled = (token is not None and not token.settled) or (
                pinned_seq is not None and pinned_seq % 2 == 1
            )
            if unsettled:
                attempts += 1
                if attempts <= _SNAPSHOT_ATTEMPTS:
                    time.sleep(_SNAPSHOT_BACKOFF_S)
                    continue
                return self._execute_locked(database, plan, include_approximate, cache)
            try:
                matches, commit = self._attempt(
                    database, plan, include_approximate, cache, token
                )
            except SnapshotMoved:
                self._snapshot_retries += 1
                attempts += 1
                if attempts <= _SNAPSHOT_ATTEMPTS:
                    continue
                return self._execute_locked(database, plan, include_approximate, cache)
            except Exception:
                # A stage tripping over a concurrently mutated store can
                # raise anything; only swallow it when the snapshot
                # provably moved — the store generation shifted or the
                # database seqlock ticked (a mutator touched the side
                # indexes even if the store bump hasn't landed yet).  A
                # genuine stage bug stays loud.
                if self._view_moved(database, token, pinned_seq):
                    self._snapshot_retries += 1
                    attempts += 1
                    if attempts <= _SNAPSHOT_ATTEMPTS:
                        continue
                    return self._execute_locked(
                        database, plan, include_approximate, cache
                    )
                raise
            if self._view_moved(database, token, pinned_seq):
                self._snapshot_retries += 1
                attempts += 1
                if attempts <= _SNAPSHOT_ATTEMPTS:
                    continue
                return self._execute_locked(database, plan, include_approximate, cache)
            if commit is not None:
                commit()
            return matches

    @staticmethod
    def _view_moved(
        database: "SequenceDatabase",
        token: "SnapshotToken | None",
        pinned_seq: "int | None",
    ) -> bool:
        """Did the pinned view (store generations + db seqlock) move?"""
        if pinned_seq is not None and _mutation_seq(database) != pinned_seq:
            return True
        return token is not None and bool(token.moved(database.store))

    def _execute_locked(
        self,
        database: "SequenceDatabase",
        plan: QueryPlan,
        include_approximate: bool,
        cache: "PlanResultCache | None",
    ) -> "list[QueryMatch]":
        """Starvation-proof fallback: run one attempt under the writer lock.

        With the database's ``mutation_lock`` held no writer can move
        the store mid-read, so no snapshot validation is needed (and
        the commit is safe).  Duck-typed databases without the lock run
        unprotected, which matches their pre-snapshot behaviour.
        """
        self._locked_fallbacks += 1
        lock = getattr(database, "mutation_lock", None)
        if lock is None:
            matches, commit = self._attempt(
                database, plan, include_approximate, cache, None
            )
            if commit is not None:
                commit()
            return matches
        with lock:
            matches, commit = self._attempt(
                database, plan, include_approximate, cache, None
            )
            if commit is not None:
                commit()
            return matches

    def _attempt(
        self,
        database: "SequenceDatabase",
        plan: QueryPlan,
        include_approximate: bool,
        cache: "PlanResultCache | None",
        snapshot: "SnapshotToken | None",
    ) -> "tuple[list[QueryMatch], CacheCommit | None]":
        """One uncommitted evaluation against a pinned snapshot.

        Returns the matches plus a deferred cache commit (``None`` for
        uncached runs and cache hits); the caller validates the
        snapshot before running the commit.
        """
        if cache is not None and plan.fingerprint is not None:
            key = (plan.fingerprint, bool(include_approximate))
            if plan.limit is not None:
                # Limited plans cache the *truncated* list, so the same
                # query at a different k is a different entry.  Unlimited
                # plans keep the historical two-element key shape.
                key = key + (plan.limit,)
            generation = database.cache_epoch()
            cached = cache.lookup(key, generation)
            if cached is not None:
                return cached, None
            stale = cache.stale_entry(key, generation)
            if stale is not None:
                revalidated = self._revalidate(
                    database, plan, include_approximate, cache, key, generation,
                    stale, snapshot,
                )
                if revalidated is not None:
                    return revalidated
            matches = self._run_plan(database, plan, include_approximate, snapshot)
            vector = database.store.generation_vector()

            def commit() -> None:
                cache.store(key, generation, matches, vector=vector)

            return matches, commit
        return self._run_plan(database, plan, include_approximate, snapshot), None

    def _run_plan(
        self,
        database: "SequenceDatabase",
        plan: QueryPlan,
        include_approximate: bool,
        snapshot: "SnapshotToken | None" = None,
    ) -> "list[QueryMatch]":
        """Run every stage and apply the plan's ``limit`` truncation.

        The per-shard top-k stage already bounds each partial list at
        ``limit``, but the merged gather can hold up to ``shards *
        limit`` matches — the cut here is what makes the scattered
        answer identical to a single-store run.
        """
        matches = self._run_stages(database, plan, include_approximate, snapshot=snapshot)
        if plan.limit is not None:
            matches = matches[: plan.limit]
        return matches

    @staticmethod
    def revalidation_plan(
        database: "SequenceDatabase", stale: tuple, generation: tuple
    ) -> "tuple[str, tuple | None]":
        """How a stale cache entry would be refreshed — the one place
        the eligibility rules live, shared by :meth:`_revalidate` and
        ``SequenceDatabase.explain`` so the reported verdict always
        matches what an evaluation actually does.

        Returns one of:

        * ``("recompute", None)`` — the pipeline config changed (per-
          sequence verdicts may have moved without a journal entry);
          the entry is simply replaced by a fresh run.
        * ``("full", None)`` — the journal compacted past the entry's
          baseline, or the dirty set is so large a fraction of the
          store that a subset re-grade plus patch would cost more than
          starting over; full re-grade, refreshed in place (a *delta
          fallback*).
        * ``("delta", (live_dirty, dirty))`` — a journal replay is both
          possible and worthwhile; ``live_dirty`` is the sorted list of
          still-live ids to re-grade, ``dirty`` the full touched set.
        """
        old_epoch, __, old_vector = stale
        # cache_epoch() = (data generation, *pipeline config): only the
        # data part may differ for a journal replay to be sound.
        if old_vector is None or old_epoch[1:] != generation[1:]:
            return ("recompute", None)
        dirty = database.store.dirty_ids_since(old_vector)
        if dirty is None:
            return ("full", None)
        live_dirty = sorted(
            sequence_id for sequence_id in dirty if sequence_id in database
        )
        if live_dirty and 4 * len(live_dirty) > len(database):
            return ("full", None)
        return ("delta", (live_dirty, dirty))

    def _revalidate(
        self,
        database: "SequenceDatabase",
        plan: QueryPlan,
        include_approximate: bool,
        cache: "PlanResultCache",
        key: tuple,
        generation: tuple,
        stale: tuple,
        snapshot: "SnapshotToken | None" = None,
    ) -> "tuple[list[QueryMatch], CacheCommit] | None":
        """Repair a stale cached answer via the mutation journal.

        Returns the patched (or fallback-recomputed) match list plus a
        deferred cache commit, or ``None`` when the entry cannot be
        revalidated at all (see :meth:`revalidation_plan`) and the
        caller must recompute and store from scratch.  The commit runs
        only after the caller's snapshot validated, so a torn replay
        can never overwrite a healthy cache entry.
        """
        kind, payload = self.revalidation_plan(database, stale, generation)
        if kind == "recompute":
            return None
        __, old_matches, ___ = stale
        vector = database.store.generation_vector()
        if kind == "full":
            matches = self._run_plan(database, plan, include_approximate, snapshot)

            def commit_full() -> None:
                cache.revalidate(key, generation, vector, matches, dirty_count=None)

            return matches, commit_full
        live_dirty, dirty = payload
        fresh = (
            self.run_stages_subset(
                database, plan, live_dirty, include_approximate, snapshot=snapshot
            )
            if live_dirty
            else []
        )
        if plan.limit is not None:
            return self._patch_topk(
                database, plan, include_approximate, cache, key, generation,
                vector, old_matches, fresh, dirty, snapshot,
            )
        # The cached list is already in sort_key order and stays so with
        # the dirty ids filtered out.  Few fresh matches binary-insert
        # (no key recomputed per kept match — sort_key is unique per
        # sequence, so insertion points are unambiguous); many fresh
        # matches re-sort outright, which timsort does in near-linear
        # time on the two pre-sorted runs.
        patched = [match for match in old_matches if match.sequence_id not in dirty]
        if len(fresh) * 16 >= len(patched) + 1:
            patched.extend(fresh)
            patched.sort(key=QueryMatch.sort_key)
        else:
            for match in fresh:
                bisect.insort(patched, match, key=QueryMatch.sort_key)

        def commit_delta() -> None:
            cache.revalidate(key, generation, vector, patched, dirty_count=len(dirty))

        return patched, commit_delta

    def _patch_topk(
        self,
        database: "SequenceDatabase",
        plan: QueryPlan,
        include_approximate: bool,
        cache: "PlanResultCache",
        key: tuple,
        generation: tuple,
        vector: tuple,
        old_matches: "tuple[QueryMatch, ...]",
        fresh: "list[QueryMatch]",
        dirty: "set[int]",
        snapshot: "SnapshotToken | None" = None,
    ) -> "tuple[list[QueryMatch], CacheCommit]":
        """Patch a cached *top-k* answer after a journal replay.

        A limited entry only remembers the k best matches, so unlike the
        unlimited patch it cannot always be repaired from cached state:
        a match that was k+1-th at store time was never cached, and if
        the k-th best has worsened it may now belong in the answer.
        The patch is provably exact in two cases:

        * the stale list held fewer than ``limit`` matches — it was the
          *complete* qualifying set, so survivors plus the re-graded
          dirty ids are again complete;
        * at least ``limit`` candidates (survivors + fresh) sort at or
          inside the stale k-th boundary — every uncached match sorted
          strictly outside that boundary (sort keys are unique per
          sequence), so the top ``limit`` of the candidates are the top
          ``limit`` overall.

        Otherwise the pruned search re-runs in full — a bounded
        *re-fill*, recorded by the cache as a ``topk_refill`` on top of
        the delta outcome.
        """
        limit = plan.limit
        survivors = [
            match for match in old_matches if match.sequence_id not in dirty
        ]
        combined = sorted(survivors + fresh, key=QueryMatch.sort_key)
        if len(old_matches) < limit:
            matches = combined[:limit]

            def commit_patch() -> None:
                cache.revalidate(
                    key, generation, vector, matches, dirty_count=len(dirty)
                )

            return matches, commit_patch
        boundary = old_matches[-1].sort_key()
        qualified = sum(1 for match in combined if match.sort_key() <= boundary)
        if qualified >= limit:
            patched = combined[:limit]

            def commit_boundary() -> None:
                cache.revalidate(
                    key, generation, vector, patched, dirty_count=len(dirty)
                )

            return patched, commit_boundary
        refilled = self._run_plan(database, plan, include_approximate, snapshot)

        def commit_refill() -> None:
            cache.revalidate(
                key, generation, vector, refilled, dirty_count=len(dirty), refill=True
            )

        return refilled, commit_refill

    def run_stages_subset(
        self,
        database: "SequenceDatabase",
        plan: QueryPlan,
        sequence_ids: "list[int]",
        include_approximate: bool = True,
        snapshot: "SnapshotToken | None" = None,
    ) -> "list[QueryMatch]":
        """Run the plan's prefilter/grade stages over ``sequence_ids`` only.

        The delta-revalidation workhorse: exactly the matches a full
        run would produce *for those ids* — the probe (if any) still
        runs and its candidate set is intersected with the subset, so
        probe/grade boundary behaviour is identical to the cold path.
        Every id must be live.
        """
        subset = sorted(int(sequence_id) for sequence_id in sequence_ids)
        if not subset:
            return []
        return self._run_stages(
            database, plan, include_approximate, subset=subset, snapshot=snapshot
        )

    def _scatter(self, tasks: "list[Callable[[], object]]") -> "list[object]":
        """Run per-shard stage tasks; results align with ``tasks``.

        The serial base implementation; the parallel executor overrides
        this with a worker pool.  Order is the merge contract: the
        result list must line up with the task list position by
        position, which is what keeps scatter-gather deterministic.
        """
        return [task() for task in tasks]

    def _scatter_stages(
        self,
        database: "SequenceDatabase",
        plan: QueryPlan,
        shards: "tuple[ColumnarSegmentStore, ...]",
        parts: "list[list[int] | None]",
        snapshot: "SnapshotToken | None",
    ) -> "list[object]":
        """Run the per-store stages for every shard; results align with
        ``shards`` position by position.

        The base form wraps each shard's stage slice in a thunk and
        hands the list to :meth:`_scatter` (serial here, a thread pool
        in :class:`~repro.engine.parallel.ParallelExecutor`); the
        process executor overrides this whole hook because closures
        over the live store do not cross process boundaries.
        """
        tasks = [
            self._shard_task(database, plan, shard, shard_candidates)
            for shard, shard_candidates in zip(shards, parts)
        ]
        return self._scatter(tasks)

    def _run_stages(
        self,
        database: "SequenceDatabase",
        plan: QueryPlan,
        include_approximate: bool,
        subset: "list[int] | None" = None,
        snapshot: "SnapshotToken | None" = None,
    ) -> "list[QueryMatch]":
        store = database.store
        if snapshot is not None:
            snapshot.validate(store)
        whole_shard = plan.topk if plan.topk is not None else plan.collect
        if whole_shard is not None and subset is None:
            # The pruned search (and likewise a motif collect) runs
            # whole-shard — its per-shard index owns the shard's rows —
            # so it scatters as its own stage; subset re-grades fall
            # through to the residual path below, which is exactly what
            # the cache patch needs.
            tasks = [
                self._topk_task(database, whole_shard, shard, include_approximate)
                for shard in store.shards()
            ]
            results = self._scatter(tasks)
            merged = [match for partial in results for match in partial]
            merged.sort(key=QueryMatch.sort_key)
            return merged
        candidates = plan.probe(database) if plan.probe is not None else None
        if subset is not None:
            if candidates is None:
                candidates = subset
            else:
                allowed = set(subset)
                candidates = [
                    sequence_id for sequence_id in candidates if sequence_id in allowed
                ]
        shards = store.shards()
        if len(shards) > 1 and (plan.prefilter is not None or plan.vector_filter is not None):
            parts = store.partition_ids(candidates)
            if snapshot is not None:
                # Scatter-time check: the pin must still hold per shard
                # before any worker reads shard state.
                snapshot.validate(store)
            results = self._scatter_stages(database, plan, shards, parts, snapshot)
            if plan.vector_filter is not None:
                merged = self._merge_verdicts(results)
                return self._materialize(database, merged, include_approximate)
            # Prefilter-only plans gather the per-shard survivor lists
            # into one ascending candidate list for residual grading.
            candidates = sorted(
                sequence_id for survivors in results for sequence_id in survivors
            )
        else:
            leaf = shards[0]
            if plan.prefilter is not None:
                candidates = plan.prefilter(database, leaf, candidates)
            if plan.vector_filter is not None:
                verdicts = plan.vector_filter(database, leaf, candidates)
                return self._materialize(database, verdicts, include_approximate)
        ids = database.ids() if candidates is None else candidates
        matches = []
        for sequence_id in ids:
            match = plan.residual(database, sequence_id)
            if match.is_exact or (
                include_approximate and match.grade.value == "approximate"
            ):
                matches.append(match)
        return sorted(matches, key=QueryMatch.sort_key)

    @staticmethod
    def _topk_task(
        database: "SequenceDatabase",
        stage: "Callable[..., object]",
        shard: "ColumnarSegmentStore",
        include_approximate: bool,
    ) -> "Callable[[], object]":
        """One shard's whole-shard stage (top-k or collect), as a thunk."""

        def run() -> object:
            return stage(database, shard, include_approximate)

        return run

    @staticmethod
    def _shard_task(
        database: "SequenceDatabase",
        plan: QueryPlan,
        shard: "ColumnarSegmentStore",
        shard_candidates: "list[int] | None",
    ) -> "Callable[[], object]":
        """One shard's slice of the per-store stages, as a thunk."""

        def run() -> object:
            local = shard_candidates
            if plan.prefilter is not None:
                local = plan.prefilter(database, shard, local)
            if plan.vector_filter is not None:
                return plan.vector_filter(database, shard, local)
            return local

        return run

    @staticmethod
    def _merge_verdicts(results: "list[object]") -> VectorVerdicts:
        """Gather per-shard verdicts into one ascending-id verdict set.

        Every shard grades the same dimensions with the same bounds
        (they run the same stage), so merging is a concatenation per
        column; sorting by sequence id reproduces the exact array order
        the single-store stage would have produced.
        """
        verdicts: "list[VectorVerdicts]" = list(results)
        ids = np.concatenate([v.sequence_ids for v in verdicts])
        order = np.argsort(ids, kind="stable")
        dimensions = tuple(
            DimensionColumn(
                dim.dimension,
                np.concatenate([v.dimensions[d].amounts for v in verdicts])[order],
                dim.bound,
            )
            for d, dim in enumerate(verdicts[0].dimensions)
        )
        return VectorVerdicts(ids[order], dimensions)

    def _materialize(
        self,
        database: "SequenceDatabase",
        verdicts: VectorVerdicts,
        include_approximate: bool,
    ) -> "list[QueryMatch]":
        n = len(verdicts.sequence_ids)
        within = np.ones(n, dtype=bool)
        exact = np.ones(n, dtype=bool)
        for dim in verdicts.dimensions:
            within &= dim.amounts <= dim.bound + WITHIN_EPSILON
            exact &= dim.amounts <= EXACT_EPSILON
        keep = within & (exact | include_approximate)
        matches = []
        ids = verdicts.sequence_ids
        for i in np.flatnonzero(keep):
            deviations = tuple(
                DimensionDeviation(dim.dimension, float(dim.amounts[i]), dim.bound)
                for dim in verdicts.dimensions
            )
            grade = MatchGrade.EXACT if exact[i] else MatchGrade.APPROXIMATE
            sequence_id = int(ids[i])
            matches.append(
                QueryMatch(sequence_id, database.name_of(sequence_id), grade, deviations)
            )
        return sorted(matches, key=QueryMatch.sort_key)
