"""Planner and executor: vectorized query evaluation over the store.

The planner asks each query for its staged :class:`QueryPlan`; the
executor runs the stages against a database and its columnar store.
Queries that supply a ``vector_filter`` are graded entirely in NumPy —
the executor applies the same grading rule as
:func:`repro.core.tolerance.grade_deviations` to whole columns at once
and materializes :class:`QueryMatch` objects only for the sequences
that survive, so results are identical to the legacy per-sequence path
while the hot loop disappears.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

import numpy as np

from repro.core.tolerance import (
    EXACT_EPSILON,
    WITHIN_EPSILON,
    DimensionDeviation,
    MatchGrade,
)
from repro.engine.cache import PlanResultCache
from repro.engine.plan import QueryPlan, VectorVerdicts
from repro.query.results import QueryMatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.database import SequenceDatabase
    from repro.query.queries import Query

__all__ = ["QueryPlanner", "QueryExecutor"]


class QueryPlanner:
    """Turns queries into staged plans.

    For a human-readable account of what a query will do, use
    ``SequenceDatabase.explain``, which renders ``plan(...).describe()``
    plus the result cache's verdict.
    """

    def plan(self, query: "Query", database: "SequenceDatabase") -> QueryPlan:
        return query.plan(database)

    def explain(self, query: "Query", database: "SequenceDatabase") -> str:
        """Deprecated: use ``SequenceDatabase.explain`` instead.

        Retained as a one-release shim so existing callers keep working;
        the database's version adds the result-cache verdict.
        """
        warnings.warn(
            "QueryPlanner.explain is deprecated; use SequenceDatabase.explain",
            FutureWarning,
            stacklevel=2,
        )
        return self.plan(query, database).describe()


class QueryExecutor:
    """Runs a staged plan and returns graded, sorted matches."""

    def execute(
        self,
        database: "SequenceDatabase",
        plan: QueryPlan,
        include_approximate: bool = True,
        cache: "PlanResultCache | None" = None,
    ) -> "list[QueryMatch]":
        """Run the plan's stages; consult ``cache`` around them if given.

        With a cache and a fingerprinted plan, a hit at the database's
        current cache epoch (store generation + pipeline config) returns
        the remembered matches without touching a single stage; a miss
        runs the stages and remembers the answer at that epoch, so any
        later ``insert``/``delete`` or config reassignment invalidates
        it.
        """
        if cache is not None and plan.fingerprint is not None:
            key = (plan.fingerprint, bool(include_approximate))
            generation = database.cache_epoch()
            cached = cache.lookup(key, generation)
            if cached is not None:
                return cached
            matches = self._run_stages(database, plan, include_approximate)
            cache.store(key, generation, matches)
            return matches
        return self._run_stages(database, plan, include_approximate)

    def _run_stages(
        self,
        database: "SequenceDatabase",
        plan: QueryPlan,
        include_approximate: bool,
    ) -> "list[QueryMatch]":
        store = database.store
        candidates = plan.probe(database) if plan.probe is not None else None
        if plan.prefilter is not None:
            candidates = plan.prefilter(database, store, candidates)
        if plan.vector_filter is not None:
            verdicts = plan.vector_filter(database, store, candidates)
            return self._materialize(database, verdicts, include_approximate)
        ids = database.ids() if candidates is None else candidates
        matches = []
        for sequence_id in ids:
            match = plan.residual(database, sequence_id)
            if match.is_exact or (
                include_approximate and match.grade.value == "approximate"
            ):
                matches.append(match)
        return sorted(matches, key=QueryMatch.sort_key)

    def _materialize(
        self,
        database: "SequenceDatabase",
        verdicts: VectorVerdicts,
        include_approximate: bool,
    ) -> "list[QueryMatch]":
        n = len(verdicts.sequence_ids)
        within = np.ones(n, dtype=bool)
        exact = np.ones(n, dtype=bool)
        for dim in verdicts.dimensions:
            within &= dim.amounts <= dim.bound + WITHIN_EPSILON
            exact &= dim.amounts <= EXACT_EPSILON
        keep = within & (exact | include_approximate)
        matches = []
        ids = verdicts.sequence_ids
        for i in np.flatnonzero(keep):
            deviations = tuple(
                DimensionDeviation(dim.dimension, float(dim.amounts[i]), dim.bound)
                for dim in verdicts.dimensions
            )
            grade = MatchGrade.EXACT if exact[i] else MatchGrade.APPROXIMATE
            sequence_id = int(ids[i])
            matches.append(
                QueryMatch(sequence_id, database.name_of(sequence_id), grade, deviations)
            )
        return sorted(matches, key=QueryMatch.sort_key)
