"""Thread-pooled scatter for sharded query execution.

:class:`ParallelExecutor` is a :class:`~repro.engine.executor.QueryExecutor`
whose :meth:`~repro.engine.executor.QueryExecutor._scatter` dispatches
the per-shard stage tasks to a worker pool.  Threads (not processes)
are the right pool here: the scattered stages are NumPy reductions and
gathers over each shard's columns, which release the GIL while they
crunch, and shards live in process memory — forking would copy them.

Determinism is structural, not best-effort: results are collected by
task *position* (``Executor.map`` preserves order), every shard grades
its own sequences independently, and the gather step merges in shard
order before the final total-order sort — so any ``max_workers``, any
shard count and the serial executor all return identical match lists.

The pool is created lazily on the first scattered query and reused; a
single-shard plan never touches it (the executor's single-leaf path
runs inline).  Worker exceptions propagate to the caller unwrapped by
``Executor.map``, exactly like the serial path.

Top-k plans scatter unchanged: each task runs one shard's pruned
search, which may lazily build or journal-sync that shard's
:class:`~repro.engine.clustering.ClusterIndex` on the worker thread —
safe because the scatter dispatches exactly one task per shard, so no
two threads ever touch the same shard's index, and the query-side
feature vector is computed once at plan time on the caller's thread.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from types import TracebackType
from typing import Callable

from repro.core.errors import EngineError
from repro.engine.executor import QueryExecutor

__all__ = ["ParallelExecutor"]


class ParallelExecutor(QueryExecutor):
    """Scatter-gather executor backed by a thread pool.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the machine's CPU count.  ``1`` degrades
        to the serial executor (no pool is ever created).
    """

    def __init__(self, max_workers: "int | None" = None) -> None:
        # Assigned before validation so __del__ -> close() is safe even
        # when construction fails.
        self._pool: "ThreadPoolExecutor | None" = None
        super().__init__()
        workers = int(max_workers) if max_workers is not None else (os.cpu_count() or 1)
        if workers < 1:
            raise EngineError(f"need at least one worker, got {workers}")
        self.max_workers = workers
        self._pool_workers = 0
        self._tasks_dispatched = 0
        self._inline_batches = 0

    def stats(self) -> "dict[str, object]":
        """Pool telemetry on top of the base executor's counters."""
        base = super().stats()
        base.update(
            backend="thread",
            max_workers=self.max_workers,
            pool_workers=self._pool_workers,
            tasks_dispatched=self._tasks_dispatched,
            inline_batches=self._inline_batches,
        )
        return base

    def _scatter(self, tasks: "list[Callable[[], object]]") -> "list[object]":
        if self.max_workers == 1 or len(tasks) <= 1:
            self._inline_batches += 1
            return [task() for task in tasks]
        if self._pool is None:
            # Scatter dispatches at most one task per shard, so a pool
            # wider than the shard count would only idle: cap at the
            # first batch's width (shard counts are fixed per store).
            self._pool_workers = min(self.max_workers, len(tasks))
            self._pool = ThreadPoolExecutor(
                max_workers=self._pool_workers, thread_name_prefix="repro-shard"
            )
        self._tasks_dispatched += len(tasks)
        return list(self._pool.map(lambda task: task(), tasks))

    def close(self) -> None:
        """Shut the worker pool down (idempotent; pool rebuilds on use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(
        self,
        exc_type: "type[BaseException] | None",
        exc: "BaseException | None",
        tb: "TracebackType | None",
    ) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - finalizer best effort
        self.close()
