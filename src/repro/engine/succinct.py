"""Succinct symbol columns: rank/select bitvectors over the slope alphabet.

At millions of sequences the two ``int8`` symbol columns (positional
segment view + run-collapsed behaviour view) dominate the store's
resident footprint, and every "how many sequences contain up-down-up"
question costs a full scan.  This module stores the same symbols as
*succinct* structures instead:

:class:`BitVector`
    A bit-packed vector with O(1) blocked **rank** (128-bit blocks
    carrying ``uint16`` popcount prefixes inside 65536-bit superblocks
    carrying ``int64`` absolute prefixes) and sampled **select** (one
    ``int32`` superblock hint per 8192th set/clear bit, binary-searched
    down to a 256x8 in-byte lookup).  Total directory overhead is
    ~0.127 bits per stored bit.
:class:`WaveletMatrix`
    The level-wise composition of bitvectors over a small alphabet
    (Claude/Gog/Petri shape): ``access``/``rank``/``select`` per symbol
    in O(levels) rank/select probes.  Over the 3-symbol slope alphabet
    this costs ~2.25 bits per symbol against the 8 bits of the raw
    ``int8`` column — a >3x reduction *with* the query structure
    included.
:class:`SuccinctSymbolIndex`
    Both symbol views of one :class:`~repro.engine.columnar.ColumnarSegmentStore`
    as wavelet matrices, maintained through the store's mutation
    journal exactly like :class:`~repro.engine.clustering.ClusterIndex`:
    cheap generation no-op, per-id *overlay* patching for small dirty
    sets, staleness-ratio full rebuild.  Counting and motif-position
    queries are answered from rank/select probes (rarest-symbol
    candidate enumeration + batched ``access`` verification) with no
    grade scan, byte-identical to the uncompressed scan oracle
    (:func:`column_motif_hits`) the ``symbol_backend="uncompressed"``
    path keeps serving.

The module-level kernels :func:`motif_occurrences` /
:func:`column_motif_hits` are the *single* scan implementation shared
by the uncompressed backend, the succinct index's overlay handling and
the residual scalar grade — which is what makes the two backends'
answers byte-identical by construction, the same oracle discipline as
engine-vs-legacy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.core.errors import EngineError
from repro.index.maintenance import stale_rebuild_due

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.columnar import ColumnarSegmentStore
    from repro.engine.shm import BlockAttachments, SharedBlock, SharedMemoryArena

__all__ = [
    "BitVector",
    "WaveletMatrix",
    "SuccinctSymbolIndex",
    "attach_succinct_index",
    "motif_occurrences",
    "column_motif_hits",
]

#: Bits per machine word of the packed vector.
_WORD_BITS = 64
#: Words per rank block (128-bit blocks keep the uint16 prefix exact).
_BLOCK_WORDS = 2
_BLOCK_BITS = _WORD_BITS * _BLOCK_WORDS
#: Blocks per superblock: 512 * 128 = 65536 bits, the uint16 ceiling.
_SUPER_BLOCKS = 512
_SUPER_BITS = _BLOCK_BITS * _SUPER_BLOCKS
#: Select sampling density: one superblock hint per this many hits.
_SELECT_SAMPLE = 8192
_SELECT_SHIFT = 13  # log2(_SELECT_SAMPLE)
_SUPER_SHIFT = 16  # log2(_SUPER_BITS)

#: Wavelet-matrix depth for the slope alphabet {-1, 0, +1} mapped to
#: {0, 1, 2}: two levels cover codes 0..3.
SYMBOL_LEVELS = 2

#: Packed words are viewed little-endian so bit ``i`` of the vector is
#: bit ``i % 64`` of word ``i // 64`` on every platform.
_WORD_DTYPE = np.dtype("<u8")


def _byte_popcount_table() -> np.ndarray:
    counts = np.zeros(256, dtype=np.uint8)
    for byte in range(256):
        counts[byte] = bin(byte).count("1")
    return counts


_BYTE_POPCOUNT = _byte_popcount_table()


def _select_in_byte_table() -> np.ndarray:
    """``table[byte, k]``: position of the (k+1)-th set bit of ``byte``."""
    table = np.full((256, 8), 8, dtype=np.uint8)
    for byte in range(256):
        k = 0
        for bit in range(8):
            if byte >> bit & 1:
                table[byte, k] = bit
                k += 1
    return table


_SELECT_IN_BYTE = _select_in_byte_table()


if hasattr(np, "bitwise_count"):

    def _popcount64(words: np.ndarray) -> np.ndarray:
        return np.bitwise_count(words).astype(np.int64)

else:  # pragma: no cover - NumPy < 2.1 fallback

    def _popcount64(words: np.ndarray) -> np.ndarray:
        as_bytes = np.ascontiguousarray(words).view(np.uint8)
        return (
            _BYTE_POPCOUNT[as_bytes]
            .reshape(words.shape + (8,))
            .sum(axis=-1)
            .astype(np.int64)
        )


class BitVector:
    """Bit-packed vector with O(1) blocked rank and sampled select.

    The query methods are vectorized: they take arrays of positions or
    ranks and answer all of them in one pass.  The structure is
    immutable — mutation of the underlying column rebuilds or overlays
    at the :class:`SuccinctSymbolIndex` layer, never in place.
    """

    __slots__ = (
        "n",
        "n_ones",
        "_words",
        "_block_cum",
        "_super_cum",
        "_samples1",
        "_samples0",
        "_n_blocks",
    )

    def __init__(self, bits: np.ndarray) -> None:
        bits = np.asarray(bits, dtype=bool)
        if bits.ndim != 1:
            raise EngineError("bitvector input must be one-dimensional")
        n = int(bits.shape[0])
        packed = np.packbits(bits, bitorder="little")
        n_blocks = max(1, -(-n // _BLOCK_BITS))
        padded = np.zeros(n_blocks * _BLOCK_WORDS * 8, dtype=np.uint8)
        padded[: packed.size] = packed
        words = padded.view(_WORD_DTYPE)

        word_pops = _popcount64(words)
        block_pops = word_pops.reshape(n_blocks, _BLOCK_WORDS).sum(axis=1)
        n_super = -(-n_blocks // _SUPER_BLOCKS)
        per_super = np.zeros(n_super * _SUPER_BLOCKS, dtype=np.int64)
        per_super[:n_blocks] = block_pops
        per_super = per_super.reshape(n_super, _SUPER_BLOCKS)
        relative = np.cumsum(per_super, axis=1) - per_super  # exclusive, per row
        block_cum = relative.reshape(-1)[:n_blocks].astype(np.uint16)
        super_cum = np.zeros(n_super + 1, dtype=np.int64)
        np.cumsum(per_super.sum(axis=1), out=super_cum[1:])
        n_ones = int(super_cum[-1])

        # One superblock hint per _SELECT_SAMPLE-th hit, plus a sentinel
        # (the last superblock) so the bracket lookup never branches.
        ones_at = np.flatnonzero(bits)
        samples1 = np.append(
            ones_at[::_SELECT_SAMPLE] >> _SUPER_SHIFT, n_super - 1
        ).astype(np.int32)
        zeros_at = np.flatnonzero(~bits)
        samples0 = np.append(
            zeros_at[::_SELECT_SAMPLE] >> _SUPER_SHIFT, n_super - 1
        ).astype(np.int32)

        self.n = n
        self.n_ones = n_ones
        self._words = words
        self._block_cum = block_cum
        self._super_cum = super_cum
        self._samples1 = samples1
        self._samples0 = samples0
        self._n_blocks = n_blocks

    @classmethod
    def from_arrays(
        cls,
        n: int,
        n_ones: int,
        words: np.ndarray,
        block_cum: np.ndarray,
        super_cum: np.ndarray,
        samples1: np.ndarray,
        samples0: np.ndarray,
    ) -> "BitVector":
        """Re-wrap prebuilt directory arrays (the shm attach path)."""
        vector = cls.__new__(cls)
        vector.n = int(n)
        vector.n_ones = int(n_ones)
        vector._words = words
        vector._block_cum = block_cum
        vector._super_cum = super_cum
        vector._samples1 = samples1
        vector._samples0 = samples0
        vector._n_blocks = len(words) // _BLOCK_WORDS
        return vector

    @property
    def n_zeros(self) -> int:
        return self.n - self.n_ones

    @property
    def nbytes(self) -> int:
        """Resident bytes: packed words plus every rank/select directory."""
        return (
            self._words.nbytes
            + self._block_cum.nbytes
            + self._super_cum.nbytes
            + self._samples1.nbytes
            + self._samples0.nbytes
        )

    @property
    def n_rank_blocks(self) -> int:
        """Rank directory blocks (128-bit granularity) — telemetry."""
        return self._n_blocks

    def arrays(self) -> "dict[str, np.ndarray]":
        """The five directory arrays, keyed for serialization."""
        return {
            "words": self._words,
            "block_cum": self._block_cum,
            "super_cum": self._super_cum,
            "samples1": self._samples1,
            "samples0": self._samples0,
        }

    def get(self, positions: np.ndarray) -> np.ndarray:
        """The bit at each position, as 0/1 ``int64``."""
        pos = np.asarray(positions, dtype=np.int64)
        shifts = (pos & (_WORD_BITS - 1)).astype(np.uint64)
        return ((self._words[pos >> 6] >> shifts) & np.uint64(1)).astype(np.int64)

    def rank1(self, positions: np.ndarray) -> np.ndarray:
        """Set bits strictly before each position (positions in [0, n])."""
        pos = np.asarray(positions, dtype=np.int64)
        word = np.minimum(np.maximum(pos, 0) >> 6, len(self._words) - 1)
        block = word >> 1
        rank = self._super_cum[block >> 9] + self._block_cum[block].astype(np.int64)
        # Odd word inside its 2-word block: add the first word wholesale.
        first_pop = _popcount64(self._words[(block << 1)])
        rank = rank + np.where((word & 1) == 1, first_pop, 0)
        shifts = (pos & (_WORD_BITS - 1)).astype(np.uint64)
        mask = np.left_shift(np.uint64(1), shifts) - np.uint64(1)
        rank = rank + _popcount64(self._words[word] & mask)
        return np.where(pos >= self.n, self.n_ones, rank)

    def rank0(self, positions: np.ndarray) -> np.ndarray:
        """Clear bits strictly before each position."""
        pos = np.asarray(positions, dtype=np.int64)
        return np.minimum(pos, self.n) - self.rank1(pos)

    def select1(self, ranks: np.ndarray) -> np.ndarray:
        """Position of the (k+1)-th set bit for each k (k in [0, n_ones))."""
        return self._select(ranks, ones=True)

    def select0(self, ranks: np.ndarray) -> np.ndarray:
        """Position of the (k+1)-th clear bit for each k (k in [0, n_zeros))."""
        return self._select(ranks, ones=False)

    def _super_at(self, index: np.ndarray, ones: bool) -> np.ndarray:
        if ones:
            return self._super_cum[index]
        # Padding bits are zeros, so the arithmetic complement stays a
        # valid upper bound even past the last partial superblock.
        return (index.astype(np.int64) << _SUPER_SHIFT) - self._super_cum[index]

    def _block_at(self, index: np.ndarray, ones: bool) -> np.ndarray:
        base = self._block_cum[index].astype(np.int64)
        if ones:
            return base
        return ((index & (_SUPER_BLOCKS - 1)) << 7) - base

    def _select(self, ranks: np.ndarray, ones: bool) -> np.ndarray:
        k = np.atleast_1d(np.asarray(ranks, dtype=np.int64))
        if k.size == 0:
            return np.empty(0, dtype=np.int64)
        total = self.n_ones if ones else self.n_zeros
        if int(k.min()) < 0 or int(k.max()) >= total:
            raise EngineError(
                f"select rank out of range [0, {total}) for this bitvector"
            )
        samples = self._samples1 if ones else self._samples0
        hint = k >> _SELECT_SHIFT
        lo = samples[hint].astype(np.int64)
        hi = samples[hint + 1].astype(np.int64) + 1
        # Superblock binary search: cum[lo] <= k < cum[hi] by sampling.
        while True:
            wide = hi - lo > 1
            if not bool(wide.any()):
                break
            mid = (lo + hi) >> 1
            right = self._super_at(mid, ones) <= k
            lo = np.where(wide & right, mid, lo)
            hi = np.where(wide & ~right, mid, hi)
        k_super = k - self._super_at(lo, ones)
        # Block binary search inside the superblock (<= 9 halvings).
        blo = lo << 9
        bhi = np.minimum((lo + 1) << 9, self._n_blocks)
        while True:
            wide = bhi - blo > 1
            if not bool(wide.any()):
                break
            mid = np.minimum((blo + bhi) >> 1, self._n_blocks - 1)
            right = self._block_at(mid, ones) <= k_super
            blo = np.where(wide & right, mid, blo)
            bhi = np.where(wide & ~right, mid, bhi)
        k_block = k_super - self._block_at(blo, ones)
        # Resolve the 2-word block, then the byte, then the bit.
        first = self._words[blo << 1]
        if not ones:
            first = ~first
        first_pop = _popcount64(first)
        in_second = k_block >= first_pop
        word_index = (blo << 1) + in_second
        k_word = np.where(in_second, k_block - first_pop, k_block)
        word = self._words[word_index]
        if not ones:
            word = ~word
        byte_shifts = (np.arange(8, dtype=np.uint64) << np.uint64(3))[None, :]
        word_bytes = ((word[:, None] >> byte_shifts) & np.uint64(0xFF)).astype(np.int64)
        byte_pops = _BYTE_POPCOUNT[word_bytes].astype(np.int64)
        byte_cum = np.cumsum(byte_pops, axis=1) - byte_pops  # exclusive
        byte_index = (byte_cum <= k_word[:, None]).sum(axis=1) - 1
        rows = np.arange(k.size)
        k_byte = k_word - byte_cum[rows, byte_index]
        bit = _SELECT_IN_BYTE[word_bytes[rows, byte_index], k_byte].astype(np.int64)
        return (word_index << 6) + (byte_index << 3) + bit


def _pack_plane(bits: np.ndarray, n_words: int) -> np.ndarray:
    """Pack a uint8 bit array into ``n_words`` little-endian uint64s."""
    packed = np.packbits(bits, bitorder="little")
    words = np.zeros(n_words * 8, dtype=np.uint8)
    words[: len(packed)] = packed
    return words.view(_WORD_DTYPE)


def _trim_tail_bits(words: np.ndarray, n: int) -> None:
    """Zero every bit at position >= ``n`` in a packed word array."""
    full_words = n >> 6
    remainder = n & 63
    if remainder:
        words[full_words] &= np.uint64((1 << remainder) - 1)
        words[full_words + 1 :] = 0
    else:
        words[full_words:] = 0


def _shift_words_down(words: np.ndarray, k: int) -> np.ndarray:
    """The packed bit array shifted ``k`` positions toward bit zero."""
    shifted = np.zeros_like(words)
    word_shift, bit_shift = k >> 6, k & 63
    remaining = len(words) - word_shift
    if remaining <= 0:
        return shifted
    if bit_shift == 0:
        shifted[:remaining] = words[word_shift:]
    else:
        shifted[:remaining] = words[word_shift:] >> np.uint64(bit_shift)
        shifted[: remaining - 1] |= words[word_shift + 1 :] << np.uint64(
            64 - bit_shift
        )
    return shifted


class WaveletMatrix:
    """Wavelet matrix over a small non-negative integer alphabet.

    Level ``l`` stores bit ``n_levels - 1 - l`` of every value, with
    values stably partitioned (zeros before ones) between levels — the
    standard wavelet-matrix layout, which needs only one ``z`` offset
    per level instead of a tree of node boundaries.
    """

    __slots__ = ("n", "n_levels", "_levels", "_zeros")

    def __init__(self, values: np.ndarray, n_levels: "int | None" = None) -> None:
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise EngineError("wavelet matrix input must be one-dimensional")
        if values.size and int(values.min()) < 0:
            raise EngineError("wavelet matrix values must be non-negative")
        max_value = int(values.max()) if values.size else 0
        levels = int(n_levels) if n_levels is not None else max(1, max_value.bit_length())
        if levels < 1:
            raise EngineError("wavelet matrix needs at least one level")
        if max_value >> levels:
            raise EngineError(
                f"value {max_value} does not fit in {levels} wavelet levels"
            )
        self.n = int(values.size)
        self.n_levels = levels
        level_vectors: "list[BitVector]" = []
        zeros: "list[int]" = []
        current = values
        for level in range(levels):
            shift = levels - 1 - level
            bits = ((current >> shift) & 1).astype(bool)
            vector = BitVector(bits)
            level_vectors.append(vector)
            zeros.append(vector.n_zeros)
            current = np.concatenate((current[~bits], current[bits]))
        self._levels = tuple(level_vectors)
        self._zeros = tuple(zeros)

    @classmethod
    def from_levels(cls, n: int, levels: "tuple[BitVector, ...]") -> "WaveletMatrix":
        """Re-wrap prebuilt per-level bitvectors (the shm attach path)."""
        matrix = cls.__new__(cls)
        matrix.n = int(n)
        matrix.n_levels = len(levels)
        matrix._levels = tuple(levels)
        matrix._zeros = tuple(vector.n_zeros for vector in levels)
        return matrix

    @property
    def levels(self) -> "tuple[BitVector, ...]":
        return self._levels

    @property
    def nbytes(self) -> int:
        return sum(vector.nbytes for vector in self._levels)

    @property
    def n_rank_blocks(self) -> int:
        return sum(vector.n_rank_blocks for vector in self._levels)

    def access(self, positions: np.ndarray) -> np.ndarray:
        """The stored value at each position (positions in [0, n))."""
        pos = np.asarray(positions, dtype=np.int64)
        values = np.zeros(pos.shape, dtype=np.int64)
        for vector, z in zip(self._levels, self._zeros):
            bit = vector.get(pos)
            values = (values << 1) | bit
            pos = np.where(bit == 1, z + vector.rank1(pos), vector.rank0(pos))
        return values

    def _descend(self, symbol: int, positions: np.ndarray) -> np.ndarray:
        pos = np.asarray(positions, dtype=np.int64)
        for level, (vector, z) in enumerate(zip(self._levels, self._zeros)):
            if symbol >> (self.n_levels - 1 - level) & 1:
                pos = z + vector.rank1(pos)
            else:
                pos = vector.rank0(pos)
        return pos

    def rank(self, symbol: int, positions: np.ndarray) -> np.ndarray:
        """Occurrences of ``symbol`` strictly before each position."""
        symbol = int(symbol)
        pos = np.asarray(positions, dtype=np.int64)
        if symbol < 0 or symbol >> self.n_levels:
            return np.zeros(pos.shape, dtype=np.int64)
        start = self._descend(symbol, np.zeros(1, dtype=np.int64))
        return self._descend(symbol, np.minimum(pos, self.n)) - start[0]

    def count(self, symbol: int) -> int:
        """Total occurrences of ``symbol``."""
        return int(self.rank(symbol, np.array([self.n]))[0])

    def positions_of(self, symbol: int) -> np.ndarray:
        """Every position holding ``symbol``, ascending — pure select."""
        symbol = int(symbol)
        if symbol < 0 or symbol >> self.n_levels or self.n == 0:
            return np.empty(0, dtype=np.int64)
        lo = np.zeros(1, dtype=np.int64)
        hi = np.array([self.n], dtype=np.int64)
        path: "list[tuple[BitVector, int, int]]" = []
        for level, (vector, z) in enumerate(zip(self._levels, self._zeros)):
            bit = symbol >> (self.n_levels - 1 - level) & 1
            path.append((vector, z, bit))
            if bit:
                lo = z + vector.rank1(lo)
                hi = z + vector.rank1(hi)
            else:
                lo = vector.rank0(lo)
                hi = vector.rank0(hi)
        if int(hi[0]) == int(lo[0]):
            return np.empty(0, dtype=np.int64)
        positions = np.arange(int(lo[0]), int(hi[0]), dtype=np.int64)
        for vector, z, bit in reversed(path):
            positions = vector.select1(positions - z) if bit else vector.select0(positions)
        return positions

    def plane_words(self) -> "list[np.ndarray]":
        """Original-order packed bit-planes, one uint64 array per level.

        Level 0 is stored in original order already (its packed words
        are returned as-is); deeper levels are un-permuted by replaying
        each level's stable partition on an index vector — O(n) per
        level, once per caller.  Plane ``l`` holds bit
        ``n_levels - 1 - l`` of every value at its *original* position,
        64 positions per word, which is what the word-parallel motif
        kernel builds its symbol masks from.
        """
        n = self.n
        planes: "list[np.ndarray]" = []
        perm: "np.ndarray | None" = None
        for vector in self._levels:
            words = vector.arrays()["words"]
            bits: "np.ndarray | None" = None
            if perm is None:
                planes.append(words)
            else:
                bits = np.unpackbits(words.view(np.uint8), count=n, bitorder="little")
                plane = np.zeros(n, dtype=np.uint8)
                plane[perm] = bits
                planes.append(_pack_plane(plane, len(words)))
            if len(planes) < self.n_levels:
                if bits is None:
                    bits = np.unpackbits(
                        words.view(np.uint8), count=n, bitorder="little"
                    )
                # Stable-partition replay, one flatnonzero pair per level
                # (measurably faster than boolean fancy indexing).
                zero_slots = np.flatnonzero(bits == 0)
                one_slots = np.flatnonzero(bits)
                if perm is None:
                    perm = np.concatenate((zero_slots, one_slots))
                else:
                    perm = np.concatenate((perm[zero_slots], perm[one_slots]))
        return planes

    def symbol_mask_words(
        self, symbols: "Iterable[int]", planes: "list[np.ndarray] | None" = None
    ) -> "dict[int, np.ndarray]":
        """Packed per-symbol occupancy masks in original position order.

        ``masks[s]`` has bit ``i`` set iff position ``i`` holds symbol
        ``s`` — the planes combined word-parallel (64 positions per
        AND), with the padding tail cleared so complemented planes
        cannot leak phantom positions.
        """
        if planes is None:
            planes = self.plane_words()
        masks: "dict[int, np.ndarray]" = {}
        for symbol in symbols:
            symbol = int(symbol)
            if symbol < 0 or symbol >> self.n_levels:
                masks[symbol] = np.zeros(
                    len(planes[0]) if planes else 0, dtype=_WORD_DTYPE
                )
                continue
            if symbol in masks:
                continue
            mask: "np.ndarray | None" = None
            for level, plane in enumerate(planes):
                wanted = plane if symbol >> (self.n_levels - 1 - level) & 1 else ~plane
                mask = wanted.copy() if mask is None else mask & wanted
            assert mask is not None
            _trim_tail_bits(mask, self.n)
            masks[symbol] = mask
        return masks

    def motif_starts(self, symbols: np.ndarray) -> np.ndarray:
        """Global start positions of the symbol string, ascending.

        Word-parallel: the per-symbol masks are AND-ed under per-offset
        bit shifts — bit ``p`` survives iff position ``p + i`` holds
        ``symbols[i]`` for every offset — so the matching itself costs
        O(length x n / 64) word operations after the O(n) plane
        reconstruction, 64 candidate starts per machine word.
        """
        length = len(symbols)
        if length == 0 or self.n == 0 or length > self.n:
            return np.empty(0, dtype=np.int64)
        masks = self.symbol_mask_words(int(s) for s in symbols)
        accumulated = masks[int(symbols[0])].copy()
        for offset in range(1, length):
            accumulated &= _shift_words_down(masks[int(symbols[offset])], offset)
        starts = np.flatnonzero(
            np.unpackbits(
                accumulated.view(np.uint8), count=self.n, bitorder="little"
            )
        ).astype(np.int64)
        return starts[starts <= self.n - length]


# ----------------------------------------------------------------------
# Scan kernels — the single shared motif implementation (parity oracle)
# ----------------------------------------------------------------------


def motif_occurrences(symbols: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Start offsets of every occurrence of ``codes`` in ``symbols``.

    A vectorized shifted-mask AND over the symbol array — the scan
    baseline the succinct path is measured against, and the oracle both
    backends' answers reduce to.
    """
    n = int(len(symbols))
    length = int(len(codes))
    if length == 0 or n < length:
        return np.empty(0, dtype=np.int64)
    mask = symbols[: n - length + 1] == codes[0]
    for offset in range(1, length):
        mask = mask & (symbols[offset : n - length + 1 + offset] == codes[offset])
    return np.flatnonzero(mask).astype(np.int64)


def column_motif_hits(
    symbols: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    codes: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """Per-row motif occurrences in one concatenated symbol column.

    ``starts``/``counts`` must be the contiguous row layout of
    ``symbols`` (exclusive prefix sums, as the store's offset table
    always is).  Returns ``(owner_rows, local_offsets)``: for every
    global occurrence wholly inside one row, the owning row index and
    the offset within that row, in ascending global order.
    """
    hits = motif_occurrences(symbols, codes)
    if hits.size == 0 or len(starts) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    owners = np.searchsorted(starts, hits, side="right") - 1
    inside = hits + len(codes) <= starts[owners] + counts[owners]
    owners = owners[inside]
    return owners, hits[inside] - starts[owners]


# ----------------------------------------------------------------------
# The per-store index
# ----------------------------------------------------------------------


class SuccinctSymbolIndex:
    """Rank/select index over both symbol views of one leaf store.

    Lazily built from the symbol columns on first use
    (``ColumnarSegmentStore.succinct_index()``), then kept in lock-step
    with the store through its mutation journal: each sync is a cheap
    generation no-op, a per-id *overlay* patch (dirty sequences' fresh
    symbol codes kept alongside the built matrices, dead ids
    tombstoned) or a staleness-ratio full rebuild.  Mutators call
    :meth:`note_mutation` *before* touching the columns — that eager
    notification snapshots the build-time row layout while it is still
    readable, which is what lets later syncs patch instead of rebuild.

    Queries answer from the wavelet matrices for clean sequences and
    from the overlay's scan kernel for dirty ones, so answers are
    byte-identical to the uncompressed oracle in every sync state.

    Not safe for concurrent mutation — like the store it mirrors, one
    query evaluates against one shard's index at a time.
    """

    #: Accumulated dirty ids before a ratio rebuild can trigger —
    #: matches :class:`~repro.engine.clustering.ClusterIndex`: overlay
    #: scans erode the scan-free speedup quickly.
    _STALE_FLOOR = 64

    def __init__(
        self,
        store: "ColumnarSegmentStore",
        arena: "SharedMemoryArena | None" = None,
    ) -> None:
        self._store = store
        self._arena = arena
        self._segment_matrix: "WaveletMatrix | None" = None
        self._behavior_matrix: "WaveletMatrix | None" = None
        #: Build-time row layout (ids, segment counts, behaviour counts),
        #: snapshotted by the *first* mutation after a build; ``None``
        #: right after a rebuild, when the store's live layout is still
        #: identical to the built one.
        self._tables: "tuple[np.ndarray, np.ndarray, np.ndarray] | None" = None
        #: Journal-dirty ids: fresh ``(segment_codes, behavior_codes)``
        #: for live sequences, ``None`` tombstones for dead ones.
        self._overlay: "dict[int, tuple[np.ndarray, np.ndarray] | None]" = {}
        self._block: "SharedBlock | None" = None
        self._block_spec: "list[tuple[str, str, int, int]]" = []
        self._synced_generation: "int | None" = None
        self._stale_mutations = 0
        self.builds = 0
        self.rebuilds = 0
        self.patches = 0
        self.queries = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def built(self) -> bool:
        return self._synced_generation is not None

    @property
    def nbytes(self) -> int:
        """Resident bytes of the succinct structures and overlay."""
        total = 0
        for matrix in (self._segment_matrix, self._behavior_matrix):
            if matrix is not None:
                total += matrix.nbytes
        if self._tables is not None:
            total += sum(table.nbytes for table in self._tables)
        for entry in self._overlay.values():
            if entry is not None:
                total += entry[0].nbytes + entry[1].nbytes
        return total

    def report(self) -> dict:
        """Telemetry counters for ``storage_report``."""
        n_symbols = 0
        n_rank_blocks = 0
        matrix_bytes = 0
        for matrix in (self._segment_matrix, self._behavior_matrix):
            if matrix is not None:
                n_symbols += matrix.n
                n_rank_blocks += matrix.n_rank_blocks
                matrix_bytes += matrix.nbytes
        bits_per_symbol = 8.0 * matrix_bytes / n_symbols if n_symbols else 0.0
        return {
            "built": self.built,
            "symbols": n_symbols,
            "bits_per_symbol": bits_per_symbol,
            "rank_blocks": n_rank_blocks,
            "nbytes": self.nbytes,
            "builds": self.builds,
            "rebuilds": self.rebuilds,
            "patches": self.patches,
            "overlay_entries": len(self._overlay),
            "stale_mutations": self._stale_mutations,
            "queries": self.queries,
        }

    def check_parity(self) -> None:
        """Verify every sequence's succinct symbols match the store columns.

        Runs after a fresh :meth:`sync`: clean sequences must decode
        from the wavelet matrices to exactly their live ``int8`` symbol
        rows, dirty ones must match through the overlay, and the
        overlay's tombstones must agree with liveness.  The integrity
        counterpart of ``ColumnarSegmentStore.check_consistency``.
        """
        store = self._store
        if self._synced_generation != store.generation:
            raise EngineError("succinct index parity check requires a fresh sync")
        live = {int(sequence_id) for sequence_id in store.sequence_ids}
        for sequence_id, entry in self._overlay.items():
            if entry is None and sequence_id in live:
                raise EngineError(
                    f"succinct overlay tombstones live sequence {sequence_id}"
                )
            if entry is not None and sequence_id not in live:
                raise EngineError(
                    f"succinct overlay keeps dead sequence {sequence_id}"
                )
        for collapse_runs in (False, True):
            matrix, ids, starts, counts = self._view(collapse_runs)
            built_rows = {int(built_id): row for row, built_id in enumerate(ids)}
            column = store.behavior_symbols if collapse_runs else store.segment_symbols
            for sequence_id in sorted(live):
                lo, hi = (
                    store.behavior_range(sequence_id)
                    if collapse_runs
                    else store.segment_range(sequence_id)
                )
                expected = column[lo:hi]
                if sequence_id in self._overlay:
                    entry = self._overlay[sequence_id]
                    assert entry is not None  # tombstone liveness checked above
                    actual = entry[1] if collapse_runs else entry[0]
                elif sequence_id in built_rows:
                    row = built_rows[sequence_id]
                    span = np.arange(
                        int(starts[row]),
                        int(starts[row]) + int(counts[row]),
                        dtype=np.int64,
                    )
                    actual = (matrix.access(span) - 1).astype(np.int8)
                else:
                    raise EngineError(
                        f"sequence {sequence_id} missing from succinct index"
                    )
                if len(actual) != len(expected) or not bool(
                    (actual == expected).all()
                ):
                    raise EngineError(
                        f"succinct symbols of sequence {sequence_id} disagree "
                        f"with the store columns"
                    )
            for sequence_id in built_rows:
                if sequence_id not in live and sequence_id not in self._overlay:
                    raise EngineError(
                        f"dead sequence {sequence_id} not tombstoned in "
                        f"succinct overlay"
                    )

    # ------------------------------------------------------------------
    # Maintenance: eager layout snapshot + journal-driven sync
    # ------------------------------------------------------------------

    def note_mutation(self) -> None:
        """Snapshot the built row layout *before* the store mutates.

        Called by every store mutator ahead of its first column write
        (the RL007 contract).  Idempotent and cheap: only the first
        mutation after a build copies the three layout arrays; once the
        store has moved past the built generation without a snapshot,
        the layout is unrecoverable and the next sync must rebuild.
        """
        if self._synced_generation is None or self._tables is not None:
            return
        store = self._store
        if self._synced_generation != store.generation:
            return
        n = store.n_sequences
        self._tables = (
            store.sequence_ids[:n].astype(np.int64, copy=True),
            store.segment_counts[:n].astype(np.int32, copy=True),
            store.behavior_counts[:n].astype(np.int32, copy=True),
        )

    def sync(self) -> None:
        """Bring the index to the store's current generation.

        Cheap no-op when nothing changed; overlay patching for small
        journal-named dirty sets; full rebuild when the journal
        compacted past the baseline, the eager layout snapshot is
        missing, or accumulated overlay entries trip the staleness
        ratio.
        """
        store = self._store
        if self._synced_generation is None:
            self._rebuild()
            return
        if store.generation == self._synced_generation:
            return
        dirty = store.dirty_ids_since((self._synced_generation,))
        if dirty is None or self._tables is None:
            self._rebuild()
            return
        self._stale_mutations += len(dirty)
        if stale_rebuild_due(self._stale_mutations, len(self._tables[0]), self._STALE_FLOOR):
            self._rebuild()
            return
        for sequence_id in sorted(dirty):
            if sequence_id in store:
                seg_lo, seg_hi = store.segment_range(sequence_id)
                beh_lo, beh_hi = store.behavior_range(sequence_id)
                self._overlay[sequence_id] = (
                    store.segment_symbols[seg_lo:seg_hi].copy(),
                    store.behavior_symbols[beh_lo:beh_hi].copy(),
                )
            else:
                self._overlay[sequence_id] = None
        self.patches += 1
        self._synced_generation = store.generation

    def _rebuild(self) -> None:
        store = self._store
        was_built = self._synced_generation is not None
        # Slope codes {-1, 0, +1} shift to wavelet symbols {0, 1, 2}.
        self._segment_matrix = WaveletMatrix(
            store.segment_symbols.astype(np.int64) + 1, n_levels=SYMBOL_LEVELS
        )
        self._behavior_matrix = WaveletMatrix(
            store.behavior_symbols.astype(np.int64) + 1, n_levels=SYMBOL_LEVELS
        )
        self._tables = None
        self._overlay = {}
        self._synced_generation = store.generation
        self._stale_mutations = 0
        self.builds += 1
        if was_built:
            self.rebuilds += 1
        self._publish_to_arena()

    # ------------------------------------------------------------------
    # Queries: scan-free counting and motif positions
    # ------------------------------------------------------------------

    def _view(
        self, collapse_runs: bool
    ) -> "tuple[WaveletMatrix, np.ndarray, np.ndarray, np.ndarray]":
        """One symbol view's matrix and built row layout.

        Right after a rebuild (``_tables is None``) the store's live
        offset table *is* the built layout; after the first mutation the
        eager snapshot takes over, so wavelet positions always map to
        build-time rows no matter how far the live columns have moved.
        """
        matrix = self._behavior_matrix if collapse_runs else self._segment_matrix
        if matrix is None:  # pragma: no cover - callers sync first
            raise EngineError("succinct index queried before build")
        if self._tables is None:
            store = self._store
            ids = store.sequence_ids
            counts = store.behavior_counts if collapse_runs else store.segment_counts
        else:
            ids, seg_counts, beh_counts = self._tables
            counts = beh_counts if collapse_runs else seg_counts
        starts = np.zeros(len(ids) + 1, dtype=np.int64)
        np.cumsum(counts.astype(np.int64), out=starts[1:])
        return matrix, ids, starts[:-1], counts

    def _matrix_hits(
        self, matrix: WaveletMatrix, codes: np.ndarray
    ) -> np.ndarray:
        """Global start positions of the motif over the packed levels.

        The word-parallel kernel (:meth:`WaveletMatrix.motif_starts`):
        per-symbol occupancy masks rebuilt from the wavelet planes,
        AND-ed under per-offset bit shifts — 64 candidate starts per
        machine word, no per-sequence grade scan.
        """
        return matrix.motif_starts(np.asarray(codes, dtype=np.int64) + 1)

    def _owned_hits(
        self, codes: np.ndarray, collapse_runs: bool
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """``(owner_ids, offsets, clean_ids)`` for the built matrices.

        Occurrences owned by overlay (dirty) ids are dropped — the
        overlay's scan path answers those rows — and ``clean_ids`` is
        the id universe the matrix answer covers.
        """
        matrix, ids, starts, counts = self._view(collapse_runs)
        hits = self._matrix_hits(matrix, codes)
        if hits.size and len(ids):
            owners = np.searchsorted(starts, hits, side="right") - 1
            inside = hits + len(codes) <= starts[owners] + counts[owners]
            owners = owners[inside]
            offsets = hits[inside] - starts[owners]
            owner_ids = ids[owners]
        else:
            owner_ids = np.empty(0, dtype=np.int64)
            offsets = np.empty(0, dtype=np.int64)
        if self._overlay:
            dirty = np.fromiter(self._overlay, dtype=np.int64, count=len(self._overlay))
            keep = ~np.isin(owner_ids, dirty)
            owner_ids = owner_ids[keep]
            offsets = offsets[keep]
            clean_ids = ids[~np.isin(ids, dirty)]
        else:
            clean_ids = ids
        return owner_ids, offsets, clean_ids

    def _overlay_hits(
        self, codes: np.ndarray, collapse_runs: bool
    ) -> "tuple[list[int], list[np.ndarray]]":
        """Scan-kernel answers for the overlay's live dirty sequences."""
        hit_ids: "list[int]" = []
        hit_offsets: "list[np.ndarray]" = []
        for sequence_id in sorted(self._overlay):
            entry = self._overlay[sequence_id]
            if entry is None:
                continue
            offsets = motif_occurrences(entry[1] if collapse_runs else entry[0], codes)
            if offsets.size:
                hit_ids.append(sequence_id)
                hit_offsets.append(offsets)
        return hit_ids, hit_offsets

    def sequences_containing(
        self, codes: np.ndarray, collapse_runs: bool = True
    ) -> np.ndarray:
        """Ids of every sequence containing the motif, ascending."""
        self.queries += 1
        owner_ids, __, ___ = self._owned_hits(codes, collapse_runs)
        if owner_ids.size:
            # Hits ascend globally, so owner ids arrive non-decreasing:
            # dedup with one diff instead of a union sort.
            keep = np.empty(owner_ids.size, dtype=bool)
            keep[0] = True
            np.not_equal(owner_ids[1:], owner_ids[:-1], out=keep[1:])
            owner_ids = owner_ids[keep]
        if not self._overlay:
            return owner_ids
        overlay_ids, __ = self._overlay_hits(codes, collapse_runs)
        return np.union1d(owner_ids, np.asarray(overlay_ids, dtype=np.int64))

    def occurrences(
        self, codes: np.ndarray, collapse_runs: bool = True
    ) -> "list[tuple[int, np.ndarray]]":
        """``(sequence_id, offsets)`` per matching sequence, id-ascending.

        Offsets are ascending within each sequence — byte-identical to
        scanning every row with :func:`motif_occurrences`.
        """
        self.queries += 1
        owner_ids, offsets, __ = self._owned_hits(codes, collapse_runs)
        per_sequence: "dict[int, list[np.ndarray] | np.ndarray]" = {}
        if owner_ids.size:
            order = np.lexsort((offsets, owner_ids))
            owner_ids = owner_ids[order]
            offsets = offsets[order]
            boundaries = np.flatnonzero(np.diff(owner_ids)) + 1
            for ids_run, offs_run in zip(
                np.split(owner_ids, boundaries), np.split(offsets, boundaries)
            ):
                per_sequence[int(ids_run[0])] = offs_run
        overlay_ids, overlay_offsets = self._overlay_hits(codes, collapse_runs)
        for sequence_id, offs in zip(overlay_ids, overlay_offsets):
            per_sequence[sequence_id] = offs
        return [
            (sequence_id, np.asarray(per_sequence[sequence_id], dtype=np.int64))
            for sequence_id in sorted(per_sequence)
        ]

    # ------------------------------------------------------------------
    # Shared-memory publication (zero-copy worker attach)
    # ------------------------------------------------------------------

    def _packed_arrays(self) -> "list[tuple[str, np.ndarray]]":
        arrays: "list[tuple[str, np.ndarray]]" = []
        for prefix, matrix in (
            ("seg", self._segment_matrix),
            ("beh", self._behavior_matrix),
        ):
            assert matrix is not None
            for level, vector in enumerate(matrix.levels):
                for name, array in vector.arrays().items():
                    arrays.append((f"{prefix}.{level}.{name}", array))
        return arrays

    def _publish_to_arena(self) -> None:
        """Copy the freshly built directories into one arena block.

        The block is the workers' zero-copy view; the old block (from
        the previous build) retires through the arena so reader
        processes holding it get a clean ``FileNotFoundError`` retry,
        exactly like column reallocation.  Heap stores skip this.
        """
        arena = self._arena
        old_block = self._block
        if arena is None or arena.closed:
            self._block = None
            self._block_spec = []
            return
        arrays = self._packed_arrays()
        offsets: "list[int]" = []
        cursor = 0
        for __, array in arrays:
            cursor = -(-cursor // 8) * 8  # 8-byte alignment per array
            offsets.append(cursor)
            cursor += array.nbytes
        block = arena.allocate(max(cursor, 1), label="succinct")
        spec: "list[tuple[str, str, int, int]]" = []
        for (key, array), offset in zip(arrays, offsets):
            target = np.ndarray(
                array.shape, dtype=array.dtype, buffer=block.buf, offset=offset
            )
            target[:] = array
            spec.append((key, array.dtype.str, offset, len(array)))
        self._block = block
        self._block_spec = spec
        if old_block is not None:
            arena.retire(old_block)

    def shm_manifest(self) -> "dict[str, Any] | None":
        """Worker attachment manifest, or ``None`` when unpublishable.

        Only a built index whose arena block matches the store's current
        generation (after :meth:`sync`) is published; workers without a
        manifest fall back to the scan kernels, which answer
        identically.  The overlay and layout snapshot ride along as
        plain bytes — they are journal-bounded small.
        """
        if (
            self._block is None
            or self._segment_matrix is None
            or self._behavior_matrix is None
            or self._synced_generation != self._store.generation
        ):
            return None
        overlay: "dict[int, tuple[bytes, bytes] | None]" = {}
        for sequence_id, entry in self._overlay.items():
            overlay[sequence_id] = (
                None if entry is None else (entry[0].tobytes(), entry[1].tobytes())
            )
        tables = None
        if self._tables is not None:
            tables = tuple(table.tobytes() for table in self._tables)
        return {
            "generation": self._synced_generation,
            "block": self._block.name,
            "arrays": list(self._block_spec),
            "matrices": {
                "seg": self._matrix_scalars(self._segment_matrix),
                "beh": self._matrix_scalars(self._behavior_matrix),
            },
            "overlay": overlay,
            "tables": tables,
        }

    @staticmethod
    def _matrix_scalars(matrix: WaveletMatrix) -> "dict[str, Any]":
        return {
            "n": matrix.n,
            "levels": [
                {"n": vector.n, "n_ones": vector.n_ones} for vector in matrix.levels
            ],
        }


def attach_succinct_index(
    store: "ColumnarSegmentStore",
    manifest: "dict[str, Any]",
    attachments: "BlockAttachments",
) -> SuccinctSymbolIndex:
    """Rebuild a zero-copy read view of a succinct index from its manifest.

    Worker processes call this after attaching the parent store: every
    bitvector directory becomes a NumPy view over the shared block (no
    bits are copied), and the journal overlay / layout snapshot are
    rehydrated from their manifest bytes.  A retired block raises
    ``FileNotFoundError`` from ``attachments.get``, which the process
    executor converts into a snapshot retry.
    """
    buffer = attachments.get(str(manifest["block"]))
    views: "dict[str, np.ndarray]" = {}
    for key, dtype_str, offset, length in manifest["arrays"]:
        views[key] = np.ndarray(
            (int(length),), dtype=np.dtype(dtype_str), buffer=buffer, offset=int(offset)
        )
    index = SuccinctSymbolIndex(store)
    matrices: "dict[str, WaveletMatrix]" = {}
    for prefix in ("seg", "beh"):
        scalars = manifest["matrices"][prefix]
        vectors = []
        for level, level_scalars in enumerate(scalars["levels"]):
            vectors.append(
                BitVector.from_arrays(
                    int(level_scalars["n"]),
                    int(level_scalars["n_ones"]),
                    views[f"{prefix}.{level}.words"],
                    views[f"{prefix}.{level}.block_cum"],
                    views[f"{prefix}.{level}.super_cum"],
                    views[f"{prefix}.{level}.samples1"],
                    views[f"{prefix}.{level}.samples0"],
                )
            )
        matrices[prefix] = WaveletMatrix.from_levels(int(scalars["n"]), tuple(vectors))
    index._segment_matrix = matrices["seg"]
    index._behavior_matrix = matrices["beh"]
    overlay: "dict[int, tuple[np.ndarray, np.ndarray] | None]" = {}
    for sequence_id, entry in manifest["overlay"].items():
        overlay[int(sequence_id)] = (
            None
            if entry is None
            else (
                np.frombuffer(entry[0], dtype=np.int8),
                np.frombuffer(entry[1], dtype=np.int8),
            )
        )
    index._overlay = overlay
    if manifest["tables"] is not None:
        ids_bytes, seg_bytes, beh_bytes = manifest["tables"]
        index._tables = (
            np.frombuffer(ids_bytes, dtype=np.int64),
            np.frombuffer(seg_bytes, dtype=np.int32),
            np.frombuffer(beh_bytes, dtype=np.int32),
        )
    index._synced_generation = int(manifest["generation"])
    return index
