"""Named shared-memory arena backing columnar arrays.

:class:`SharedMemoryArena` owns a set of named
:mod:`multiprocessing.shared_memory` blocks.  A columnar store backed
by an arena allocates one block per column reallocation; worker
processes attach to blocks *by name* (see :class:`BlockAttachments`)
and wrap them in NumPy views with zero copies.

Lifecycle contract (machine-checked by analyzer rule RL006):

* the arena is the **single owner** of every block it allocates —
  ``unlink()`` happens only inside this class;
* ``retire()`` frees a superseded block's *name* immediately (so a
  worker attaching a stale manifest fails fast with
  ``FileNotFoundError`` and the read retries against a fresh snapshot)
  but keeps the parent's mapping open in a bounded grace list, because
  concurrent reader threads may still hold NumPy views over the old
  buffer;
* ``close()`` releases every mapping and name.  Databases call it from
  their own ``close()``; it is also safe (and idempotent) from
  ``__del__``.

Workers never unlink: :class:`BlockAttachments` only maps existing
names, and attaches with resource-tracker registration suppressed (a
CPython 3.11 quirk: plain attachment registers the segment with the
attaching process's tracker — which spawn workers *share* with the
parent, so either the worker's exit would unlink arena-owned blocks or
an after-the-fact unregister would erase the parent's own entry).
"""

from __future__ import annotations

import os
import secrets
from collections import OrderedDict, deque
from multiprocessing import resource_tracker, shared_memory
from types import TracebackType

from repro.core.errors import EngineError

__all__ = ["BlockAttachments", "SharedBlock", "SharedMemoryArena"]


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach an existing block without resource-tracker registration.

    CPython 3.11's ``SharedMemory.__init__`` registers the segment even
    on plain attachment (bpo-38119), and spawn workers share the
    parent's tracker process — so a tracked attachment would have the
    segment torn down behind the owning arena, and unregistering after
    the fact would erase the parent's own registration instead.
    Suppressing the register call for the duration of the attach keeps
    the tracker's books exactly as the owner wrote them.  ``track=``
    says this natively from 3.13 on.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *_args, **_kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedBlock:
    """One named shared-memory allocation owned by an arena."""

    __slots__ = ("_shm", "nbytes")

    def __init__(self, shm: shared_memory.SharedMemory, nbytes: int) -> None:
        self._shm = shm
        self.nbytes = nbytes

    @property
    def name(self) -> str:
        """The attachable system-wide name of this block."""
        return self._shm.name

    @property
    def buf(self) -> memoryview:
        """The writable buffer backing this block."""
        return self._shm.buf


class SharedMemoryArena:
    """Allocator and single owner of named shared-memory blocks.

    Blocks are allocated with :meth:`allocate`, superseded with
    :meth:`retire` (geometric column growth re-allocates rather than
    resizing in place), and all released by :meth:`close`.
    """

    def __init__(self, label: str = "repro", retire_grace: int = 16) -> None:
        self._prefix = f"{label[:16]}-{os.getpid()}-{secrets.token_hex(4)}"
        self._counter = 0
        self._blocks: "dict[str, SharedBlock]" = {}
        self._graveyard: "deque[shared_memory.SharedMemory]" = deque()
        self._retire_grace = max(0, int(retire_grace))
        self._retired_total = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def allocate(self, nbytes: int, label: str = "col") -> SharedBlock:
        """Create a new named block of at least ``nbytes`` bytes."""
        if self._closed:
            raise EngineError("shared-memory arena is closed")
        self._counter += 1
        name = f"{self._prefix}-{label[:24]}-{self._counter}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(1, int(nbytes)))
        block = SharedBlock(shm, max(1, int(nbytes)))
        self._blocks[block.name] = block
        return block

    def retire(self, block: SharedBlock) -> None:
        """Free ``block``'s name now; unmap after a short grace window.

        Unlinking immediately guarantees stale manifests fail fast in
        workers, while deferring ``close()`` keeps live NumPy views in
        concurrent reader threads valid until they re-pin.
        """
        owned = self._blocks.pop(block.name, None)
        if owned is None:
            return
        shm = owned._shm
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._retired_total += 1
        self._graveyard.append(shm)
        while len(self._graveyard) > self._retire_grace:
            old = self._graveyard.popleft()
            try:
                old.close()
            except BufferError:  # pragma: no cover - a reader still views it
                self._graveyard.append(old)
                break

    def close(self) -> None:
        """Release every mapping and name owned by this arena."""
        if self._closed:
            return
        self._closed = True
        try:
            for block in list(self._blocks.values()):
                shm = block._shm
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
                try:
                    shm.close()
                except BufferError:  # pragma: no cover - a view outlives us
                    pass
            while self._graveyard:
                try:
                    self._graveyard.popleft().close()
                except BufferError:  # pragma: no cover - a view outlives us
                    pass
        finally:
            self._blocks.clear()

    def stats(self) -> "dict[str, object]":
        """Accounting for ``storage_report()``."""
        return {
            "backend": "shared_memory",
            "prefix": self._prefix,
            "blocks": len(self._blocks),
            "bytes": sum(block.nbytes for block in self._blocks.values()),
            "retired": self._retired_total,
            "retired_pending_unmap": len(self._graveyard),
        }

    def __enter__(self) -> "SharedMemoryArena":
        return self

    def __exit__(
        self,
        exc_type: "type[BaseException] | None",
        exc: "BaseException | None",
        tb: "TracebackType | None",
    ) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass


class BlockAttachments:
    """Worker-side cache of attached shared blocks.

    Attachments map existing names read-only-by-convention and are
    **never unlinked** here — the arena in the parent process owns
    every name.  The cache is bounded; eviction only runs between
    tasks, long after any NumPy views over the evicted buffer are gone.
    """

    def __init__(self, capacity: int = 256) -> None:
        self._shms: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()
        self._capacity = max(8, int(capacity))

    def get(self, name: str) -> memoryview:
        """Attach (or reuse) the block called ``name`` and return its buffer.

        Raises ``FileNotFoundError`` when the name was retired — the
        caller treats that as a moved snapshot and retries.
        """
        shm = self._shms.get(name)
        if shm is None:
            shm = _attach_untracked(name)
            self._shms[name] = shm
        else:
            self._shms.move_to_end(name)
        return shm.buf

    def evict_stale(self) -> None:
        """Drop least-recently-used attachments beyond capacity."""
        while len(self._shms) > self._capacity:
            _, shm = self._shms.popitem(last=False)
            shm.close()

    def close(self) -> None:
        """Detach every cached block (mapping only; never unlink)."""
        while self._shms:
            _, shm = self._shms.popitem(last=False)
            shm.close()

    def __enter__(self) -> "BlockAttachments":
        return self

    def __exit__(
        self,
        exc_type: "type[BaseException] | None",
        exc: "BaseException | None",
        tb: "TracebackType | None",
    ) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass
