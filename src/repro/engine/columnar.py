"""Columnar storage of every ingested representation.

The per-sequence object form (:class:`FunctionSeriesRepresentation`
holding :class:`Segment` instances) is right for construction and for
per-sequence inspection, but evaluating a query against it means a
Python loop over sequences and a second loop over segments.  The
:class:`ColumnarSegmentStore` keeps the *same* information stacked
column-wise in contiguous NumPy arrays, so a query over the whole
database becomes a handful of vectorized predicates:

* **segment columns** — one row per stored segment (start/end indices,
  start/end points, mean slope, slope-sign symbol code) plus the owning
  sequence id;
* **behaviour columns** — one row per run-collapsed slope-sign symbol
  (consecutive identical symbols merged), the collapsed view pattern
  queries are written against;
* **R-R columns** — one row per inter-peak interval;
* **sequence columns** — one row per live sequence: the offset table
  (``sequence_id → row range``) into the segment, behaviour and R-R
  columns, plus per-sequence scalars (peak count, steepest rising
  slope, source length) that the vectorized query filters consume
  directly.

Symbol codes follow :data:`~repro.core.representation.SYMBOL_CODES`: ``+1`` for rising (slope >
theta), ``-1`` for falling (slope < -theta), ``0`` for flat — the
paper's Section 4.4 classification applied column-wise, byte-identical
to :func:`repro.core.representation.symbols_from_slopes` on the same
slopes.  The vectorized pattern stage (:mod:`repro.engine.nfa`) runs
transition tables directly over these ``int8`` columns.

The store is kept in sync with the database on ``insert``/``delete``:
inserts append (amortized via capacity doubling, with a batch
:meth:`extend` for bulk ingest), deletes compact the columns in place so
vectorized scans never have to skip tombstones.  Every mutation bumps
:attr:`~ColumnarSegmentStore.generation`, which the plan-level result
cache (:mod:`repro.engine.cache`) uses to invalidate stale answers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence as TypingSequence

import numpy as np

from repro.core.errors import EngineError

# The classification rule and symbol rendering live in core; the store
# only stacks their output column-wise, so strings and columns can
# never disagree.
from repro.core.representation import classify_slopes, decode_symbols

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.representation import FunctionSeriesRepresentation

__all__ = ["ColumnarSegmentStore", "collapse_code_runs"]

def collapse_code_runs(codes: np.ndarray) -> np.ndarray:
    """Merge consecutive identical symbol codes into behavioural runs."""
    if len(codes) == 0:
        return codes
    keep = np.empty(len(codes), dtype=bool)
    keep[0] = True
    np.not_equal(codes[1:], codes[:-1], out=keep[1:])
    return codes[keep]


class _ColumnSet:
    """Named same-length NumPy columns with amortized append."""

    def __init__(self, schema: "dict[str, type]") -> None:
        self._schema = dict(schema)
        self._arrays = {name: np.empty(0, dtype=dtype) for name, dtype in schema.items()}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def column(self, name: str) -> np.ndarray:
        """Writable view of one column trimmed to the live rows."""
        return self._arrays[name][: self._size]

    def extend(self, columns: "dict[str, np.ndarray]") -> None:
        if set(columns) != set(self._schema):
            raise EngineError(
                f"column mismatch: expected {sorted(self._schema)}, got {sorted(columns)}"
            )
        n_new = len(next(iter(columns.values())))
        if any(len(arr) != n_new for arr in columns.values()):
            raise EngineError("appended columns disagree in length")
        needed = self._size + n_new
        capacity = len(next(iter(self._arrays.values())))
        if needed > capacity:
            new_capacity = max(needed, 2 * capacity, 16)
            for name, arr in self._arrays.items():
                grown = np.empty(new_capacity, dtype=arr.dtype)
                grown[: self._size] = arr[: self._size]
                self._arrays[name] = grown
        for name, arr in columns.items():
            self._arrays[name][self._size : needed] = arr
        self._size = needed

    def delete_range(self, lo: int, hi: int) -> None:
        """Remove rows ``lo:hi``, shifting the tail left (compaction)."""
        if not (0 <= lo <= hi <= self._size):
            raise EngineError(f"row range [{lo}, {hi}) outside live rows [0, {self._size})")
        count = hi - lo
        if count == 0:
            return
        for arr in self._arrays.values():
            arr[lo : self._size - count] = arr[hi : self._size]
        self._size -= count


_SEGMENT_SCHEMA = {
    "sequence": np.int64,
    "start_index": np.int64,
    "end_index": np.int64,
    "start_time": np.float64,
    "end_time": np.float64,
    "start_value": np.float64,
    "end_value": np.float64,
    "slope": np.float64,
    "symbol": np.int8,
}

_BEHAVIOR_SCHEMA = {
    "sequence": np.int64,
    "symbol": np.int8,
}

_RR_SCHEMA = {
    "sequence": np.int64,
    "value": np.float64,
}

_SEQUENCE_SCHEMA = {
    "sequence_id": np.int64,
    "segment_start": np.int64,
    "segment_count": np.int64,
    "behavior_start": np.int64,
    "behavior_count": np.int64,
    "rr_start": np.int64,
    "rr_count": np.int64,
    "peak_count": np.int64,
    "max_rising_slope": np.float64,
    "source_length": np.int64,
}


class ColumnarSegmentStore:
    """Column-wise mirror of every live representation.

    Sequence ids must be inserted in strictly increasing order (the
    database assigns monotonically increasing ids and never reuses
    them), which keeps the sequence table sorted and lets lookups use
    binary search instead of a side dictionary.

    Parameters
    ----------
    theta:
        Slope-flatness threshold used to classify each segment's mean
        slope into the symbol columns; must match the database's
        ``theta`` so the columns agree with the pattern indexes.
    """

    def __init__(self, theta: float = 0.0) -> None:
        self.theta = float(theta)
        self._segments = _ColumnSet(_SEGMENT_SCHEMA)
        self._behavior = _ColumnSet(_BEHAVIOR_SCHEMA)
        self._rr = _ColumnSet(_RR_SCHEMA)
        self._sequences = _ColumnSet(_SEQUENCE_SCHEMA)
        self._generation = 0

    @property
    def generation(self) -> int:
        """Monotone mutation counter; bumps on every insert/extend/delete.

        Cached query answers are valid exactly as long as the generation
        they were computed at is still current (see
        :class:`repro.engine.cache.PlanResultCache`).
        """
        return self._generation

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sequences)

    def __contains__(self, sequence_id: int) -> bool:
        ids = self.sequence_ids
        p = int(np.searchsorted(ids, sequence_id))
        return p < len(ids) and int(ids[p]) == int(sequence_id)

    @property
    def n_sequences(self) -> int:
        return len(self._sequences)

    @property
    def n_segments(self) -> int:
        return len(self._segments)

    @property
    def n_rr(self) -> int:
        return len(self._rr)

    @property
    def n_behavior(self) -> int:
        return len(self._behavior)

    # ------------------------------------------------------------------
    # Column views (trimmed to live rows; treat as read-only)
    # ------------------------------------------------------------------

    @property
    def sequence_ids(self) -> np.ndarray:
        return self._sequences.column("sequence_id")

    @property
    def peak_counts(self) -> np.ndarray:
        return self._sequences.column("peak_count")

    @property
    def max_rising_slopes(self) -> np.ndarray:
        return self._sequences.column("max_rising_slope")

    @property
    def source_lengths(self) -> np.ndarray:
        return self._sequences.column("source_length")

    @property
    def segment_starts(self) -> np.ndarray:
        return self._sequences.column("segment_start")

    @property
    def segment_counts(self) -> np.ndarray:
        return self._sequences.column("segment_count")

    @property
    def rr_starts(self) -> np.ndarray:
        return self._sequences.column("rr_start")

    @property
    def rr_counts(self) -> np.ndarray:
        return self._sequences.column("rr_count")

    @property
    def behavior_starts(self) -> np.ndarray:
        return self._sequences.column("behavior_start")

    @property
    def behavior_counts(self) -> np.ndarray:
        return self._sequences.column("behavior_count")

    @property
    def segment_sequences(self) -> np.ndarray:
        return self._segments.column("sequence")

    @property
    def segment_slopes(self) -> np.ndarray:
        return self._segments.column("slope")

    @property
    def segment_symbols(self) -> np.ndarray:
        """Positional int8 symbol codes, one per stored segment."""
        return self._segments.column("symbol")

    @property
    def behavior_sequences(self) -> np.ndarray:
        return self._behavior.column("sequence")

    @property
    def behavior_symbols(self) -> np.ndarray:
        """Run-collapsed int8 symbol codes (behavioural view)."""
        return self._behavior.column("symbol")

    def segment_column(self, name: str) -> np.ndarray:
        return self._segments.column(name)

    @property
    def rr_sequences(self) -> np.ndarray:
        return self._rr.column("sequence")

    @property
    def rr_values(self) -> np.ndarray:
        return self._rr.column("value")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def position_of(self, sequence_id: int) -> int:
        """Row of one sequence in the sequence table."""
        ids = self.sequence_ids
        p = int(np.searchsorted(ids, sequence_id))
        if p >= len(ids) or int(ids[p]) != int(sequence_id):
            raise EngineError(f"sequence {sequence_id} not in columnar store")
        return p

    def positions_of(self, sequence_ids: "TypingSequence[int] | np.ndarray") -> np.ndarray:
        """Rows of many sequences, vectorized (ids must all be live)."""
        wanted = np.asarray(sequence_ids, dtype=np.int64)
        if wanted.size == 0:
            return np.empty(0, dtype=np.int64)
        ids = self.sequence_ids
        if len(ids) == 0:
            raise EngineError(f"sequences {wanted.tolist()} not in columnar store")
        positions = np.searchsorted(ids, wanted)
        clipped = np.minimum(positions, len(ids) - 1)
        bad = (positions >= len(ids)) | (ids[clipped] != wanted)
        if bool(bad.any()):
            raise EngineError(f"sequences {wanted[bad].tolist()} not in columnar store")
        return positions

    def segment_range(self, sequence_id: int) -> "tuple[int, int]":
        p = self.position_of(sequence_id)
        lo = int(self.segment_starts[p])
        return lo, lo + int(self.segment_counts[p])

    def rr_range(self, sequence_id: int) -> "tuple[int, int]":
        p = self.position_of(sequence_id)
        lo = int(self.rr_starts[p])
        return lo, lo + int(self.rr_counts[p])

    def behavior_range(self, sequence_id: int) -> "tuple[int, int]":
        p = self.position_of(sequence_id)
        lo = int(self.behavior_starts[p])
        return lo, lo + int(self.behavior_counts[p])

    def symbols_of(self, sequence_id: int, collapse_runs: bool = False) -> str:
        """One sequence's slope-sign string, read from the symbol columns.

        Byte-identical to the pattern indexes' stored strings: the
        positional view (``collapse_runs=False``) has one symbol per
        segment, the behavioural view merges runs.
        """
        if collapse_runs:
            lo, hi = self.behavior_range(sequence_id)
            return decode_symbols(self.behavior_symbols[lo:hi])
        lo, hi = self.segment_range(sequence_id)
        return decode_symbols(self.segment_symbols[lo:hi])

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(
        self,
        sequence_id: int,
        representation: "FunctionSeriesRepresentation",
        *,
        peak_count: int,
        rr: "np.ndarray | TypingSequence[float]",
    ) -> None:
        """Append one sequence's columns (see :meth:`extend`)."""
        self.extend([(sequence_id, representation, peak_count, rr)])

    def extend(
        self,
        items: "Iterable[tuple[int, FunctionSeriesRepresentation, int, np.ndarray]]",
    ) -> None:
        """Append many sequences at once, building each column once.

        ``items`` yields ``(sequence_id, representation, peak_count,
        rr_intervals)`` tuples in strictly increasing id order.  Bulk
        ingest concatenates per-sequence columns and grows every array a
        single time, which is what makes ``insert_all`` amortize.
        """
        batch = list(items)
        if not batch:
            return
        last = int(self.sequence_ids[-1]) if len(self._sequences) else -1
        seg_parts: "dict[str, list[np.ndarray]]" = {name: [] for name in _SEGMENT_SCHEMA}
        beh_seq_parts: "list[np.ndarray]" = []
        beh_sym_parts: "list[np.ndarray]" = []
        rr_seq_parts: "list[np.ndarray]" = []
        rr_val_parts: "list[np.ndarray]" = []
        seq_rows: "dict[str, list]" = {name: [] for name in _SEQUENCE_SCHEMA}
        seg_cursor = len(self._segments)
        beh_cursor = len(self._behavior)
        rr_cursor = len(self._rr)
        for sequence_id, representation, peak_count, rr in batch:
            sequence_id = int(sequence_id)
            if sequence_id <= last:
                raise EngineError(
                    f"sequence ids must be inserted in increasing order "
                    f"({sequence_id} after {last})"
                )
            last = sequence_id
            columns = representation.segment_columns()
            n_segments = len(columns["slope"])
            slopes = columns["slope"]
            codes = classify_slopes(slopes, self.theta)
            collapsed = collapse_code_runs(codes)
            rising = np.where(slopes > 0.0, slopes, 0.0)
            rr_arr = np.asarray(rr, dtype=np.float64)
            for name in _SEGMENT_SCHEMA:
                if name == "sequence":
                    seg_parts[name].append(np.full(n_segments, sequence_id, dtype=np.int64))
                elif name == "symbol":
                    seg_parts[name].append(codes)
                else:
                    seg_parts[name].append(columns[name])
            beh_seq_parts.append(np.full(len(collapsed), sequence_id, dtype=np.int64))
            beh_sym_parts.append(collapsed)
            rr_seq_parts.append(np.full(len(rr_arr), sequence_id, dtype=np.int64))
            rr_val_parts.append(rr_arr)
            seq_rows["sequence_id"].append(sequence_id)
            seq_rows["segment_start"].append(seg_cursor)
            seq_rows["segment_count"].append(n_segments)
            seq_rows["behavior_start"].append(beh_cursor)
            seq_rows["behavior_count"].append(len(collapsed))
            seq_rows["rr_start"].append(rr_cursor)
            seq_rows["rr_count"].append(len(rr_arr))
            seq_rows["peak_count"].append(int(peak_count))
            seq_rows["max_rising_slope"].append(float(rising.max(initial=0.0)))
            seq_rows["source_length"].append(int(representation.source_length))
            seg_cursor += n_segments
            beh_cursor += len(collapsed)
            rr_cursor += len(rr_arr)
        self._segments.extend(
            {
                name: np.concatenate(parts).astype(_SEGMENT_SCHEMA[name], copy=False)
                for name, parts in seg_parts.items()
            }
        )
        self._behavior.extend(
            {
                "sequence": np.concatenate(beh_seq_parts),
                "symbol": np.concatenate(beh_sym_parts).astype(np.int8, copy=False),
            }
        )
        self._rr.extend(
            {
                "sequence": np.concatenate(rr_seq_parts),
                "value": np.concatenate(rr_val_parts) if rr_val_parts else np.empty(0),
            }
        )
        self._sequences.extend(
            {
                name: np.asarray(values, dtype=_SEQUENCE_SCHEMA[name])
                for name, values in seq_rows.items()
            }
        )
        self._generation += 1

    def delete(self, sequence_id: int) -> None:
        """Drop one sequence and compact every column in place."""
        p = self.position_of(sequence_id)
        seg_lo = int(self.segment_starts[p])
        seg_count = int(self.segment_counts[p])
        beh_lo = int(self.behavior_starts[p])
        beh_count = int(self.behavior_counts[p])
        rr_lo = int(self.rr_starts[p])
        rr_count = int(self.rr_counts[p])
        self._segments.delete_range(seg_lo, seg_lo + seg_count)
        self._behavior.delete_range(beh_lo, beh_lo + beh_count)
        self._rr.delete_range(rr_lo, rr_lo + rr_count)
        self._sequences.delete_range(p, p + 1)
        # Rows past the deleted sequence shifted left; fix their offsets.
        self.segment_starts[p:] -= seg_count
        self.behavior_starts[p:] -= beh_count
        self.rr_starts[p:] -= rr_count
        self._generation += 1

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def check_consistency(self) -> None:
        """Verify the offset table partitions the columns exactly."""
        ids = self.sequence_ids
        if len(ids) > 1 and not bool((np.diff(ids) > 0).all()):
            raise EngineError("sequence table is not sorted by id")
        seg_starts = self.segment_starts
        seg_counts = self.segment_counts
        beh_starts = self.behavior_starts
        beh_counts = self.behavior_counts
        rr_starts = self.rr_starts
        rr_counts = self.rr_counts
        cursor_seg = 0
        cursor_beh = 0
        cursor_rr = 0
        for p in range(len(ids)):
            if int(seg_starts[p]) != cursor_seg:
                raise EngineError(
                    f"segment offset of sequence {int(ids[p])} is {int(seg_starts[p])}, "
                    f"expected {cursor_seg}"
                )
            if int(beh_starts[p]) != cursor_beh:
                raise EngineError(
                    f"behavior offset of sequence {int(ids[p])} is {int(beh_starts[p])}, "
                    f"expected {cursor_beh}"
                )
            if int(rr_starts[p]) != cursor_rr:
                raise EngineError(
                    f"rr offset of sequence {int(ids[p])} is {int(rr_starts[p])}, "
                    f"expected {cursor_rr}"
                )
            seg_hi = cursor_seg + int(seg_counts[p])
            beh_hi = cursor_beh + int(beh_counts[p])
            rr_hi = cursor_rr + int(rr_counts[p])
            if not bool((self.segment_sequences[cursor_seg:seg_hi] == ids[p]).all()):
                raise EngineError(f"segment rows of sequence {int(ids[p])} mislabelled")
            if not bool((self.behavior_sequences[cursor_beh:beh_hi] == ids[p]).all()):
                raise EngineError(f"behavior rows of sequence {int(ids[p])} mislabelled")
            if not bool((self.rr_sequences[cursor_rr:rr_hi] == ids[p]).all()):
                raise EngineError(f"rr rows of sequence {int(ids[p])} mislabelled")
            codes = self.segment_symbols[cursor_seg:seg_hi]
            recomputed = classify_slopes(self.segment_slopes[cursor_seg:seg_hi], self.theta)
            if not bool((codes == recomputed).all()):
                raise EngineError(
                    f"symbol column of sequence {int(ids[p])} disagrees with its slopes"
                )
            collapsed = self.behavior_symbols[cursor_beh:beh_hi]
            expected_runs = collapse_code_runs(codes)
            if len(collapsed) != len(expected_runs) or not bool(
                (collapsed == expected_runs).all()
            ):
                raise EngineError(
                    f"behavior column of sequence {int(ids[p])} is not the "
                    f"run-collapse of its symbol column"
                )
            cursor_seg = seg_hi
            cursor_beh = beh_hi
            cursor_rr = rr_hi
        if cursor_seg != len(self._segments):
            raise EngineError(
                f"offset table covers {cursor_seg} segment rows of {len(self._segments)}"
            )
        if cursor_beh != len(self._behavior):
            raise EngineError(
                f"offset table covers {cursor_beh} behavior rows of {len(self._behavior)}"
            )
        if cursor_rr != len(self._rr):
            raise EngineError(f"offset table covers {cursor_rr} rr rows of {len(self._rr)}")
