"""Columnar storage of every ingested representation.

The per-sequence object form (:class:`FunctionSeriesRepresentation`
holding :class:`Segment` instances) is right for construction and for
per-sequence inspection, but evaluating a query against it means a
Python loop over sequences and a second loop over segments.  The
:class:`ColumnarSegmentStore` keeps the *same* information stacked
column-wise in contiguous NumPy arrays, so a query over the whole
database becomes a handful of vectorized predicates:

* **segment columns** — one row per stored segment (start/end indices,
  start/end points, mean slope, slope-sign symbol code) plus the owning
  sequence id;
* **behaviour columns** — one row per run-collapsed slope-sign symbol
  (consecutive identical symbols merged), the collapsed view pattern
  queries are written against;
* **R-R columns** — one row per inter-peak interval;
* **sequence columns** — one row per live sequence: the offset table
  (``sequence_id → row range``) into the segment, behaviour and R-R
  columns, plus per-sequence scalars (peak count, steepest rising
  slope, source length) that the vectorized query filters consume
  directly.

Symbol codes follow :data:`~repro.core.representation.SYMBOL_CODES`: ``+1`` for rising (slope >
theta), ``-1`` for falling (slope < -theta), ``0`` for flat — the
paper's Section 4.4 classification applied column-wise, byte-identical
to :func:`repro.core.representation.symbols_from_slopes` on the same
slopes.  The vectorized pattern stage (:mod:`repro.engine.nfa`) runs
transition tables directly over these ``int8`` columns.

The store is kept in sync with the database on ``insert``/``delete``:
inserts append (amortized via capacity doubling, with a batch
:meth:`extend` for bulk ingest), deletes compact the columns in place so
vectorized scans never have to skip tombstones, and the streaming
append path splices one sequence's rows in place (:meth:`~ColumnarSegmentStore.replace_many`).
Every mutation bumps :attr:`~ColumnarSegmentStore.generation` *and*
records the touched sequence ids in the store's
:class:`~repro.engine.journal.MutationJournal`, so the plan-level
result cache (:mod:`repro.engine.cache`) can re-grade exactly the dirty
ids instead of discarding stale answers wholesale.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Sequence as TypingSequence

import numpy as np

from repro.core.errors import EngineError

# The classification rule and symbol rendering live in core; the store
# only stacks their output column-wise, so strings and columns can
# never disagree.
from repro.core.representation import classify_slopes, decode_symbols, run_start_mask
from repro.engine.journal import MutationJournal
from repro.engine.shm import BlockAttachments, SharedBlock, SharedMemoryArena

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.representation import FunctionSeriesRepresentation
    from repro.engine.clustering import ClusterIndex
    from repro.engine.succinct import SuccinctSymbolIndex

__all__ = [
    "ColumnarSegmentStore",
    "attach_from_manifest",
    "collapse_code_runs",
    "SYMBOL_BACKENDS",
]

#: Storage strategies for the symbol views' query path: "uncompressed"
#: answers counting/position queries by scanning the int8 columns (the
#: byte-parity oracle), "succinct" maintains a rank/select wavelet
#: matrix (:mod:`repro.engine.succinct`) and answers them scan-free.
SYMBOL_BACKENDS = ("uncompressed", "succinct")

def collapse_code_runs(codes: np.ndarray) -> np.ndarray:
    """Merge consecutive identical symbol codes into behavioural runs."""
    if len(codes) == 0:
        return codes
    return codes[run_start_mask(codes)]


class _ColumnSet:
    """Named same-length NumPy columns with amortized append.

    Arrays are over-allocated and grown geometrically (capacity
    doubling), with :meth:`column` exposing a live-length view, so a
    single-row append costs amortized O(1) instead of one full-array
    rebuild per call; deletion compacts in place and shrinks the
    allocation once occupancy falls below a quarter, so capacity stays
    within a constant factor of the live rows in both directions.
    """

    def __init__(
        self,
        schema: "dict[str, type]",
        arena: "SharedMemoryArena | None" = None,
        label: str = "col",
    ) -> None:
        self._schema = dict(schema)
        self._arena = arena
        self._label = label
        self._blocks: "dict[str, SharedBlock]" = {}
        self._arrays = {name: np.empty(0, dtype=dtype) for name, dtype in schema.items()}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Allocated rows per column (live rows plus growth headroom)."""
        return len(next(iter(self._arrays.values())))

    @property
    def nbytes(self) -> int:
        """Allocated bytes across all columns, headroom included."""
        return sum(arr.nbytes for arr in self._arrays.values())

    def column(self, name: str) -> np.ndarray:
        """Writable view of one column trimmed to the live rows."""
        return self._arrays[name][: self._size]

    def _reallocate(self, new_capacity: int) -> None:
        arena = self._arena
        if arena is not None and arena.closed:
            arena = None  # heap fallback after the owning database closed
        for name, arr in self._arrays.items():
            if arena is not None:
                dtype = np.dtype(self._schema[name])
                block = arena.allocate(
                    new_capacity * dtype.itemsize, label=f"{self._label}.{name}"
                )
                resized = np.ndarray((new_capacity,), dtype=dtype, buffer=block.buf)
                resized[: self._size] = arr[: self._size]
                old_block = self._blocks.get(name)
                self._blocks[name] = block
                self._arrays[name] = resized
                if old_block is not None:
                    arena.retire(old_block)
            else:
                resized = np.empty(new_capacity, dtype=arr.dtype)
                resized[: self._size] = arr[: self._size]
                self._arrays[name] = resized

    def manifest(self) -> "dict[str, Any]":
        """Attachment manifest for worker processes: per column, the
        shared block's name (``None`` while empty) and dtype, plus the
        live row count and allocated capacity."""
        columns: "dict[str, tuple[str | None, str]]" = {}
        for name in self._schema:
            block = self._blocks.get(name)
            columns[name] = (
                block.name if block is not None else None,
                np.dtype(self._schema[name]).str,
            )
        return {"size": self._size, "capacity": self.capacity, "columns": columns}

    def extend(self, columns: "dict[str, np.ndarray]") -> None:
        if set(columns) != set(self._schema):
            raise EngineError(
                f"column mismatch: expected {sorted(self._schema)}, got {sorted(columns)}"
            )
        n_new = len(next(iter(columns.values())))
        if any(len(arr) != n_new for arr in columns.values()):
            raise EngineError("appended columns disagree in length")
        needed = self._size + n_new
        if needed > self.capacity:
            self._reallocate(max(needed, 2 * self.capacity, 16))
        for name, arr in columns.items():
            self._arrays[name][self._size : needed] = arr
        self._size = needed

    def delete_range(self, lo: int, hi: int) -> None:
        """Remove rows ``lo:hi``, shifting the tail left (compaction)."""
        if not (0 <= lo <= hi <= self._size):
            raise EngineError(f"row range [{lo}, {hi}) outside live rows [0, {self._size})")
        count = hi - lo
        if count == 0:
            return
        for arr in self._arrays.values():
            arr[lo : self._size - count] = arr[hi : self._size]
        self._size -= count
        self._maybe_shrink()

    def replace_range(self, lo: int, hi: int, columns: "dict[str, np.ndarray]") -> None:
        """Splice ``columns`` in place of rows ``lo:hi``.

        The tail shifts by the row-count difference in one pass per
        column; surviving rows are exactly what a ``delete_range``
        followed by a middle insertion would leave.  This is the
        streaming append path's primitive: an appended sequence's
        re-broken rows overwrite its old rows without rebuilding the
        arrays around them.
        """
        if set(columns) != set(self._schema):
            raise EngineError(
                f"column mismatch: expected {sorted(self._schema)}, got {sorted(columns)}"
            )
        n_new = len(next(iter(columns.values())))
        if any(len(arr) != n_new for arr in columns.values()):
            raise EngineError("replacement columns disagree in length")
        if not (0 <= lo <= hi <= self._size):
            raise EngineError(f"row range [{lo}, {hi}) outside live rows [0, {self._size})")
        delta = n_new - (hi - lo)
        needed = self._size + delta
        if needed > self.capacity:
            self._reallocate(max(needed, 2 * self.capacity, 16))
        if delta > 0:
            for arr in self._arrays.values():
                # Rightward overlapping shift: stage the tail first.
                arr[hi + delta : needed] = arr[hi : self._size].copy()
        elif delta < 0:
            for arr in self._arrays.values():
                arr[hi + delta : needed] = arr[hi : self._size]
        for name, arr in columns.items():
            self._arrays[name][lo : lo + n_new] = arr
        self._size = needed
        if delta < 0:
            self._maybe_shrink()

    def delete_where(self, drop: np.ndarray) -> None:
        """Remove every row flagged in the boolean ``drop`` mask.

        One compaction pass regardless of how many disjoint row ranges
        the mask covers — the batched-deletion counterpart of repeated
        :meth:`delete_range` calls, with identical surviving rows.
        """
        if len(drop) != self._size:
            raise EngineError(
                f"drop mask covers {len(drop)} rows, store has {self._size}"
            )
        keep = ~drop
        kept = int(keep.sum())
        if kept == self._size:
            return
        for arr in self._arrays.values():
            arr[:kept] = arr[: self._size][keep]
        self._size = kept
        self._maybe_shrink()

    def _maybe_shrink(self) -> None:
        # Occupancy hysteresis: shrink to 2x live rows at < 25%, so mass
        # deletion returns memory while delete/insert cycles never thrash.
        if self.capacity > 16 and self._size < self.capacity // 4:
            self._reallocate(max(2 * self._size, 16))


_SEGMENT_SCHEMA = {
    "sequence": np.int64,
    "start_index": np.int64,
    "end_index": np.int64,
    "start_time": np.float64,
    "end_time": np.float64,
    "start_value": np.float64,
    "end_value": np.float64,
    "slope": np.float64,
    "symbol": np.int8,
}

_BEHAVIOR_SCHEMA = {
    "sequence": np.int64,
    "symbol": np.int8,
}

_RR_SCHEMA = {
    "sequence": np.int64,
    "value": np.float64,
}

_SEQUENCE_SCHEMA = {
    "sequence_id": np.int64,
    "segment_start": np.int64,
    "segment_count": np.int64,
    "behavior_start": np.int64,
    "behavior_count": np.int64,
    "rr_start": np.int64,
    "rr_count": np.int64,
    "peak_count": np.int64,
    "max_rising_slope": np.float64,
    "source_length": np.int64,
}


class ColumnarSegmentStore:
    """Column-wise mirror of every live representation.

    Sequence ids must be inserted in strictly increasing order (the
    database assigns monotonically increasing ids and never reuses
    them), which keeps the sequence table sorted and lets lookups use
    binary search instead of a side dictionary.

    Parameters
    ----------
    theta:
        Slope-flatness threshold used to classify each segment's mean
        slope into the symbol columns; must match the database's
        ``theta`` so the columns agree with the pattern indexes.
    """

    def __init__(
        self,
        theta: float = 0.0,
        journal_limit: int = 1024,
        arena: "SharedMemoryArena | None" = None,
        label: str = "s",
        symbol_backend: str = "uncompressed",
    ) -> None:
        if symbol_backend not in SYMBOL_BACKENDS:
            raise EngineError(
                f"unknown symbol backend {symbol_backend!r}; "
                f"expected one of {SYMBOL_BACKENDS}"
            )
        self.theta = float(theta)
        self.symbol_backend = symbol_backend
        self._arena = arena
        self._segments = _ColumnSet(_SEGMENT_SCHEMA, arena=arena, label=f"{label}.seg")
        self._behavior = _ColumnSet(_BEHAVIOR_SCHEMA, arena=arena, label=f"{label}.beh")
        self._rr = _ColumnSet(_RR_SCHEMA, arena=arena, label=f"{label}.rr")
        self._sequences = _ColumnSet(_SEQUENCE_SCHEMA, arena=arena, label=f"{label}.seq")
        self._generation = 0
        self._seqlock = 0
        self._journal = MutationJournal(max_entries=journal_limit)
        self._cluster_index = None
        self._succinct: "SuccinctSymbolIndex | None" = None

    def cluster_index(self) -> "ClusterIndex":
        """This store's cluster-representative pruning index, in sync.

        Built lazily on first use (profiling every row once) and kept
        current afterwards by replaying the mutation journal — see
        :class:`repro.engine.clustering.ClusterIndex`.  Mutations never
        touch it eagerly; the generation comparison inside ``sync``
        makes every access self-repairing.
        """
        from repro.engine.clustering import ClusterIndex

        if self._cluster_index is None:
            self._cluster_index = ClusterIndex(self)
        self._cluster_index.sync()
        return self._cluster_index

    def cluster_report(self) -> dict:
        """The cluster index's telemetry, without forcing a build."""
        if self._cluster_index is None:
            from repro.engine.clustering import ClusterIndex

            return ClusterIndex(self).report()
        return self._cluster_index.report()

    def succinct_index(self) -> "SuccinctSymbolIndex":
        """This store's rank/select symbol index, in sync.

        Built lazily on first use and kept current afterwards by
        replaying the mutation journal — overlay patching for small
        dirty sets, staleness-ratio full rebuild otherwise; see
        :class:`repro.engine.succinct.SuccinctSymbolIndex`.  The
        generation comparison inside ``sync`` makes every access
        self-repairing, exactly like :meth:`cluster_index`.
        """
        from repro.engine.succinct import SuccinctSymbolIndex

        if self._succinct is None:
            self._succinct = SuccinctSymbolIndex(self, arena=self._arena)
        self._succinct.sync()
        return self._succinct

    def succinct_report(self) -> dict:
        """The succinct index's telemetry, without forcing a build."""
        if self._succinct is None:
            from repro.engine.succinct import SuccinctSymbolIndex

            report = SuccinctSymbolIndex(self).report()
        else:
            report = self._succinct.report()
        report["backend"] = self.symbol_backend
        return report

    def _succinct_mark_stale(self) -> None:
        """Let the succinct index snapshot its built row layout.

        Every mutator calls this *before* its first column write (the
        RL007 contract): once the columns move, the layout the wavelet
        matrices were built over is unrecoverable and the index could
        only rebuild, never patch.
        """
        if self._succinct is not None:
            self._succinct.note_mutation()

    @property
    def generation(self) -> int:
        """Monotone mutation counter; bumps on every insert/extend/delete.

        Cached query answers are valid exactly as long as the generation
        they were computed at is still current (see
        :class:`repro.engine.cache.PlanResultCache`).
        """
        return self._generation

    @property
    def journal(self) -> MutationJournal:
        """The mutation journal: touched ids per generation bump."""
        return self._journal

    def generation_vector(self) -> "tuple[int, ...]":
        """The per-shard generation baseline delta revalidation replays
        from — one entry per leaf store (just this one here)."""
        return (self._generation,)

    def dirty_ids_since(self, vector: "tuple[int, ...]") -> "set[int] | None":
        """Ids touched since a :meth:`generation_vector` baseline.

        ``None`` when the baseline does not line up with this store
        (different shard layout) or the journal has compacted past it —
        both mean the caller must recompute from scratch.
        """
        if len(vector) != 1:
            return None
        return self._journal.dirty_since(int(vector[0]))

    def journal_stats(self) -> dict:
        """The journal's counters (entries, bytes, floor, compactions)."""
        return self._journal.stats()

    # ------------------------------------------------------------------
    # Snapshot support (MVCC-lite read side)
    # ------------------------------------------------------------------

    def _begin_write(self) -> None:
        # Odd seqlock: a writer is between its first column write and
        # its journal record; snapshot pins taken now are unsettled.
        self._seqlock += 1

    def _commit_write(self) -> None:
        # Back to even: the generation bump and journal record landed.
        self._seqlock += 1

    def read_token(self) -> "tuple[int, ...]":
        """Per-leaf write seqlocks (odd while a mutation is in flight)."""
        return (self._seqlock,)

    def shm_manifest(self) -> "dict[str, Any] | None":
        """Worker attachment manifest; ``None`` when heap-backed."""
        if self._arena is None or self._arena.closed:
            return None
        # A succinct index is published only when its arena block is
        # current for this generation; workers without one fall back to
        # the scan kernels, which answer identically.
        succinct = self._succinct.shm_manifest() if self._succinct is not None else None
        return {
            "theta": self.theta,
            "generation": self._generation,
            "symbol_backend": self.symbol_backend,
            "succinct": succinct,
            "tables": {
                "segments": self._segments.manifest(),
                "behavior": self._behavior.manifest(),
                "rr": self._rr.manifest(),
                "sequences": self._sequences.manifest(),
            },
        }

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sequences)

    def __contains__(self, sequence_id: int) -> bool:
        ids = self.sequence_ids
        p = int(np.searchsorted(ids, sequence_id))
        return p < len(ids) and int(ids[p]) == int(sequence_id)

    @property
    def n_sequences(self) -> int:
        return len(self._sequences)

    @property
    def n_segments(self) -> int:
        return len(self._segments)

    @property
    def n_rr(self) -> int:
        return len(self._rr)

    @property
    def n_behavior(self) -> int:
        return len(self._behavior)

    # ------------------------------------------------------------------
    # Column views (trimmed to live rows; treat as read-only)
    # ------------------------------------------------------------------

    @property
    def sequence_ids(self) -> np.ndarray:
        return self._sequences.column("sequence_id")

    @property
    def peak_counts(self) -> np.ndarray:
        return self._sequences.column("peak_count")

    @property
    def max_rising_slopes(self) -> np.ndarray:
        return self._sequences.column("max_rising_slope")

    @property
    def source_lengths(self) -> np.ndarray:
        return self._sequences.column("source_length")

    @property
    def segment_starts(self) -> np.ndarray:
        return self._sequences.column("segment_start")

    @property
    def segment_counts(self) -> np.ndarray:
        return self._sequences.column("segment_count")

    @property
    def rr_starts(self) -> np.ndarray:
        return self._sequences.column("rr_start")

    @property
    def rr_counts(self) -> np.ndarray:
        return self._sequences.column("rr_count")

    @property
    def behavior_starts(self) -> np.ndarray:
        return self._sequences.column("behavior_start")

    @property
    def behavior_counts(self) -> np.ndarray:
        return self._sequences.column("behavior_count")

    @property
    def segment_sequences(self) -> np.ndarray:
        return self._segments.column("sequence")

    @property
    def segment_slopes(self) -> np.ndarray:
        return self._segments.column("slope")

    @property
    def segment_symbols(self) -> np.ndarray:
        """Positional int8 symbol codes, one per stored segment."""
        return self._segments.column("symbol")

    @property
    def behavior_sequences(self) -> np.ndarray:
        return self._behavior.column("sequence")

    @property
    def behavior_symbols(self) -> np.ndarray:
        """Run-collapsed int8 symbol codes (behavioural view)."""
        return self._behavior.column("symbol")

    def segment_column(self, name: str) -> np.ndarray:
        return self._segments.column(name)

    @property
    def rr_sequences(self) -> np.ndarray:
        return self._rr.column("sequence")

    @property
    def rr_values(self) -> np.ndarray:
        return self._rr.column("value")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def position_of(self, sequence_id: int) -> int:
        """Row of one sequence in the sequence table."""
        ids = self.sequence_ids
        p = int(np.searchsorted(ids, sequence_id))
        if p >= len(ids) or int(ids[p]) != int(sequence_id):
            raise EngineError(f"sequence {sequence_id} not in columnar store")
        return p

    def positions_of(self, sequence_ids: "TypingSequence[int] | np.ndarray") -> np.ndarray:
        """Rows of many sequences, vectorized (ids must all be live)."""
        wanted = np.asarray(sequence_ids, dtype=np.int64)
        if wanted.size == 0:
            return np.empty(0, dtype=np.int64)
        ids = self.sequence_ids
        if len(ids) == 0:
            raise EngineError(f"sequences {wanted.tolist()} not in columnar store")
        positions = np.searchsorted(ids, wanted)
        clipped = np.minimum(positions, len(ids) - 1)
        bad = (positions >= len(ids)) | (ids[clipped] != wanted)
        if bool(bad.any()):
            raise EngineError(f"sequences {wanted[bad].tolist()} not in columnar store")
        return positions

    def segment_range(self, sequence_id: int) -> "tuple[int, int]":
        p = self.position_of(sequence_id)
        lo = int(self.segment_starts[p])
        return lo, lo + int(self.segment_counts[p])

    def rr_range(self, sequence_id: int) -> "tuple[int, int]":
        p = self.position_of(sequence_id)
        lo = int(self.rr_starts[p])
        return lo, lo + int(self.rr_counts[p])

    def behavior_range(self, sequence_id: int) -> "tuple[int, int]":
        p = self.position_of(sequence_id)
        lo = int(self.behavior_starts[p])
        return lo, lo + int(self.behavior_counts[p])

    def peak_count_of(self, sequence_id: int) -> int:
        """One sequence's stored peak count."""
        return int(self.peak_counts[self.position_of(sequence_id)])

    def rr_intervals_of(self, sequence_id: int) -> np.ndarray:
        """One sequence's R-R intervals (a copy — columns compact on delete)."""
        lo, hi = self.rr_range(sequence_id)
        return self.rr_values[lo:hi].copy()

    @property
    def nbytes(self) -> int:
        """Allocated bytes across every column, growth headroom included."""
        return (
            self._segments.nbytes
            + self._behavior.nbytes
            + self._rr.nbytes
            + self._sequences.nbytes
        )

    # ------------------------------------------------------------------
    # Shard protocol (a single store is the one-shard case)
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return 1

    def shards(self) -> "tuple[ColumnarSegmentStore, ...]":
        """The leaf column stores queries scatter over — just this one."""
        return (self,)

    def shard_of(self, sequence_id: int) -> "ColumnarSegmentStore":
        """The leaf store owning a sequence — just this one, matching
        the sharded store's routing interface."""
        return self

    def partition_ids(
        self, candidate_ids: "TypingSequence[int] | None"
    ) -> "list[TypingSequence[int] | None]":
        """Candidate ids split per shard, aligned with :meth:`shards`."""
        return [candidate_ids]

    def symbols_of(self, sequence_id: int, collapse_runs: bool = False) -> str:
        """One sequence's slope-sign string, read from the symbol columns.

        Byte-identical to the pattern indexes' stored strings: the
        positional view (``collapse_runs=False``) has one symbol per
        segment, the behavioural view merges runs.
        """
        if collapse_runs:
            lo, hi = self.behavior_range(sequence_id)
            return decode_symbols(self.behavior_symbols[lo:hi])
        lo, hi = self.segment_range(sequence_id)
        return decode_symbols(self.segment_symbols[lo:hi])

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(
        self,
        sequence_id: int,
        representation: "FunctionSeriesRepresentation",
        *,
        peak_count: int,
        rr: "np.ndarray | TypingSequence[float]",
    ) -> None:
        """Append one sequence's columns (see :meth:`extend`)."""
        self.extend([(sequence_id, representation, peak_count, rr)])

    def extend(
        self,
        items: "Iterable[tuple[int, FunctionSeriesRepresentation, int, np.ndarray]]",
    ) -> None:
        """Append many sequences as one column block.

        ``items`` yields ``(sequence_id, representation, peak_count,
        rr_intervals)`` tuples in strictly increasing id order.  The
        whole batch is stacked first and then processed columnarly — one
        concatenate per column, one slope classification, one run
        collapse and one per-sequence reduction for the entire block —
        so batched ingest pays a handful of large NumPy calls instead of
        a dozen small ones per sequence.  This block form is what the
        ingest pipeline appends per shard.
        """
        batch = list(items)
        if not batch:
            return
        last = int(self.sequence_ids[-1]) if len(self._sequences) else -1
        n_batch = len(batch)
        ids = np.empty(n_batch, dtype=np.int64)
        seg_counts = np.empty(n_batch, dtype=np.int64)
        rr_counts = np.empty(n_batch, dtype=np.int64)
        peak_counts = np.empty(n_batch, dtype=np.int64)
        source_lengths = np.empty(n_batch, dtype=np.int64)
        representation_columns = [name for name in _SEGMENT_SCHEMA if name not in ("sequence", "symbol")]
        column_parts: "dict[str, list[np.ndarray]]" = {name: [] for name in representation_columns}
        rr_parts: "list[np.ndarray]" = []
        for i, (sequence_id, representation, peak_count, rr) in enumerate(batch):
            sequence_id = int(sequence_id)
            if sequence_id <= last:
                raise EngineError(
                    f"sequence ids must be inserted in increasing order "
                    f"({sequence_id} after {last})"
                )
            last = sequence_id
            columns = representation.segment_columns()
            rr_arr = np.asarray(rr, dtype=np.float64)
            ids[i] = sequence_id
            seg_counts[i] = len(columns["slope"])
            rr_counts[i] = len(rr_arr)
            peak_counts[i] = int(peak_count)
            source_lengths[i] = int(representation.source_length)
            for name in representation_columns:
                column_parts[name].append(columns[name])
            rr_parts.append(rr_arr)

        block = {
            name: np.concatenate(parts).astype(_SEGMENT_SCHEMA[name], copy=False)
            for name, parts in column_parts.items()
        }
        slopes = block["slope"]
        n_total = len(slopes)
        codes = classify_slopes(slopes, self.theta)
        seg_seq = np.repeat(ids, seg_counts)
        starts = np.zeros(n_batch, dtype=np.int64)
        np.cumsum(seg_counts[:-1], out=starts[1:])
        nonempty = seg_counts > 0
        beh_counts = np.zeros(n_batch, dtype=np.int64)
        max_rising = np.zeros(n_batch, dtype=np.float64)
        if n_total:
            # Run collapse across the whole block, per-sequence semantics
            # in one pass: sequence boundaries always open a run.
            keep = run_start_mask(codes, starts[nonempty])
            collapsed = codes[keep]
            beh_seq = seg_seq[keep]
            # Empty sequences occupy no rows, so consecutive non-empty
            # slices are adjacent and reduceat over their starts is exact.
            beh_counts[nonempty] = np.add.reduceat(keep.astype(np.int64), starts[nonempty])
            rising = np.where(slopes > 0.0, slopes, 0.0)
            max_rising[nonempty] = np.maximum.reduceat(rising, starts[nonempty])
        else:
            collapsed = codes
            beh_seq = seg_seq

        rr_values = np.concatenate(rr_parts) if rr_parts else np.empty(0)
        rr_seq = np.repeat(ids, rr_counts)

        seg_start_base = len(self._segments)
        beh_start_base = len(self._behavior)
        rr_start_base = len(self._rr)
        beh_starts = np.zeros(n_batch, dtype=np.int64)
        np.cumsum(beh_counts[:-1], out=beh_starts[1:])
        rr_starts = np.zeros(n_batch, dtype=np.int64)
        np.cumsum(rr_counts[:-1], out=rr_starts[1:])

        block["sequence"] = seg_seq
        block["symbol"] = codes
        self._succinct_mark_stale()
        self._begin_write()
        self._segments.extend(block)
        self._behavior.extend(
            {"sequence": beh_seq, "symbol": collapsed.astype(np.int8, copy=False)}
        )
        self._rr.extend({"sequence": rr_seq, "value": rr_values})
        self._sequences.extend(
            {
                "sequence_id": ids,
                "segment_start": seg_start_base + starts,
                "segment_count": seg_counts,
                "behavior_start": beh_start_base + beh_starts,
                "behavior_count": beh_counts,
                "rr_start": rr_start_base + rr_starts,
                "rr_count": rr_counts,
                "peak_count": peak_counts,
                "max_rising_slope": max_rising,
                "source_length": source_lengths,
            }
        )
        self._generation += 1
        self._journal.record(self._generation, "insert", ids.tolist())
        self._commit_write()

    def delete(self, sequence_id: int) -> None:
        """Drop one sequence and compact every column in place."""
        p = self.position_of(sequence_id)
        seg_lo = int(self.segment_starts[p])
        seg_count = int(self.segment_counts[p])
        beh_lo = int(self.behavior_starts[p])
        beh_count = int(self.behavior_counts[p])
        rr_lo = int(self.rr_starts[p])
        rr_count = int(self.rr_counts[p])
        self._succinct_mark_stale()
        self._begin_write()
        self._segments.delete_range(seg_lo, seg_lo + seg_count)
        self._behavior.delete_range(beh_lo, beh_lo + beh_count)
        self._rr.delete_range(rr_lo, rr_lo + rr_count)
        self._sequences.delete_range(p, p + 1)
        # Rows past the deleted sequence shifted left; fix their offsets.
        self.segment_starts[p:] -= seg_count
        self.behavior_starts[p:] -= beh_count
        self.rr_starts[p:] -= rr_count
        self._generation += 1
        self._journal.record(self._generation, "delete", (int(sequence_id),))
        self._commit_write()

    def delete_many(self, sequence_ids: "TypingSequence[int] | np.ndarray") -> None:
        """Drop many sequences in one compaction pass per column table.

        The surviving rows (and recomputed offset table) are exactly
        what repeated :meth:`delete` calls would leave, but every
        column shifts left once for the whole batch and the store's
        ``generation`` bumps once — so cached query answers are
        invalidated a single time, not once per id.  Ids are de-duped;
        all of them must be live (validated before anything changes).
        """
        wanted = np.unique(np.asarray(list(sequence_ids), dtype=np.int64))
        if wanted.size == 0:
            return
        positions = self.positions_of(wanted)
        self._succinct_mark_stale()
        self._begin_write()

        def interval_drop_mask(starts: np.ndarray, counts: np.ndarray, n: int) -> np.ndarray:
            # Disjoint per-sequence row ranges as a +1/-1 boundary sweep;
            # np.add.at tolerates the equal start/stop indices that
            # zero-count ranges produce.
            delta = np.zeros(n + 1, dtype=np.int64)
            np.add.at(delta, starts, 1)
            np.add.at(delta, starts + counts, -1)
            return np.cumsum(delta[:n]) > 0

        self._segments.delete_where(
            interval_drop_mask(
                self.segment_starts[positions],
                self.segment_counts[positions],
                len(self._segments),
            )
        )
        self._behavior.delete_where(
            interval_drop_mask(
                self.behavior_starts[positions],
                self.behavior_counts[positions],
                len(self._behavior),
            )
        )
        self._rr.delete_where(
            interval_drop_mask(
                self.rr_starts[positions], self.rr_counts[positions], len(self._rr)
            )
        )
        sequence_drop = np.zeros(len(self._sequences), dtype=bool)
        sequence_drop[positions] = True
        self._sequences.delete_where(sequence_drop)
        # Offsets are exclusive prefix sums of the surviving counts —
        # the same table repeated single deletes would converge to.
        if len(self._sequences):
            for starts, counts in (
                (self.segment_starts, self.segment_counts),
                (self.behavior_starts, self.behavior_counts),
                (self.rr_starts, self.rr_counts),
            ):
                starts[0] = 0
                np.cumsum(counts[:-1], out=starts[1:])
        self._generation += 1
        self._journal.record(self._generation, "delete", wanted.tolist())
        self._commit_write()

    def replace(
        self,
        sequence_id: int,
        representation: "FunctionSeriesRepresentation",
        *,
        peak_count: int,
        rr: "np.ndarray | TypingSequence[float]",
    ) -> None:
        """Rewrite one live sequence's rows in place (see :meth:`replace_many`)."""
        self.replace_many([(sequence_id, representation, peak_count, rr)])

    def replace_many(
        self,
        items: "Iterable[tuple[int, FunctionSeriesRepresentation, int, np.ndarray]]",
    ) -> None:
        """Rewrite many live sequences' rows in place — the streaming
        append path's columnar tail rewrite.

        Each item's segment/behaviour/R-R rows are spliced over the
        sequence's existing row ranges (:meth:`_ColumnSet.replace_range`)
        and its sequence-table row is refreshed, leaving columns
        identical to deleting and re-inserting the sequence at its
        original position.  The whole batch bumps ``generation`` once
        and records one ``"append"`` journal entry, so cached answers
        see exactly one mutation naming exactly the touched ids.  Ids
        must be live and unique (validated before anything changes).
        """
        batch = list(items)
        if not batch:
            return
        ids = [int(item[0]) for item in batch]
        if len(set(ids)) != len(ids):
            raise EngineError("duplicate sequence ids in replace batch")
        self.positions_of(np.sort(np.asarray(ids, dtype=np.int64)))
        # Materialize and validate every payload before the first splice
        # — a malformed item must not leave the columns half-rewritten.
        prepared = []
        for sequence_id, representation, peak_count, rr in batch:
            rr_arr = np.asarray(rr, dtype=np.float64)
            if rr_arr.ndim != 1:
                raise EngineError(
                    f"rr intervals of sequence {int(sequence_id)} must be "
                    f"one-dimensional, got shape {rr_arr.shape}"
                )
            representation.segment_columns()  # raises here, not mid-splice
            prepared.append((int(sequence_id), representation, int(peak_count), rr_arr))
        self._succinct_mark_stale()
        self._begin_write()
        for sequence_id, representation, peak_count, rr_arr in prepared:
            self._replace_one(sequence_id, representation, peak_count, rr_arr)
        self._generation += 1
        self._journal.record(self._generation, "append", ids)
        self._commit_write()

    def _replace_one(
        self,
        sequence_id: int,
        representation: "FunctionSeriesRepresentation",
        peak_count: int,
        rr: np.ndarray,
    ) -> None:
        self._succinct_mark_stale()  # idempotent under the batch's earlier call
        p = self.position_of(sequence_id)
        columns = representation.segment_columns()
        slopes = np.asarray(columns["slope"], dtype=np.float64)
        codes = classify_slopes(slopes, self.theta)
        collapsed = collapse_code_runs(codes)
        n_seg = len(slopes)
        n_beh = len(collapsed)
        n_rr = len(rr)

        seg_lo = int(self.segment_starts[p])
        old_seg = int(self.segment_counts[p])
        beh_lo = int(self.behavior_starts[p])
        old_beh = int(self.behavior_counts[p])
        rr_lo = int(self.rr_starts[p])
        old_rr = int(self.rr_counts[p])

        block = {
            name: np.asarray(columns[name]).astype(_SEGMENT_SCHEMA[name], copy=False)
            for name in _SEGMENT_SCHEMA
            if name not in ("sequence", "symbol")
        }
        block["sequence"] = np.full(n_seg, sequence_id, dtype=np.int64)
        block["symbol"] = codes
        self._segments.replace_range(seg_lo, seg_lo + old_seg, block)
        self._behavior.replace_range(
            beh_lo,
            beh_lo + old_beh,
            {
                "sequence": np.full(n_beh, sequence_id, dtype=np.int64),
                "symbol": collapsed.astype(np.int8, copy=False),
            },
        )
        self._rr.replace_range(
            rr_lo,
            rr_lo + old_rr,
            {"sequence": np.full(n_rr, sequence_id, dtype=np.int64), "value": rr},
        )
        self.segment_counts[p] = n_seg
        self.behavior_counts[p] = n_beh
        self.rr_counts[p] = n_rr
        self.segment_starts[p + 1 :] += n_seg - old_seg
        self.behavior_starts[p + 1 :] += n_beh - old_beh
        self.rr_starts[p + 1 :] += n_rr - old_rr
        self.peak_counts[p] = peak_count
        # Same clamp-then-max the batched insert reduces with, so the
        # stored scalar is bit-identical across the two paths.
        self.max_rising_slopes[p] = (
            float(np.maximum(slopes, 0.0).max()) if n_seg else 0.0
        )
        self.source_lengths[p] = int(representation.source_length)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def check_consistency(self) -> None:
        """Verify the offset table partitions the columns exactly."""
        ids = self.sequence_ids
        if len(ids) > 1 and not bool((np.diff(ids) > 0).all()):
            raise EngineError("sequence table is not sorted by id")
        seg_starts = self.segment_starts
        seg_counts = self.segment_counts
        beh_starts = self.behavior_starts
        beh_counts = self.behavior_counts
        rr_starts = self.rr_starts
        rr_counts = self.rr_counts
        cursor_seg = 0
        cursor_beh = 0
        cursor_rr = 0
        for p in range(len(ids)):
            if int(seg_starts[p]) != cursor_seg:
                raise EngineError(
                    f"segment offset of sequence {int(ids[p])} is {int(seg_starts[p])}, "
                    f"expected {cursor_seg}"
                )
            if int(beh_starts[p]) != cursor_beh:
                raise EngineError(
                    f"behavior offset of sequence {int(ids[p])} is {int(beh_starts[p])}, "
                    f"expected {cursor_beh}"
                )
            if int(rr_starts[p]) != cursor_rr:
                raise EngineError(
                    f"rr offset of sequence {int(ids[p])} is {int(rr_starts[p])}, "
                    f"expected {cursor_rr}"
                )
            seg_hi = cursor_seg + int(seg_counts[p])
            beh_hi = cursor_beh + int(beh_counts[p])
            rr_hi = cursor_rr + int(rr_counts[p])
            if not bool((self.segment_sequences[cursor_seg:seg_hi] == ids[p]).all()):
                raise EngineError(f"segment rows of sequence {int(ids[p])} mislabelled")
            if not bool((self.behavior_sequences[cursor_beh:beh_hi] == ids[p]).all()):
                raise EngineError(f"behavior rows of sequence {int(ids[p])} mislabelled")
            if not bool((self.rr_sequences[cursor_rr:rr_hi] == ids[p]).all()):
                raise EngineError(f"rr rows of sequence {int(ids[p])} mislabelled")
            codes = self.segment_symbols[cursor_seg:seg_hi]
            recomputed = classify_slopes(self.segment_slopes[cursor_seg:seg_hi], self.theta)
            if not bool((codes == recomputed).all()):
                raise EngineError(
                    f"symbol column of sequence {int(ids[p])} disagrees with its slopes"
                )
            collapsed = self.behavior_symbols[cursor_beh:beh_hi]
            expected_runs = collapse_code_runs(codes)
            if len(collapsed) != len(expected_runs) or not bool(
                (collapsed == expected_runs).all()
            ):
                raise EngineError(
                    f"behavior column of sequence {int(ids[p])} is not the "
                    f"run-collapse of its symbol column"
                )
            cursor_seg = seg_hi
            cursor_beh = beh_hi
            cursor_rr = rr_hi
        if cursor_seg != len(self._segments):
            raise EngineError(
                f"offset table covers {cursor_seg} segment rows of {len(self._segments)}"
            )
        if cursor_beh != len(self._behavior):
            raise EngineError(
                f"offset table covers {cursor_beh} behavior rows of {len(self._behavior)}"
            )
        if cursor_rr != len(self._rr):
            raise EngineError(f"offset table covers {cursor_rr} rr rows of {len(self._rr)}")
        if self._succinct is not None and self._succinct.built:
            self._succinct.sync()
            self._succinct.check_parity()


def attach_from_manifest(
    manifest: "dict[str, Any]", attachments: BlockAttachments
) -> ColumnarSegmentStore:
    """Rebuild a zero-copy read view of a store from its shm manifest.

    Worker processes call this with a manifest produced by
    :meth:`ColumnarSegmentStore.shm_manifest` in the parent: every
    column becomes a NumPy view over an attached shared block (no rows
    are copied).  The view must never be mutated — workers only run
    read stages — and a retired block name raises ``FileNotFoundError``
    from ``attachments.get``, which the process executor converts into
    a snapshot retry.
    """
    store = ColumnarSegmentStore(
        theta=float(manifest["theta"]),
        symbol_backend=str(manifest.get("symbol_backend", "uncompressed")),
    )
    tables: "dict[str, dict[str, Any]]" = manifest["tables"]
    specs: "tuple[tuple[_ColumnSet, str], ...]" = (
        (store._segments, "segments"),
        (store._behavior, "behavior"),
        (store._rr, "rr"),
        (store._sequences, "sequences"),
    )
    for column_set, key in specs:
        table = tables[key]
        capacity = int(table["capacity"])
        arrays: "dict[str, np.ndarray]" = {}
        for name, (block_name, dtype_str) in table["columns"].items():
            dtype = np.dtype(dtype_str)
            if block_name is None:
                arrays[name] = np.empty(0, dtype=dtype)
            else:
                buf = attachments.get(block_name)
                arrays[name] = np.ndarray((capacity,), dtype=dtype, buffer=buf)
        column_set._arrays = arrays
        column_set._size = int(table["size"])
    store._generation = int(manifest["generation"])
    succinct_manifest = manifest.get("succinct")
    if succinct_manifest is not None:
        from repro.engine.succinct import attach_succinct_index

        store._succinct = attach_succinct_index(store, succinct_manifest, attachments)
    return store
