"""Process-pooled scatter over shared-memory columns.

:class:`ProcessParallelExecutor` runs the scattered per-store stages
(columnar prefilter, vectorized grade) in worker *processes*, sidestepping
the GIL entirely for the merge/materialize-adjacent Python work the
thread pool cannot parallelize.  The parent never ships column data:
each task carries only the query (pickled once per plan), the
database's pipeline config, a shard's shared-memory *manifest* (block
names + dtypes + row counts) and the pinned generation — the worker
attaches the named blocks (:class:`~repro.engine.shm.BlockAttachments`)
and wraps them in NumPy views with zero copies.

Stage callables are *reconstructed on the worker*: the query is
unpickled and re-planned against a config-only database stand-in
(stages never read the database object — they read the store and the
query's own memo, which plan-time warming rebuilds from the shipped
breaker), so the worker's prefilter/grade arithmetic is the very same
code path the serial executor runs — byte-identical results, merged by
shard position.

Safety/fallback ladder:

* heap-backed shards (no arena), unpicklable queries (e.g. test-local
  ``Query`` subclasses) or unpicklable breakers fall back to the
  inherited inline scatter — same answers, no pool;
* a worker attaching a retired block name gets ``FileNotFoundError``,
  surfaced here as :class:`~repro.engine.snapshot.SnapshotMoved` so the
  executor's retry loop re-pins and re-scatters;
* a broken pool (killed worker) is torn down and reported as an
  :class:`~repro.core.errors.EngineError`; the next query lazily builds
  a fresh pool.

The pool uses the ``spawn`` start method: the serving harness mixes
writer threads with queries, and forking a multithreaded parent is
undefined behaviour waiting to happen.  Top-k plans keep running inline
on the parent (their cluster index lives there); everything else
scatters.
"""

from __future__ import annotations

import os
import pickle
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from types import TracebackType
from typing import TYPE_CHECKING, Any

from repro.core.errors import EngineError
from repro.engine.columnar import ColumnarSegmentStore, attach_from_manifest
from repro.engine.executor import QueryExecutor
from repro.engine.plan import QueryPlan
from repro.engine.shm import BlockAttachments
from repro.engine.snapshot import SnapshotMoved, SnapshotToken

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.database import SequenceDatabase

__all__ = ["ProcessParallelExecutor"]


class _WorkerDatabase:
    """Config-only stand-in for the database inside a worker.

    Stages never read the database object (they take it as an argument
    but only touch the store and the query's memo); what *does* read it
    is plan-time memo warming — ``ShapeQuery._signature_for`` /
    ``TopKQuery._features_for`` — which needs exactly this pipeline
    config to rebuild the query-side arrays bit-identically.
    """

    # __weakref__ because queries memoize plan-time work keyed on a
    # weak reference to the database they planned against.
    __slots__ = ("theta", "normalize", "curve_kind", "breaker", "keep_raw", "__weakref__")

    def __init__(
        self,
        theta: float,
        normalize: bool,
        curve_kind: str,
        keep_raw: bool,
        breaker: object,
    ) -> None:
        self.theta = theta
        self.normalize = normalize
        self.curve_kind = curve_kind
        self.keep_raw = keep_raw
        self.breaker = breaker


# Per-worker state (each spawn gets its own copies).
_ATTACHMENTS: "BlockAttachments | None" = None
_PLAN_MEMO: "OrderedDict[tuple[bytes, bytes], tuple[QueryPlan, _WorkerDatabase]]" = (
    OrderedDict()
)
_PLAN_MEMO_LIMIT = 32


def _worker_plan(
    query_blob: bytes, config_blob: bytes
) -> "tuple[QueryPlan, _WorkerDatabase]":
    """Reconstruct (and memoize) the staged plan on the worker."""
    memo_key = (query_blob, config_blob)
    cached = _PLAN_MEMO.get(memo_key)
    if cached is not None:
        _PLAN_MEMO.move_to_end(memo_key)
        return cached
    theta, normalize, curve_kind, keep_raw, breaker = pickle.loads(config_blob)
    stub = _WorkerDatabase(
        float(theta), bool(normalize), str(curve_kind), bool(keep_raw), breaker
    )
    query = pickle.loads(query_blob)
    plan: QueryPlan = query.plan(stub)
    _PLAN_MEMO[memo_key] = (plan, stub)
    while len(_PLAN_MEMO) > _PLAN_MEMO_LIMIT:
        _PLAN_MEMO.popitem(last=False)
    return plan, stub


def _run_shard_stages(
    query_blob: bytes,
    config_blob: bytes,
    manifest: "dict[str, Any]",
    candidates: "list[int] | None",
    pinned_generation: int,
) -> object:
    """One shard's prefilter/vector stages, executed in a worker.

    Raises ``FileNotFoundError`` when any block name in the manifest
    was retired by the parent's arena — the parent converts that into a
    snapshot retry.  The return value is either a per-shard
    ``VectorVerdicts`` or a survivor id list, exactly what the inline
    shard task returns.
    """
    global _ATTACHMENTS
    if _ATTACHMENTS is None:
        _ATTACHMENTS = BlockAttachments()
    if int(manifest["generation"]) != int(pinned_generation):
        raise FileNotFoundError("manifest generation disagrees with pinned snapshot")
    plan, stub = _worker_plan(query_blob, config_blob)
    store: ColumnarSegmentStore = attach_from_manifest(manifest, _ATTACHMENTS)
    local = candidates
    try:
        if plan.prefilter is not None:
            local = plan.prefilter(stub, store, local)  # type: ignore[arg-type]
        if plan.vector_filter is not None:
            return plan.vector_filter(stub, store, local)  # type: ignore[arg-type]
        return local
    finally:
        _ATTACHMENTS.evict_stale()


class ProcessParallelExecutor(QueryExecutor):
    """Scatter-gather executor backed by a spawn process pool.

    Parameters
    ----------
    max_workers:
        Pool size cap; defaults to the machine's CPU count.  The lazily
        created pool is additionally capped at the shard count, since
        scatter dispatches at most one task per shard.
    """

    def __init__(self, max_workers: "int | None" = None) -> None:
        self._pool: "ProcessPoolExecutor | None" = None
        super().__init__()
        workers = int(max_workers) if max_workers is not None else (os.cpu_count() or 1)
        if workers < 1:
            raise EngineError(f"need at least one worker, got {workers}")
        self.max_workers = workers
        self._pool_workers = 0
        self._tasks_dispatched = 0
        self._inline_fallbacks = 0
        self._pool_breaks = 0

    def stats(self) -> "dict[str, object]":
        """Pool telemetry on top of the base executor's counters."""
        base = super().stats()
        base.update(
            backend="process",
            max_workers=self.max_workers,
            pool_workers=self._pool_workers,
            tasks_dispatched=self._tasks_dispatched,
            inline_fallbacks=self._inline_fallbacks,
            pool_breaks=self._pool_breaks,
        )
        return base

    def _ensure_pool(self, n_shards: int) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool_workers = max(1, min(self.max_workers, n_shards))
            self._pool = ProcessPoolExecutor(
                max_workers=self._pool_workers, mp_context=get_context("spawn")
            )
        return self._pool

    def _scatter_stages(
        self,
        database: "SequenceDatabase",
        plan: QueryPlan,
        shards: "tuple[ColumnarSegmentStore, ...]",
        parts: "list[list[int] | None]",
        snapshot: "SnapshotToken | None",
    ) -> "list[object]":
        if self.max_workers == 1:
            self._inline_fallbacks += 1
            return super()._scatter_stages(database, plan, shards, parts, snapshot)
        manifests = [shard.shm_manifest() for shard in shards]
        if any(manifest is None for manifest in manifests):
            # Heap-backed shards: nothing for a worker to attach to.
            self._inline_fallbacks += 1
            return super()._scatter_stages(database, plan, shards, parts, snapshot)
        try:
            query_blob = pickle.dumps(plan.query)
            config_blob = pickle.dumps(
                (
                    database.theta,
                    database.normalize,
                    database.curve_kind,
                    database.keep_raw,
                    database.breaker,
                )
            )
        except Exception:
            # Test-local Query subclasses (or exotic breakers) don't
            # pickle; run them inline with identical semantics.
            self._inline_fallbacks += 1
            return super()._scatter_stages(database, plan, shards, parts, snapshot)
        # Pin each shard to the generation captured in the snapshot
        # token at plan time — never to the manifest itself, or a stale
        # manifest would carry a matching stale pin and slip through.
        if snapshot is not None and len(snapshot.generations) == len(shards):
            pins = [int(value) for value in snapshot.generations]
        else:
            pins = [int(manifest["generation"]) for manifest in manifests]
        pool = self._ensure_pool(len(shards))
        try:
            futures = [
                pool.submit(
                    _run_shard_stages,
                    query_blob,
                    config_blob,
                    manifest,
                    list(part) if part is not None else None,
                    pin,
                )
                for manifest, part, pin in zip(manifests, parts, pins)
                if manifest is not None
            ]
            self._tasks_dispatched += len(futures)
            return [future.result() for future in futures]
        except FileNotFoundError as exc:
            raise SnapshotMoved(f"shared block retired under a pinned read: {exc}")
        except BrokenProcessPool as exc:
            self._pool_breaks += 1
            self.close()
            raise EngineError(f"process pool broke mid-scatter: {exc}")

    def close(self) -> None:
        """Shut the worker pool down (idempotent; pool rebuilds on use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ProcessParallelExecutor":
        return self

    def __exit__(
        self,
        exc_type: "type[BaseException] | None",
        exc: "BaseException | None",
        tb: "TracebackType | None",
    ) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - finalizer best effort
        self.close()
