"""Query plans: the staged form a query takes inside the engine.

A :class:`QueryPlan` decomposes query evaluation into up to four
stages, each optional except the last:

``probe``
    Index lookup producing a candidate id list with no false dismissals
    (``None`` means every live sequence is a candidate) — the same
    contract as the legacy ``Query.candidates``.
``prefilter``
    A columnar narrowing pass: drops candidates that the columnar store
    proves can only be rejected (e.g. a shape query's symbol-structure
    mismatch, an exemplar query's length mismatch).  Must never drop a
    candidate that could grade exact or approximate.
``vector_filter``
    Full vectorized grading: one NumPy predicate per feature dimension
    over the columnar store, returning :class:`VectorVerdicts`.  Plans
    with this stage never touch per-sequence Python grading.
``residual``
    Per-sequence scalar grading, used when no ``vector_filter`` exists
    (shape/exemplar/pattern queries and third-party ``Query``
    subclasses).  This is exactly the legacy ``Query.grade``.

Top-k plans replace the per-store stages with a single ``topk`` stage
(probe cluster representatives, lower-bound prune, heap-refine — see
:mod:`repro.engine.clustering`) that each shard runs over its own
cluster index; the executor merges the per-shard partial heaps and
cuts the result at ``limit``.  ``limit`` alone (no ``topk`` stage)
truncates an ordinary plan's sorted matches — the ``db.query(...,
limit=k)`` form for queries without a distance-pruned path.

``collect`` plans are the whole-shard analogue without a heap: each
shard produces its complete match list in one stage (e.g. a motif
query reading positions straight off the succinct symbol index) and
the executor merges the per-shard lists in sort order — the
scatter-gather shape of ``topk`` with no cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.query.results import QueryMatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.columnar import ColumnarSegmentStore
    from repro.query.database import SequenceDatabase
    from repro.query.queries import Query

__all__ = ["DimensionColumn", "VectorVerdicts", "QueryPlan"]


@dataclass(frozen=True)
class DimensionColumn:
    """Per-candidate deviation amounts along one feature dimension."""

    dimension: str
    amounts: np.ndarray
    bound: float


@dataclass(frozen=True)
class VectorVerdicts:
    """Output of a vectorized filter stage.

    ``sequence_ids[i]`` deviates ``dimensions[d].amounts[i]`` along each
    graded dimension; the executor turns these arrays into graded
    :class:`~repro.query.results.QueryMatch` objects without touching
    per-sequence Python code.
    """

    sequence_ids: np.ndarray
    dimensions: "tuple[DimensionColumn, ...]"


ProbeStage = Callable[["SequenceDatabase"], "list[int] | None"]
PrefilterStage = Callable[
    ["SequenceDatabase", "ColumnarSegmentStore", "list[int] | None"], "list[int]"
]
VectorStage = Callable[
    ["SequenceDatabase", "ColumnarSegmentStore", "list[int] | None"], VectorVerdicts
]
ResidualStage = Callable[["SequenceDatabase", int], QueryMatch]
TopKStage = Callable[
    ["SequenceDatabase", "ColumnarSegmentStore", bool], "list[QueryMatch]"
]


@dataclass(frozen=True)
class QueryPlan:
    """An executable staged plan for one query.

    ``fingerprint`` is the query's content key for the plan-level result
    cache (:mod:`repro.engine.cache`): two queries with equal
    fingerprints must produce equal results against the same store
    generation.  ``None`` means the plan's results are uncacheable.
    """

    query: "Query"
    residual: ResidualStage
    probe: "ProbeStage | None" = None
    prefilter: "PrefilterStage | None" = None
    vector_filter: "VectorStage | None" = None
    topk: "TopKStage | None" = None
    collect: "TopKStage | None" = None
    limit: "int | None" = None
    label: str = ""
    fingerprint: "tuple | None" = None

    def stages(self) -> "list[str]":
        """Human-readable stage list, in execution order."""
        if self.topk is not None:
            return ["probe-representatives", "lower-bound-prune", "heap-refine"]
        if self.collect is not None:
            return ["motif-collect"]
        names = []
        if self.probe is not None:
            names.append("index-probe")
        if self.prefilter is not None:
            names.append("columnar-prefilter")
        if self.vector_filter is not None:
            names.append("vectorized-grade")
        else:
            names.append("residual-grade")
        return names

    def describe(self) -> str:
        label = self.label or type(self.query).__name__
        described = f"{label}: {' -> '.join(self.stages())}"
        if self.limit is not None:
            described += f" [limit={self.limit}]"
        return described
