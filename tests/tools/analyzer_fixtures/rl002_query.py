"""Seeded RL002 violations: incomplete / mutable query fingerprints."""


class Query:
    def grade(self, database, sequence_id):
        raise NotImplementedError


class WindowQuery(Query):
    def __init__(self, width, mode, phase):
        self.width = float(width)  # expect[RL002]
        self._mode = str(mode)
        self._phase = float(phase)  # expect[RL002]
        self._digest = None

    @property
    def mode(self):
        return self._mode

    @mode.setter
    def mode(self, value):  # expect[RL002]
        self._mode = str(value)

    def grade(self, database, sequence_id):
        # Reads all three parameters on the evaluation path.
        score = database.width_of(sequence_id) - self.width
        if self.mode == "strict":
            score += self._phase
        return score

    def fingerprint(self):
        # _phase is missing; width is covered but publicly assignable;
        # mode has a public setter.
        if self._digest is None:
            self._digest = (self.width, self.mode)
        return (type(self).__qualname__,) + self._digest
