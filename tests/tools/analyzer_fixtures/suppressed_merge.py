"""Every seeded violation here is suppressed; expected findings: none."""

import numpy as np

# repro: ignore-file[RL005]


def merge_order(values):
    return np.argsort(values)


def loose_ids(ids):
    return list(set(ids))


class WarmQuery:
    def plan(self, database):
        return QueryPlan(
            query=self,
            prefilter=self._prefilter,
            vector_filter=self._vector_filter,
        )

    def _prefilter(self, database, store, candidate_ids):  # repro: ignore[RL004]
        # Def-line suppression covers the whole body.
        self._memo = store
        self._memo_rows = len(candidate_ids or [])
        return []

    def _vector_filter(self, database, store, candidate_ids):
        self._last = store  # repro: ignore[RL004]
        return []
