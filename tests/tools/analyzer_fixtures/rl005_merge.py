"""Seeded RL005 violations (filename puts it in the merge-module scope)."""

import numpy as np


def merge_ids(ids):
    unique = set(ids)
    return list(unique)  # expect[RL005]


def tagged(labels):
    return [label for label in set(labels)]  # expect[RL005]


def order_rows(values):
    return np.argsort(values)  # expect[RL005]


def stable_order(values):
    # Compliant: stable kind requested.
    return np.argsort(values, kind="stable")


def ordered_union(left, right):
    return sorted(left | set(right))  # sorted() erases set order: clean
