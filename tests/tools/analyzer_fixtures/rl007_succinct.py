"""Seeded RL007 violations: succinct-sync contract breaches.

Each ``# expect[RLxxx]`` trailing comment marks a line the analyzer
must report; the test compares the marked set exactly against the
findings.  Never imported — the analyzer only parses.
"""


class _ColumnSet:
    def __init__(self, schema):
        self.schema = schema

    def extend(self, rows):
        pass

    def delete_range(self, lo, hi):
        pass


class SuccinctSymbolIndex:
    def note_mutation(self):
        pass


class SuccinctBackedStore:
    def __init__(self):
        self._segments = _ColumnSet(())
        self._succinct = SuccinctSymbolIndex()

    def extend(self, rows):
        # Compliant: the mark-stale hook snapshots before the write.
        self._succinct_mark_stale()
        self._segments.extend(rows)

    def replace(self, rows):
        # Compliant: notifies the index object directly.
        self._succinct.note_mutation()
        self._segments.extend(rows)

    def reset(self, rows):
        # Compliant: dropping the index is also a (blunt) notification.
        self._succinct = None
        self._segments.extend(rows)

    def delete(self, lo, hi):  # expect[RL007]
        # Rewrites columns with no notification: the wavelet-matrix
        # mirror keeps answering over the pre-delete layout.
        self._segments.delete_range(lo, hi)

    def compact(self):  # expect[RL007]
        # Subscript write through the column set, equally unnotified.
        self._segments[0] = ()

    def _succinct_mark_stale(self):
        pass


class PlainStore:
    # No _succinct attribute: outside the rule's scope even though it
    # mutates columns without any notification.
    def __init__(self):
        self._segments = _ColumnSet(())

    def delete(self, lo, hi):
        self._segments.delete_range(lo, hi)
