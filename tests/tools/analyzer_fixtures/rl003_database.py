"""Seeded RL003 violation: a config read the cache epoch misses."""


class SequenceDatabase:
    def __init__(self, theta, smoothing, store=None):
        self._theta = float(theta)
        self.smoothing = float(smoothing)
        self.store = store

    @property
    def theta(self):
        return self._theta

    def cache_epoch(self):
        # smoothing is missing: answers depending on it cache forever.
        return (self.store.generation, self.theta)


class SmoothedQuery:
    def plan(self, database):
        return QueryPlan(query=self, prefilter=self._prefilter)

    def _prefilter(self, database, store, candidate_ids):
        # theta is an epoch component (through the property); smoothing
        # is not, so this read makes cached answers stale on change.
        threshold = database.theta
        if database.smoothing > threshold:  # expect[RL003]
            return []
        return self._narrow(database, candidate_ids)

    def _narrow(self, database, candidate_ids):
        # Transitively reachable from the stage: still checked.
        return [i for i in candidate_ids or [] if i > database.smoothing]  # expect[RL003]
