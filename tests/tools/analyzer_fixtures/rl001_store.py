"""Seeded RL001 violations: journalled-store contract breaches.

Each ``# expect[RLxxx]`` trailing comment marks a line the analyzer
must report; the test compares the marked set exactly against the
findings.  Never imported — the analyzer only parses.
"""


class _ColumnSet:
    def __init__(self, schema):
        self.schema = schema

    def extend(self, rows):
        pass

    def delete_range(self, lo, hi):
        pass


class MutationJournal:
    def record(self, ids):
        pass


class ColumnarSegmentStore:
    def __init__(self):
        self._segments = _ColumnSet(())
        self._generation = 0
        self._journal = MutationJournal()

    def extend(self, rows, ids):
        # Compliant mutator: bump + record on the only path.
        self._segments.extend(rows)
        self._generation += 1
        self._journal.record(ids)

    def delete(self, lo, hi, ids):  # expect[RL001]
        # Bumps but never records: stale cached answers survive.
        self._segments.delete_range(lo, hi)
        self._generation += 1

    def replace(self, rows, ids, validate):
        # The early return skips the bump: one exit breaks parity, and
        # the violation is reported at that exact exit.
        self._segments.extend(rows)
        if validate:
            self._journal.record(ids)
            return len(rows)  # expect[RL001]
        self._generation += 1
        self._journal.record(ids)
        return len(rows)

    def truncate(self, ids):  # expect[RL001]
        # Journals correctly but is not a reviewed mutator surface.
        self._segments.delete_range(0, 1)
        self._generation += 1
        self._journal.record(ids)
