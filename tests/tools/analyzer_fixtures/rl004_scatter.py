"""Seeded RL004 violations: shared-state writes on the scatter path."""


class ShardQuery:
    def plan(self, database):
        return QueryPlan(query=self, topk=self._topk_stage)

    def _topk_stage(self, database, store, include_approximate):
        self._last_store = store  # expect[RL004]
        return self._collect(store)

    def _collect(self, store):
        # Transitively reachable from the scattered stage.
        self._seen += 1  # expect[RL004]
        return []


class ParallelExecutor:
    def _scatter(self, tasks):
        return [task() for task in tasks]

    def _shard_task(self, shard):
        def run():
            self._hits += 1  # expect[RL004]
            return shard

        return run
