"""Seeded RL006 violations (imports shared_memory, so the rule scans it)."""

from multiprocessing import shared_memory


def leaky_scratch(nbytes):
    block = shared_memory.SharedMemory(create=True, size=nbytes)  # expect[RL006]
    return block.name


class GrabBag:
    """Creates blocks but defines no close(): nothing releases them."""

    def __init__(self):
        self._blocks = []

    def grab(self, nbytes):
        self._blocks.append(
            shared_memory.SharedMemory(create=True, size=nbytes)  # expect[RL006]
        )


class Owner:
    """Compliant: creates, closes and unlinks its own blocks."""

    def __init__(self):
        self._blocks = {}

    def allocate(self, nbytes):
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self._blocks[shm.name] = shm
        return shm

    def close(self):
        for shm in self._blocks.values():
            shm.unlink()
            shm.close()
        self._blocks.clear()


class Rogue:
    """Second unlinker: tears names out from under the Owner."""

    def reap(self, shm):
        shm.unlink()  # expect[RL006]


def orphan_cleanup(shm):
    shm.unlink()  # expect[RL006]


def borrowed_view(name):
    # Compliant: a with-item releases on every exit path.
    with shared_memory.SharedMemory(name=name) as shm:
        return bytes(shm.buf[:8])


def attach(name):
    # Compliant: ownership returns to the caller (an owning class).
    return shared_memory.SharedMemory(name=name)
