"""The invariant analyzer catches exactly its seeded violations.

Each fixture under ``analyzer_fixtures/`` marks every line the analyzer
must report with a trailing ``# expect[RLxxx]`` comment; the tests
compare the analyzer's findings against the marked set *exactly*, so
both missed violations and false positives fail.  A self-check asserts
the shipped ``src/repro`` tree is clean — the same gate CI enforces.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.tools.analyzer import Finding, all_rules, analyze_paths

FIXTURES = Path(__file__).parent / "analyzer_fixtures"
SRC_ROOT = Path(repro.__file__).parents[1]

_EXPECT = re.compile(r"#\s*expect\[([A-Z0-9,\s]+)\]")

RULE_IDS = ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007")


def expected_markers(path: Path) -> "set[tuple[str, int]]":
    """(rule_id, line) pairs marked with ``# expect[...]`` comments."""
    expected = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT.search(line)
        if match:
            for rule_id in match.group(1).split(","):
                expected.add((rule_id.strip(), lineno))
    return expected


def reported(path: Path, select=None) -> "set[tuple[str, int]]":
    return {
        (finding.rule_id, finding.line)
        for finding in analyze_paths([str(path)], select=select)
    }


class TestSeededFixtures:
    @pytest.mark.parametrize(
        "fixture",
        sorted(p.name for p in FIXTURES.glob("*.py")),
    )
    def test_findings_match_markers_exactly(self, fixture):
        path = FIXTURES / fixture
        assert reported(path) == expected_markers(path)

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_every_rule_catches_its_seeded_violation(self, rule_id):
        found = set()
        for path in FIXTURES.glob("*.py"):
            found.update(rule for rule, _line in reported(path))
        assert rule_id in found

    def test_suppressions_silence_all_seeded_violations(self):
        assert reported(FIXTURES / "suppressed_merge.py") == set()

    def test_select_narrows_to_one_rule(self):
        path = FIXTURES / "rl005_merge.py"
        assert reported(path, select=["RL005"]) == expected_markers(path)
        assert reported(path, select=["RL001"]) == set()


class TestShippedTreeIsClean:
    def test_src_repro_has_zero_findings(self):
        findings = analyze_paths([str(SRC_ROOT / "repro")])
        assert findings == [], "\n".join(f.render() for f in findings)


class TestRegistry:
    def test_all_five_rules_registered(self):
        assert tuple(rule.rule_id for rule in all_rules()) == RULE_IDS

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="RL999"):
            analyze_paths([str(FIXTURES)], select=["RL999"])

    def test_findings_are_ordered_and_renderable(self):
        findings = analyze_paths([str(FIXTURES / "rl001_store.py")])
        assert findings == sorted(findings)
        for finding in findings:
            assert isinstance(finding, Finding)
            rendered = finding.render()
            assert finding.rule_id in rendered
            assert f":{finding.line}:" in rendered


def run_cli(*args: str) -> "subprocess.CompletedProcess":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.tools.analyzer", *args],
        capture_output=True,
        text=True,
        env=env,
    )


class TestCommandLine:
    def test_violations_exit_1_and_print_rule_ids(self):
        result = run_cli(str(FIXTURES / "rl005_merge.py"))
        assert result.returncode == 1
        assert "RL005" in result.stdout

    def test_clean_file_exits_0(self):
        result = run_cli(str(FIXTURES / "suppressed_merge.py"))
        assert result.returncode == 0
        assert "0 findings" in result.stdout

    def test_json_report(self, tmp_path):
        out = tmp_path / "report.json"
        result = run_cli(
            str(FIXTURES / "rl005_merge.py"),
            "--format",
            "json",
            "--output",
            str(out),
        )
        assert result.returncode == 1
        report = json.loads(out.read_text())
        assert report["count"] == len(report["findings"]) > 0
        assert {f["rule_id"] for f in report["findings"]} == {"RL005"}

    def test_unknown_rule_exits_2(self):
        result = run_cli(str(FIXTURES), "--select", "RL999")
        assert result.returncode == 2
        assert "RL999" in result.stderr

    def test_no_paths_exits_2(self):
        result = run_cli()
        assert result.returncode == 2

    def test_list_rules(self):
        result = run_cli("--list-rules")
        assert result.returncode == 0
        for rule_id in RULE_IDS:
            assert rule_id in result.stdout
