"""Tests for the standalone reproduction report."""

from __future__ import annotations

from repro.tools.report import (
    main,
    report_compression,
    report_ecg,
    report_fig3_5,
    report_goalpost,
    report_rr_index,
)


class TestSections:
    def test_fig3_5_verdicts(self):
        lines = report_fig3_5()
        body = "\n".join(lines)
        # The noisy copy is the only value-based match; every transform
        # is a feature-based match.
        assert body.count("value:match") == 1
        assert body.count("feature:match") == 6

    def test_goalpost_precision_recall(self):
        (line,) = report_goalpost(1)
        assert "precision 1.00" in line
        assert "recall" in line

    def test_ecg_rr_lists(self):
        lines = report_ecg()
        assert any("[135, 175]" in line for line in lines)
        assert any("[115, 135, 120]" in line for line in lines)

    def test_rr_index_agreement(self):
        (line,) = report_rr_index(1)
        assert "3/3" in line

    def test_compression_rows(self):
        lines = report_compression(1)
        assert len(lines) == 4  # header + 3 epsilon rows


class TestMain:
    def test_quick_run(self, capsys):
        assert main(["--quick"]) == 0
        out = capsys.readouterr().out
        assert "reproduction report" in out
        assert "Figure 10" in out
        assert "Compression sweep" in out
