"""Streaming extension of breaks: suffix rescans equal from-scratch breaks.

The append path's foundation: for the online breakers,
``extend_indices(extended, previous)`` must reproduce
``break_indices(extended)`` bit for bit while touching only the suffix
past the last closed boundary, and the frontier-batched
``extend_indices_many`` must match the per-sequence scalar path for any
batch.  Offline breakers fall back to a full (frontier-batched)
re-break, which is trivially identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sequence import Sequence
from repro.segmentation import InterpolationBreaker
from repro.segmentation.online import IncrementalRegressionBreaker, SlidingWindowBreaker


def _wavy(rng, n, name="w"):
    t = np.arange(n, dtype=float)
    values = (
        np.sin(2 * np.pi * t / rng.uniform(12, 40))
        + 0.3 * np.sin(2 * np.pi * t / rng.uniform(3, 9))
        + rng.normal(0.0, 0.05, n)
    )
    return Sequence(t, values, name=name)


def _cases(seed=7, count=12):
    rng = np.random.default_rng(seed)
    cases = []
    for i in range(count):
        n = int(rng.integers(40, 220))
        full = _wavy(rng, n, name=f"w{i}")
        prefix_len = int(rng.integers(10, n - 5))
        cases.append((full, prefix_len))
    return cases


BREAKERS = [
    IncrementalRegressionBreaker(0.2),
    IncrementalRegressionBreaker(0.6, min_points=4),
    SlidingWindowBreaker(0.25, window=8, degree=1),
    SlidingWindowBreaker(0.4, window=5, degree=2),
]


@pytest.mark.parametrize("breaker", BREAKERS, ids=lambda b: repr(b))
class TestExtendEqualsFromScratch:
    def test_single_extension(self, breaker):
        for full, prefix_len in _cases():
            prefix = full[:prefix_len]
            previous = breaker.break_indices(prefix)
            extended = breaker.extend_indices(full, previous)
            assert extended == breaker.break_indices(full)

    def test_chained_extensions(self, breaker):
        # Appending in several installments must agree with one big break.
        full, _ = _cases(seed=3, count=1)[0]
        cuts = [30, 60, 110, len(full)]
        boundaries = breaker.break_indices(full[: cuts[0]])
        for cut in cuts[1:]:
            boundaries = breaker.extend_indices(full[:cut], boundaries)
        assert boundaries == breaker.break_indices(full)


class TestFrontierBatch:
    def test_batch_equals_scalar(self):
        breaker = IncrementalRegressionBreaker(0.3)
        items = []
        for full, prefix_len in _cases(seed=11, count=9):
            previous = breaker.break_indices(full[:prefix_len])
            items.append((full, previous))
        batched = breaker.extend_indices_many(items)
        scalar = [breaker.extend_indices(seq, prev) for seq, prev in items]
        assert batched == scalar
        # And both equal from-scratch breaking of the extended data.
        assert batched == [breaker.break_indices(seq) for seq, __ in items]

    def test_uneven_suffixes_one_long_straggler(self):
        # One lane's rescan runs ~100x longer than the rest: it must
        # retire the short lanes from the frontier and finish scalar-ly,
        # still bit-identical to per-sequence extension.
        rng = np.random.default_rng(23)
        breaker = IncrementalRegressionBreaker(0.25)
        items = []
        long_full = _wavy(rng, 3000, name="long")
        items.append((long_full, breaker.break_indices(long_full[:10])))
        for i in range(10):
            full = _wavy(rng, 60, name=f"short-{i}")
            items.append((full, breaker.break_indices(full[:45])))
        batched = breaker.extend_indices_many(items)
        assert batched == [breaker.extend_indices(seq, prev) for seq, prev in items]

    def test_sub_frontier_batches_are_scalar_finished(self):
        # 3..7 items: below the frontier minimum, everything runs through
        # the state-carrying scalar finish from round zero.
        rng = np.random.default_rng(29)
        breaker = IncrementalRegressionBreaker(0.3)
        for count in (3, 5, 7):
            items = []
            for i in range(count):
                full = _wavy(rng, 80 + 13 * i, name=f"s{i}")
                items.append((full, breaker.break_indices(full[: 30 + 7 * i])))
            assert breaker.extend_indices_many(items) == [
                breaker.extend_indices(seq, prev) for seq, prev in items
            ]

    def test_small_batches_take_the_scalar_path(self):
        breaker = IncrementalRegressionBreaker(0.3)
        full, prefix_len = _cases(seed=5, count=1)[0]
        previous = breaker.break_indices(full[:prefix_len])
        assert breaker.extend_indices_many([(full, previous)]) == [
            breaker.break_indices(full)
        ]
        assert breaker.extend_indices_many([]) == []

    def test_empty_previous_breaks_from_scratch(self):
        breaker = IncrementalRegressionBreaker(0.3)
        full, __ = _cases(seed=9, count=1)[0]
        assert breaker.extend_indices(full, []) == breaker.break_indices(full)


class TestOfflineFallback:
    def test_base_extend_rebreaks_fully(self):
        breaker = InterpolationBreaker(0.5)
        for full, prefix_len in _cases(seed=13, count=4):
            previous = breaker.break_indices(full[:prefix_len])
            assert breaker.extend_indices(full, previous) == breaker.break_indices(full)
        items = [
            (full, breaker.break_indices(full[:prefix_len]))
            for full, prefix_len in _cases(seed=17, count=4)
        ]
        assert breaker.extend_indices_many(items) == breaker.break_indices_many(
            [seq for seq, __ in items]
        )
