"""Tests for the generic Figure-8 recursive template."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sequence import Sequence
from repro.segmentation import RecursiveCurveFitBreaker, is_partition, verify_tolerance


@pytest.fixture
def wavy():
    t = np.arange(100, dtype=float)
    return Sequence(t, np.sin(t / 6.0) * 5.0, name="wavy")


class TestTemplate:
    @pytest.mark.parametrize("kind", ["interpolation", "regression", "poly:2"])
    def test_partition_for_all_kinds(self, wavy, kind):
        bounds = RecursiveCurveFitBreaker(0.5, curve_kind=kind).break_indices(wavy)
        assert is_partition(bounds, len(wavy))

    @pytest.mark.parametrize("kind", ["interpolation", "regression"])
    def test_tolerance_for_linear_kinds(self, wavy, kind):
        bounds = RecursiveCurveFitBreaker(0.5, curve_kind=kind).break_indices(wavy)
        assert verify_tolerance(wavy, bounds, kind, 0.5)

    def test_zero_epsilon_still_terminates(self, wavy):
        bounds = RecursiveCurveFitBreaker(0.0, curve_kind="interpolation").break_indices(wavy)
        assert is_partition(bounds, len(wavy))
        # Near-zero tolerance on curved data: every segment is tiny.
        assert all(end - start + 1 <= 3 for start, end in bounds)

    def test_huge_epsilon_one_segment(self, wavy):
        bounds = RecursiveCurveFitBreaker(1e6, curve_kind="interpolation").break_indices(wavy)
        assert bounds == [(0, len(wavy) - 1)]

    def test_poly2_fits_quadratics_whole(self):
        t = np.linspace(0, 10, 60)
        seq = Sequence(t, 2.0 * t * t - t)
        bounds = RecursiveCurveFitBreaker(0.5, curve_kind="poly:2").break_indices(seq)
        assert bounds == [(0, 59)]

    def test_interpolation_splits_quadratic(self):
        # A line cannot follow a parabola: the template must split.
        t = np.linspace(0, 10, 60)
        seq = Sequence(t, 2.0 * t * t - t)
        bounds = RecursiveCurveFitBreaker(0.5, curve_kind="interpolation").break_indices(seq)
        assert len(bounds) > 1

    def test_progress_on_adversarial_spike(self):
        # A single huge spike at the first interior sample.
        values = np.zeros(20)
        values[1] = 100.0
        bounds = RecursiveCurveFitBreaker(0.5, curve_kind="interpolation").break_indices(
            Sequence.from_values(values)
        )
        assert is_partition(bounds, 20)

    def test_spike_at_last_interior_sample(self):
        values = np.zeros(20)
        values[18] = 100.0
        bounds = RecursiveCurveFitBreaker(0.5, curve_kind="interpolation").break_indices(
            Sequence.from_values(values)
        )
        assert is_partition(bounds, 20)
