"""Tests for the online sliding-window breaker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SegmentationError
from repro.core.sequence import Sequence
from repro.segmentation import SlidingWindowBreaker, is_partition


class TestSlidingWindow:
    def test_partition(self, noisy_sine):
        bounds = SlidingWindowBreaker(0.3, window=8, degree=1).break_indices(noisy_sine)
        assert is_partition(bounds, len(noisy_sine))

    def test_straight_line_one_segment(self, ramp_sequence):
        bounds = SlidingWindowBreaker(0.1, window=6, degree=1).break_indices(ramp_sequence)
        assert bounds == [(0, len(ramp_sequence) - 1)]

    def test_breaks_on_level_jump(self):
        values = np.concatenate([np.zeros(20), np.full(20, 10.0)])
        bounds = SlidingWindowBreaker(1.0, window=6, degree=1).break_indices(
            Sequence.from_values(values)
        )
        assert len(bounds) >= 2
        # The first segment ends right at the jump.
        assert bounds[0][1] == 19

    def test_streaming_equals_batch(self, noisy_sine):
        breaker = SlidingWindowBreaker(0.3, window=8, degree=1)
        batch = breaker.break_indices(noisy_sine)
        session = breaker.session()
        for t, v in noisy_sine:
            session.feed(t, v)
        assert session.finish() == batch

    def test_feed_reports_segment_close(self):
        breaker = SlidingWindowBreaker(1.0, window=4, degree=1)
        session = breaker.session()
        closed_events = 0
        values = np.concatenate([np.zeros(10), np.full(10, 10.0)])
        for t, v in Sequence.from_values(values):
            if session.feed(t, v):
                closed_events += 1
        assert closed_events >= 1

    def test_finish_without_samples_rejected(self):
        session = SlidingWindowBreaker(1.0).session()
        with pytest.raises(SegmentationError):
            session.finish()

    def test_quadratic_window_follows_parabola(self):
        t = np.linspace(0, 10, 80)
        seq = Sequence(t, t * t)
        linear = SlidingWindowBreaker(0.5, window=10, degree=1).break_indices(seq)
        quadratic = SlidingWindowBreaker(0.5, window=10, degree=2).break_indices(seq)
        assert len(quadratic) <= len(linear)

    def test_bad_parameters_rejected(self):
        with pytest.raises(SegmentationError):
            SlidingWindowBreaker(1.0, window=1)
        with pytest.raises(SegmentationError):
            SlidingWindowBreaker(1.0, degree=-1)

    def test_online_less_accurate_than_offline(self, two_peak_sequence):
        """The paper's observed deficiency: online breaking needs more
        segments than offline for comparable tolerance (or worse fits)."""
        from repro.segmentation import InterpolationBreaker

        offline = InterpolationBreaker(0.5).break_indices(two_peak_sequence)
        online = SlidingWindowBreaker(0.5, window=8, degree=1).break_indices(two_peak_sequence)
        assert len(online) >= len(offline) - 2
