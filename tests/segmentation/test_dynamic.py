"""Tests for the dynamic-programming baseline."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.errors import SegmentationError
from repro.core.sequence import Sequence
from repro.functions.linear import fit_regression_line
from repro.segmentation import DynamicProgrammingBreaker, is_partition
from repro.segmentation.dynamic import regression_sse_table_prefix


class TestPrefixSSE:
    def test_matches_direct_regression_sse(self):
        rng = np.random.default_rng(12)
        seq = Sequence.from_values(rng.normal(0, 3, 30))
        prefix = regression_sse_table_prefix(seq)
        for i, j in [(0, 29), (0, 5), (10, 20), (5, 6), (7, 7)]:
            piece = seq.subsequence(i, j)
            if len(piece) < 2:
                assert prefix.sse(i, j) == 0.0
                continue
            line = fit_regression_line(piece)
            direct = float(np.sum(line.residuals(piece) ** 2))
            assert prefix.sse(i, j) == pytest.approx(direct, abs=1e-8)

    def test_sse_nonnegative(self):
        rng = np.random.default_rng(13)
        seq = Sequence.from_values(rng.normal(0, 1, 25))
        prefix = regression_sse_table_prefix(seq)
        for i in range(0, 25, 3):
            for j in range(i, 25, 3):
                assert prefix.sse(i, j) >= 0.0


class TestDPBreaker:
    def test_partition(self):
        rng = np.random.default_rng(14)
        seq = Sequence.from_values(rng.normal(0, 1, 40))
        bounds = DynamicProgrammingBreaker(segment_penalty=1.0).break_indices(seq)
        assert is_partition(bounds, 40)

    def test_single_point(self):
        seq = Sequence([0.0], [1.0])
        assert DynamicProgrammingBreaker().break_indices(seq) == [(0, 0)]

    def test_vee_splits_at_apex(self):
        values = np.concatenate([np.linspace(10, 0, 11), np.linspace(1, 10, 10)])
        seq = Sequence.from_values(values)
        bounds = DynamicProgrammingBreaker(segment_penalty=0.5, error_weight=10.0).break_indices(seq)
        assert len(bounds) == 2
        assert bounds[0][1] in (9, 10, 11)

    def test_optimality_against_exhaustive(self):
        # For a short sequence, compare the DP cost with brute force over
        # every possible partition.
        rng = np.random.default_rng(15)
        seq = Sequence.from_values(rng.normal(0, 2, 10))
        breaker = DynamicProgrammingBreaker(segment_penalty=2.0, error_weight=1.0)
        dp_bounds = breaker.break_indices(seq)
        dp_cost = breaker.total_cost(seq, dp_bounds)
        n = len(seq)
        best = float("inf")
        for mask in itertools.product([0, 1], repeat=n - 1):
            bounds = []
            start = 0
            for i, cut in enumerate(mask, start=1):
                if cut:
                    bounds.append((start, i - 1))
                    start = i
            bounds.append((start, n - 1))
            best = min(best, breaker.total_cost(seq, bounds))
        assert dp_cost == pytest.approx(best, abs=1e-9)

    def test_higher_penalty_fewer_segments(self):
        rng = np.random.default_rng(16)
        seq = Sequence.from_values(np.cumsum(rng.normal(0, 1, 60)))
        few = DynamicProgrammingBreaker(segment_penalty=50.0).break_indices(seq)
        many = DynamicProgrammingBreaker(segment_penalty=0.01).break_indices(seq)
        assert len(few) <= len(many)

    def test_zero_error_weight_single_segment(self):
        rng = np.random.default_rng(17)
        seq = Sequence.from_values(rng.normal(0, 1, 30))
        bounds = DynamicProgrammingBreaker(segment_penalty=1.0, error_weight=0.0).break_indices(seq)
        assert bounds == [(0, 29)]

    def test_bad_parameters_rejected(self):
        with pytest.raises(SegmentationError):
            DynamicProgrammingBreaker(segment_penalty=0.0)
        with pytest.raises(SegmentationError):
            DynamicProgrammingBreaker(error_weight=-1.0)
