"""Tests for the incremental-regression online breaker."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SegmentationError
from repro.core.sequence import Sequence
from repro.segmentation import IncrementalRegressionBreaker, SlidingWindowBreaker, is_partition


class TestIncrementalRegression:
    def test_straight_line_one_segment(self, ramp_sequence):
        bounds = IncrementalRegressionBreaker(0.1).break_indices(ramp_sequence)
        assert bounds == [(0, len(ramp_sequence) - 1)]

    def test_partition(self, noisy_sine):
        bounds = IncrementalRegressionBreaker(0.3).break_indices(noisy_sine)
        assert is_partition(bounds, len(noisy_sine))

    def test_breaks_on_jump(self):
        values = np.concatenate([np.zeros(20), np.full(20, 10.0)])
        bounds = IncrementalRegressionBreaker(1.0).break_indices(Sequence.from_values(values))
        assert len(bounds) >= 2
        assert bounds[0][1] == 19

    def test_catches_slow_drift_that_window_forgets(self):
        """Whole-segment regression accumulates drift; a short trailing
        window keeps re-fitting and tracks it forever."""
        t = np.arange(200, dtype=float)
        drift = 0.002 * t * t  # slowly accelerating curve
        seq = Sequence(t, drift)
        incremental = IncrementalRegressionBreaker(1.0).break_indices(seq)
        windowed = SlidingWindowBreaker(1.0, window=6, degree=1).break_indices(seq)
        assert len(incremental) > len(windowed)

    def test_min_points_validation(self):
        with pytest.raises(SegmentationError):
            IncrementalRegressionBreaker(1.0, min_points=1)

    def test_single_point(self):
        seq = Sequence([0.0], [1.0])
        assert IncrementalRegressionBreaker(0.5).break_indices(seq) == [(0, 0)]

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=2, max_size=60
        ),
        st.floats(min_value=0.01, max_value=10.0),
    )
    def test_partition_property(self, values, epsilon):
        seq = Sequence.from_values(values)
        bounds = IncrementalRegressionBreaker(epsilon).break_indices(seq)
        assert is_partition(bounds, len(seq))

    def test_database_integration(self):
        from repro.query import PeakCountQuery, SequenceDatabase
        from repro.workloads import goalpost_fever

        db = SequenceDatabase(breaker=IncrementalRegressionBreaker(0.5))
        db.insert(goalpost_fever(noise=0.0))
        assert len(db.query(PeakCountQuery(2, count_tolerance=1))) == 1
