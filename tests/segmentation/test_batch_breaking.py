"""Frontier-batched breaking vs the scalar recursion: byte parity.

The batched kernel (:func:`repro.segmentation.break_frontier`) must
produce *exactly* the boundaries the scalar Figure-8 recursion produces
— same windows, same split-side decisions, bit for bit — across every
workload family and every ``split_side`` mode, because the database's
bulk ingest path feeds everything (representations, symbol strings,
peaks, the columnar store) from its output.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sequence import Sequence
from repro.functions.linear import LinearFunction
from repro.segmentation import InterpolationBreaker, RecursiveCurveFitBreaker, is_partition
from repro.workloads import ecg_corpus, fever_corpus, seismic_corpus, stock_corpus


def _workloads() -> "dict[str, list[Sequence]]":
    rng = np.random.default_rng(42)
    return {
        "ecg": ecg_corpus(n_sequences=5, n_points=400),
        "fever": fever_corpus(n_two_peak=6, n_one_peak=5, n_three_peak=5),
        "seismic": [sequence for sequence, __ in seismic_corpus(3, n_points=600)],
        "stocks": stock_corpus(5, n_points=200),
        "random": [
            Sequence.from_values(rng.normal(size=int(rng.integers(1, 150))))
            for __ in range(25)
        ],
    }


WORKLOADS = _workloads()


class TestBoundaryParity:
    @pytest.mark.parametrize("split_side", ["closer", "left", "right"])
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_batch_equals_scalar(self, workload, split_side):
        corpus = WORKLOADS[workload]
        for epsilon in (0.05, 0.5, 5.0):
            breaker = RecursiveCurveFitBreaker(
                epsilon, curve_kind="interpolation", split_side=split_side
            )
            scalar = [breaker.break_indices(sequence) for sequence in corpus]
            batch = breaker.break_indices_many(corpus)
            assert batch == scalar
            for sequence, bounds in zip(corpus, batch):
                assert is_partition(bounds, len(sequence))

    def test_mixed_lengths_and_degenerate_sequences(self):
        corpus = [
            Sequence.from_values([3.0]),
            Sequence.from_values([3.0, 4.0]),
            Sequence.from_values([0.0, 9.0, 0.0]),
            Sequence.from_values(np.zeros(40)),
            WORKLOADS["fever"][0],
        ]
        breaker = InterpolationBreaker(0.25)
        assert breaker.break_indices_many(corpus) == [
            breaker.break_indices(sequence) for sequence in corpus
        ]

    def test_empty_batch(self):
        assert InterpolationBreaker(0.5).break_indices_many([]) == []

    def test_zero_epsilon_parity(self):
        corpus = WORKLOADS["random"][:8]
        breaker = InterpolationBreaker(0.0)
        assert breaker.break_indices_many(corpus) == [
            breaker.break_indices(sequence) for sequence in corpus
        ]

    def test_non_chord_kinds_fall_back_to_scalar(self):
        # Regression has no chord kernel: break_indices_many must loop
        # the scalar path and still agree with it.
        corpus = WORKLOADS["fever"][:4]
        breaker = RecursiveCurveFitBreaker(0.5, curve_kind="regression")
        assert breaker.break_indices_many(corpus) == [
            breaker.break_indices(sequence) for sequence in corpus
        ]


class TestRepresentationParity:
    @pytest.mark.parametrize("curve_kind", ["regression", "interpolation"])
    def test_represent_many_bit_identical(self, curve_kind):
        corpus = WORKLOADS["fever"] + WORKLOADS["random"][:10]
        breaker = InterpolationBreaker(0.5)
        scalar = [breaker.represent(sequence, curve_kind=curve_kind) for sequence in corpus]
        batch = breaker.represent_many(corpus, curve_kind=curve_kind)
        for a, b in zip(scalar, batch):
            assert a.name == b.name
            assert a.source_length == b.source_length
            assert a.curve_kind == b.curve_kind
            assert a.segments == b.segments
            for sa, sb in zip(a.segments, b.segments):
                assert sa.function.parameters() == sb.function.parameters()
                assert sa.start_point == sb.start_point
                assert sa.end_point == sb.end_point

    def test_prefilled_columns_match_lazy_columns(self):
        corpus = WORKLOADS["ecg"][:3] + WORKLOADS["random"][:6]
        breaker = InterpolationBreaker(0.5)
        batch = breaker.represent_many(corpus, curve_kind="regression")
        scalar = [breaker.represent(sequence, curve_kind="regression") for sequence in corpus]
        for a, b in zip(scalar, batch):
            assert b._columns is not None  # prefilled by the batch path
            lazy = a.segment_columns()
            prefilled = b.segment_columns()
            assert sorted(lazy) == sorted(prefilled)
            for name in lazy:
                assert lazy[name].dtype == prefilled[name].dtype
                assert np.array_equal(lazy[name], prefilled[name]), name

    def test_nonlinear_kind_keeps_lazy_columns(self):
        # poly:2 segments are not plain lines: the batch path must skip
        # the vectorized column prefill, and the lazily built columns
        # must still agree with the scalar path's.
        corpus = WORKLOADS["fever"][:3]
        breaker = InterpolationBreaker(0.5)
        batch = breaker.represent_many(corpus, curve_kind="poly:2")
        assert all(b._columns is None for b in batch)
        scalar = [breaker.represent(sequence, curve_kind="poly:2") for sequence in corpus]
        for a, b in zip(scalar, batch):
            for name, column in a.segment_columns().items():
                assert np.array_equal(column, b.segment_columns()[name]), name

    def test_single_point_windows_use_constant_line(self):
        # A spike at index 1 under zero tolerance isolates single-point
        # windows; they must come out as constant regression lines.
        values = np.zeros(12)
        values[1] = 50.0
        sequence = Sequence.from_values(values)
        breaker = InterpolationBreaker(0.0)
        (batch,) = breaker.represent_many([sequence], curve_kind="regression")
        scalar = breaker.represent(sequence, curve_kind="regression")
        assert batch.segments == scalar.segments
        singletons = [s for s in batch.segments if s.start_index == s.end_index]
        assert singletons
        assert all(
            type(s.function) is LinearFunction and s.function.slope == 0.0
            for s in singletons
        )


class TestBatchAssemblyContract:
    def test_invalid_windows_rejected_like_scalar_path(self):
        from repro.core.errors import SequenceError
        from repro.core.representation import FunctionSeriesRepresentation

        sequence = Sequence.from_values(np.arange(10.0))
        for bad in ([(4, 2)], [(-3, 2)], [(0, 99)]):
            with pytest.raises(SequenceError):
                FunctionSeriesRepresentation.from_breakpoints_many(
                    [sequence], [bad], curve_kind="interpolation"
                )

    def test_represent_override_applies_to_represent_many(self):
        # A subclass customizing represent() per sequence must see its
        # override on the bulk path too (it is looped, not batched).
        class TaggedBreaker(InterpolationBreaker):
            def represent(self, sequence, curve_kind=None):
                representation = super().represent(sequence, curve_kind=curve_kind)
                representation.name = representation.name + "|tagged"
                return representation

        sequence = Sequence.from_values(np.arange(12.0), name="x")
        (representation,) = TaggedBreaker(0.5).represent_many(
            [sequence], curve_kind="regression"
        )
        assert representation.name == "x|tagged"


class TestTrialFitMemo:
    """The ``closer`` decision's trial fits are reused, not recomputed."""

    def _count_fits(self, breaker: RecursiveCurveFitBreaker, sequence: Sequence) -> int:
        calls = 0
        inner = breaker._fitter

        def counting(piece):
            nonlocal calls
            calls += 1
            return inner(piece)

        breaker._fitter = counting
        try:
            breaker.break_indices(sequence)
        finally:
            breaker._fitter = inner
        return calls

    def test_fitter_invocations_drop(self):
        sequence = fever_corpus(n_two_peak=1, n_one_peak=0, n_three_peak=0, noise=0.4)[0]
        memoized = RecursiveCurveFitBreaker(0.1, curve_kind="interpolation")
        plain = RecursiveCurveFitBreaker(0.1, curve_kind="interpolation")
        plain.reuse_trial_fits = False
        assert memoized.break_indices(sequence) == plain.break_indices(sequence)
        with_memo = self._count_fits(memoized, sequence)
        without_memo = self._count_fits(plain, sequence)
        assert with_memo < without_memo

    def test_memo_changes_no_boundaries(self):
        for sequence in WORKLOADS["random"][:10] + WORKLOADS["fever"][:4]:
            memoized = RecursiveCurveFitBreaker(0.2, curve_kind="interpolation")
            plain = RecursiveCurveFitBreaker(0.2, curve_kind="interpolation")
            plain.reuse_trial_fits = False
            assert memoized.break_indices(sequence) == plain.break_indices(sequence)

    def test_memo_applies_to_non_chord_kinds_too(self):
        sequence = WORKLOADS["fever"][0]
        memoized = RecursiveCurveFitBreaker(0.2, curve_kind="regression")
        plain = RecursiveCurveFitBreaker(0.2, curve_kind="regression")
        plain.reuse_trial_fits = False
        assert memoized.break_indices(sequence) == plain.break_indices(sequence)
        assert self._count_fits(memoized, sequence) < self._count_fits(plain, sequence)
