"""Property-based tests (hypothesis) for the breaking algorithms.

These encode the paper's Section 4.3 requirements as universally
quantified properties over random sequences.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sequence import Sequence
from repro.segmentation import (
    DynamicProgrammingBreaker,
    InterpolationBreaker,
    RegressionBreaker,
    SlidingWindowBreaker,
    is_partition,
    verify_tolerance,
)


def value_lists(min_size=2, max_size=60):
    return st.lists(
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False),
        min_size=min_size,
        max_size=max_size,
    )


epsilons = st.floats(min_value=0.01, max_value=10.0, allow_nan=False)


@settings(max_examples=60, deadline=None)
@given(values=value_lists(), epsilon=epsilons)
def test_interpolation_breaker_partitions(values, epsilon):
    seq = Sequence.from_values(values)
    bounds = InterpolationBreaker(epsilon).break_indices(seq)
    assert is_partition(bounds, len(seq))


@settings(max_examples=60, deadline=None)
@given(values=value_lists(), epsilon=epsilons)
def test_interpolation_breaker_respects_epsilon(values, epsilon):
    seq = Sequence.from_values(values)
    bounds = InterpolationBreaker(epsilon).break_indices(seq)
    # Windows of length > 2 must fit within epsilon; length-2 windows fit
    # exactly by construction.
    assert verify_tolerance(seq, bounds, "interpolation", epsilon)


@settings(max_examples=40, deadline=None)
@given(values=value_lists(), epsilon=epsilons)
def test_regression_breaker_partitions(values, epsilon):
    seq = Sequence.from_values(values)
    bounds = RegressionBreaker(epsilon).break_indices(seq)
    assert is_partition(bounds, len(seq))


@settings(max_examples=30, deadline=None)
@given(values=value_lists(max_size=30))
def test_dp_breaker_partitions(values):
    seq = Sequence.from_values(values)
    bounds = DynamicProgrammingBreaker(segment_penalty=1.0).break_indices(seq)
    assert is_partition(bounds, len(seq))


@settings(max_examples=40, deadline=None)
@given(values=value_lists(min_size=3), epsilon=epsilons)
def test_online_breaker_partitions(values, epsilon):
    seq = Sequence.from_values(values)
    bounds = SlidingWindowBreaker(epsilon, window=5, degree=1).break_indices(seq)
    assert is_partition(bounds, len(seq))


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    epsilon=epsilons,
    shift=st.floats(min_value=-50, max_value=50, allow_nan=False),
)
def test_amplitude_shift_consistency(seed, epsilon, shift):
    """Amplitude translation never moves breakpoints on generic data.

    Generic = RNG-generated, for the same reason as the time-shift
    property: hand-built inputs can place a deviation *exactly* at
    epsilon or two samples at *exactly* equal deviation, where one ulp
    of shifted arithmetic legally flips the split decision — a
    measure-zero coincidence for sampled data.
    """
    rng = np.random.default_rng(seed)
    values = np.cumsum(rng.normal(0.0, 1.0, 40))
    seq = Sequence.from_values(values)
    shifted = Sequence.from_values(values + shift)
    breaker = InterpolationBreaker(epsilon)
    assert breaker.break_indices(seq) == breaker.break_indices(shifted)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), epsilon=epsilons)
def test_time_shift_consistency(seed, epsilon):
    """Time translation never moves breakpoints on generic data.

    Generic means RNG-generated: hand-constructed inputs can place two
    samples at *exactly* equal deviation, or a deviation *exactly* at
    epsilon, where one ulp of chord arithmetic legally flips a tie.
    Those coincidences are measure-zero for sampled data, which is what
    the paper's consistency property concerns.
    """
    rng = np.random.default_rng(seed)
    values = np.cumsum(rng.normal(0.0, 1.0, 40))
    seq = Sequence.from_values(values)
    shifted = Sequence.from_values(values, start=37.5)
    breaker = InterpolationBreaker(epsilon)
    assert breaker.break_indices(seq) == breaker.break_indices(shifted)


@settings(max_examples=40, deadline=None)
@given(values=value_lists(), epsilon=epsilons, factor=st.sampled_from([0.25, 0.5, 2.0, 4.0, 8.0]))
def test_amplitude_scale_consistency_with_scaled_epsilon(values, epsilon, factor):
    """Scaling amplitudes by k and epsilon by k preserves breakpoints.

    Factors are powers of two so the scaling is exact in floating point;
    arbitrary factors can flip argmax tie-breaks between two samples at
    mathematically equal deviation, which is not a consistency failure.
    """
    seq = Sequence.from_values(values)
    scaled = Sequence.from_values([v * factor for v in values])
    base = InterpolationBreaker(epsilon).break_indices(seq)
    rescaled = InterpolationBreaker(epsilon * factor).break_indices(scaled)
    assert base == rescaled


@settings(max_examples=30, deadline=None)
@given(values=value_lists(min_size=4, max_size=40))
def test_reconstruction_error_bounded_by_epsilon(values):
    """End-to-end: representation stays within the breaker's epsilon."""
    epsilon = 1.0
    seq = Sequence.from_values(values)
    rep = InterpolationBreaker(epsilon).represent(seq, curve_kind="interpolation")
    # Interpolation endpoints are exact, interior within epsilon.
    assert rep.reconstruction_error(seq) <= epsilon + 1e-9


@settings(max_examples=30, deadline=None)
@given(values=value_lists(min_size=4, max_size=40), epsilon=epsilons)
def test_segments_cover_every_index_once(values, epsilon):
    seq = Sequence.from_values(values)
    bounds = InterpolationBreaker(epsilon).break_indices(seq)
    covered = []
    for start, end in bounds:
        covered.extend(range(start, end + 1))
    assert covered == list(range(len(seq)))
