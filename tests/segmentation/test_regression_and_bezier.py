"""Tests for the regression and Bézier breaker variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sequence import Sequence
from repro.segmentation import BezierBreaker, RegressionBreaker, is_partition


@pytest.fixture
def two_regime():
    values = np.concatenate([np.linspace(0, 10, 15), np.linspace(10, -10, 15)])
    return Sequence.from_values(values)


class TestRegressionBreaker:
    def test_partition(self, two_regime):
        bounds = RegressionBreaker(0.5).break_indices(two_regime)
        assert is_partition(bounds, len(two_regime))

    def test_line_kept_whole(self, ramp_sequence):
        bounds = RegressionBreaker(0.1).break_indices(ramp_sequence)
        assert bounds == [(0, len(ramp_sequence) - 1)]

    def test_splits_vee(self, two_regime):
        bounds = RegressionBreaker(0.5).break_indices(two_regime)
        assert len(bounds) >= 2

    def test_curve_kind(self):
        assert RegressionBreaker(1.0).curve_kind == "regression"


class TestBezierBreaker:
    def test_partition(self, two_regime):
        bounds = BezierBreaker(0.5).break_indices(two_regime)
        assert is_partition(bounds, len(two_regime))

    def test_smooth_arc_few_segments(self):
        t = np.linspace(0, np.pi, 60)
        seq = Sequence(t, 10.0 * np.sin(t))
        bezier_bounds = BezierBreaker(0.5).break_indices(seq)
        from repro.segmentation import InterpolationBreaker

        linear_bounds = InterpolationBreaker(0.5).break_indices(seq)
        # A cubic follows the arc with far fewer pieces than chords do.
        assert len(bezier_bounds) < len(linear_bounds)

    def test_represent_with_bezier_functions(self, two_regime):
        rep = BezierBreaker(0.5).represent(two_regime)
        assert all(seg.function.family in ("bezier", "linear") for seg in rep)

    def test_curve_kind(self):
        assert BezierBreaker(1.0).curve_kind == "bezier"
