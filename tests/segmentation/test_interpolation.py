"""Tests for the interpolation breaker — the paper's main algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import raw_peak_indices
from repro.core.sequence import Sequence
from repro.core.transformations import AmplitudeScale, AmplitudeShift, TimeScale, TimeShift
from repro.segmentation import (
    InterpolationBreaker,
    breakpoints_correspond,
    fragmentation_ratio,
    is_partition,
    verify_tolerance,
)
from repro.workloads import goalpost_fever


class TestBasicBehaviour:
    def test_straight_line_is_one_segment(self, ramp_sequence):
        bounds = InterpolationBreaker(0.1).break_indices(ramp_sequence)
        assert bounds == [(0, len(ramp_sequence) - 1)]

    def test_partition_property(self, two_peak_sequence):
        bounds = InterpolationBreaker(0.5).break_indices(two_peak_sequence)
        assert is_partition(bounds, len(two_peak_sequence))

    def test_tolerance_honored(self, two_peak_sequence):
        epsilon = 0.5
        bounds = InterpolationBreaker(epsilon).break_indices(two_peak_sequence)
        assert verify_tolerance(two_peak_sequence, bounds, "interpolation", epsilon)

    def test_breaks_at_apex_of_triangle(self, triangle_sequence):
        bounds = InterpolationBreaker(0.2).break_indices(triangle_sequence)
        # The apex (index 10) must be a segment boundary on one side.
        boundary_indices = {b[0] for b in bounds} | {b[1] for b in bounds}
        assert 10 in boundary_indices or 9 in boundary_indices or 11 in boundary_indices

    def test_two_point_sequence(self):
        seq = Sequence.from_values([1.0, 5.0])
        assert InterpolationBreaker(0.1).break_indices(seq) == [(0, 1)]

    def test_single_point_sequence(self):
        seq = Sequence([0.0], [1.0])
        assert InterpolationBreaker(0.1).break_indices(seq) == [(0, 0)]

    def test_negative_epsilon_rejected(self):
        from repro.core.errors import SegmentationError

        with pytest.raises(SegmentationError):
            InterpolationBreaker(-1.0)

    def test_smaller_epsilon_more_segments(self, two_peak_sequence):
        coarse = InterpolationBreaker(2.0).break_indices(two_peak_sequence)
        fine = InterpolationBreaker(0.1).break_indices(two_peak_sequence)
        assert len(fine) >= len(coarse)

    def test_minor_extrema_ignored(self):
        # A big triangle with tiny wiggles: epsilon above the wiggle size
        # must not split on the wiggles.
        t = np.arange(41, dtype=float)
        big = np.where(t <= 20, t, 40.0 - t)
        wiggle = 0.1 * np.sin(3.0 * t)
        bounds = InterpolationBreaker(0.5).break_indices(Sequence(t, big + wiggle))
        assert len(bounds) <= 3


class TestFragmentation:
    def test_fever_fragmentation_low(self, two_peak_sequence):
        bounds = InterpolationBreaker(0.5).break_indices(two_peak_sequence)
        assert fragmentation_ratio(bounds) <= 0.34

    def test_ecg_fragmentation_low(self, ecg_pair):
        top, __ = ecg_pair
        bounds = InterpolationBreaker(10.0).break_indices(top)
        assert fragmentation_ratio(bounds) <= 0.5  # R spikes are genuinely abrupt


class TestConsistency:
    """Paper Section 4.3: feature-preserving transforms break at
    corresponding breakpoints."""

    def test_time_shift_preserves_breaks(self):
        seq = goalpost_fever(noise=0.0)
        breaker = InterpolationBreaker(0.5)
        base = breaker.break_indices(seq)
        shifted = breaker.break_indices(TimeShift(5.0)(seq))
        assert base == shifted  # index space is untouched by time shift

    def test_amplitude_shift_preserves_breaks(self):
        seq = goalpost_fever(noise=0.0)
        breaker = InterpolationBreaker(0.5)
        base = breaker.break_indices(seq)
        assert breaker.break_indices(AmplitudeShift(10.0)(seq)) == base

    def test_dilation_preserves_breaks(self):
        # Pure time scaling does not change values at sample points, so
        # indices are identical.
        seq = goalpost_fever(noise=0.0)
        breaker = InterpolationBreaker(0.5)
        base = breaker.break_indices(seq)
        assert breaker.break_indices(TimeScale(2.0)(seq)) == base

    def test_amplitude_scale_breaks_correspond(self):
        # Scaling amplitudes rescales deviations; scaling epsilon by the
        # same factor yields corresponding breakpoints.
        seq = goalpost_fever(noise=0.0)
        base = InterpolationBreaker(0.5).break_indices(seq)
        scaled_seq = AmplitudeScale(2.0, baseline=98.0)(seq)
        scaled = InterpolationBreaker(1.0).break_indices(scaled_seq)
        assert base == scaled

    def test_peaks_survive_all_transforms(self):
        seq = goalpost_fever(noise=0.0)
        breaker = InterpolationBreaker(0.5)
        for transform in (
            TimeShift(4.0),
            AmplitudeShift(-3.0),
            AmplitudeScale(1.5, baseline=98.0),
            TimeScale(2.0),
            TimeScale(0.5),
        ):
            rep = breaker.represent(transform(seq), curve_kind="regression")
            from repro.core.features import count_peaks

            assert count_peaks(rep, theta=0.01) == 2, transform


class TestRobustness:
    """Paper Section 4.3: inserting a behaviour-preserving sample moves
    breakpoints by at most the insertion count."""

    def test_on_curve_insertion(self):
        seq = goalpost_fever(noise=0.0)
        breaker = InterpolationBreaker(0.5)
        base = [b for b, __ in breaker.break_indices(seq)][1:]
        # Insert a point exactly on the polyline between two samples.
        t_new = (seq.times[20] + seq.times[21]) / 2.0
        v_new = seq.interpolate_at(t_new)
        augmented = seq.insert(t_new, v_new)
        new_breaks = [b for b, __ in breaker.break_indices(augmented)][1:]
        assert breakpoints_correspond(base, new_breaks, index_budget=1)

    def test_breakpoints_correspond_helper(self):
        assert breakpoints_correspond([5, 10], [6, 11], 1)
        assert not breakpoints_correspond([5, 10], [8, 11], 1)
        assert not breakpoints_correspond([5], [5, 9], 1)


class TestSplitSideAblation:
    def test_all_sides_give_valid_partitions(self, two_peak_sequence):
        for side in ("closer", "left", "right"):
            bounds = InterpolationBreaker(0.5, split_side=side).break_indices(two_peak_sequence)
            assert is_partition(bounds, len(two_peak_sequence))

    def test_unknown_side_rejected(self):
        from repro.core.errors import SegmentationError

        with pytest.raises(SegmentationError):
            InterpolationBreaker(0.5, split_side="middle")


class TestECGShape:
    def test_r_peaks_become_boundaries(self, ecg_pair):
        top, __ = ecg_pair
        bounds = InterpolationBreaker(10.0).break_indices(top)
        boundary_samples = set()
        for start, end in bounds:
            boundary_samples.add(start)
            boundary_samples.add(end)
        truth = raw_peak_indices(top, prominence=100.0)
        assert len(truth) == 3
        for r in truth:
            assert any(abs(r - b) <= 2 for b in boundary_samples), f"R peak at {r} missed"

    def test_segment_count_in_paper_ballpark(self, ecg_pair):
        # Paper: 500 points -> "about 20 function segments" at eps=10.
        top, bottom = ecg_pair
        for ecg in (top, bottom):
            bounds = InterpolationBreaker(10.0).break_indices(ecg)
            assert 8 <= len(bounds) <= 45
