"""Tests for the binary codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import StorageError
from repro.core.representation import FunctionSeriesRepresentation
from repro.core.sequence import Sequence
from repro.segmentation import BezierBreaker, InterpolationBreaker
from repro.storage.serialization import (
    decode_representation,
    decode_sequence,
    encode_representation,
    encode_sequence,
    raw_size_bytes,
    representation_size_bytes,
)
from repro.workloads import goalpost_fever


class TestSequenceCodec:
    def test_uniform_roundtrip(self):
        seq = Sequence.from_values([1.0, 2.5, -3.0], name="abc")
        decoded = decode_sequence(encode_sequence(seq))
        assert decoded == seq
        assert decoded.name == "abc"

    def test_non_uniform_roundtrip(self):
        seq = Sequence([0.0, 1.0, 4.0], [9.0, 8.0, 7.0], name="nu")
        decoded = decode_sequence(encode_sequence(seq))
        assert decoded == seq

    def test_uniform_encoding_smaller(self):
        values = np.arange(200, dtype=float)
        uniform = Sequence.from_values(values)
        times = np.sort(np.concatenate([[0.0], np.cumsum(np.random.default_rng(1).uniform(0.5, 1.5, 199))]))
        jittered = Sequence(times, values)
        assert raw_size_bytes(uniform) < raw_size_bytes(jittered)

    def test_unicode_name(self):
        seq = Sequence.from_values([1.0], name="séq-ü")
        assert decode_sequence(encode_sequence(seq)).name == "séq-ü"

    def test_bad_magic_rejected(self):
        with pytest.raises(StorageError):
            decode_sequence(b"XXXX" + b"\x00" * 40)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=40))
    def test_roundtrip_property(self, values):
        seq = Sequence.from_values(values)
        assert decode_sequence(encode_sequence(seq)) == seq


class TestRepresentationCodec:
    def rep_for(self, curve_kind):
        seq = goalpost_fever(noise=0.0)
        breaker = BezierBreaker(1.0) if curve_kind == "bezier" else InterpolationBreaker(0.5)
        return seq, breaker.represent(seq, curve_kind=curve_kind)

    @pytest.mark.parametrize("kind", ["regression", "interpolation", "poly:3", "sinusoid", "bezier"])
    def test_roundtrip_all_families(self, kind):
        if kind == "sinusoid":
            # Sinusoid fits need >= 4 points per segment; use one segment.
            seq = goalpost_fever(noise=0.0)
            rep = FunctionSeriesRepresentation.from_breakpoints(seq, [(0, len(seq) - 1)], curve_kind=kind)
        else:
            seq, rep = self.rep_for(kind)
        decoded = decode_representation(encode_representation(rep))
        assert len(decoded) == len(rep)
        assert decoded.curve_kind == rep.curve_kind
        assert decoded.source_length == rep.source_length
        for a, b in zip(rep, decoded):
            assert a.function.parameters() == pytest.approx(b.function.parameters())
            assert a.start_index == b.start_index
            assert a.end_index == b.end_index
            assert a.start_point == b.start_point
            assert a.end_point == b.end_point

    def test_decoded_answers_queries_identically(self):
        seq, rep = self.rep_for("regression")
        decoded = decode_representation(encode_representation(rep))
        assert decoded.symbol_string(0.05) == rep.symbol_string(0.05)
        assert decoded.interpolate_at(12.0) == pytest.approx(rep.interpolate_at(12.0))

    def test_size_accounting(self):
        seq, rep = self.rep_for("regression")
        assert representation_size_bytes(rep) == len(encode_representation(rep))

    def test_bad_magic_rejected(self):
        with pytest.raises(StorageError):
            decode_representation(b"ZZZZ" + b"\x00" * 40)

    def test_compression_on_long_smooth_sequence(self):
        t = np.arange(500, dtype=float)
        values = np.where(t < 250, t * 0.1, 50.0 - (t - 250) * 0.1)
        seq = Sequence(t, values, name="long-vee")
        rep = InterpolationBreaker(0.5).represent(seq, curve_kind="regression")
        assert representation_size_bytes(rep) < raw_size_bytes(seq) / 8
