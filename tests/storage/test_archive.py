"""Tests for the archival and local stores."""

from __future__ import annotations

import pytest

from repro.core.errors import StorageError
from repro.segmentation import InterpolationBreaker
from repro.storage.archive import ArchivalStore, LocalStore
from repro.workloads import goalpost_fever


@pytest.fixture
def sequence():
    return goalpost_fever()


@pytest.fixture
def representation(sequence):
    return InterpolationBreaker(0.5).represent(sequence, curve_kind="regression")


class TestArchivalStore:
    def test_store_and_retrieve(self, sequence):
        store = ArchivalStore()
        size = store.store(0, sequence)
        assert size > 0
        assert 0 in store
        assert store.retrieve(0) == sequence

    def test_latency_accounted_not_slept(self, sequence):
        store = ArchivalStore(seek_seconds=120.0, bandwidth_bytes_per_s=1e6)
        store.store(0, sequence)
        store.retrieve(0)
        # Two operations, each at least the seek latency.
        assert store.log.simulated_seconds >= 240.0
        assert store.log.reads == 1
        assert store.log.writes == 1
        assert store.log.bytes_read == store.log.bytes_written > 0

    def test_archive_much_slower_than_local(self, sequence, representation):
        archive = ArchivalStore()
        local = LocalStore()
        archive.store(0, sequence)
        local.store(0, representation)
        archive.retrieve(0)
        local.retrieve(0)
        assert archive.log.simulated_seconds > 100 * local.log.simulated_seconds

    def test_duplicate_rejected(self, sequence):
        store = ArchivalStore()
        store.store(0, sequence)
        with pytest.raises(StorageError):
            store.store(0, sequence)

    def test_missing_rejected(self):
        with pytest.raises(StorageError):
            ArchivalStore().retrieve(5)

    def test_invalid_model_rejected(self):
        with pytest.raises(StorageError):
            ArchivalStore(seek_seconds=-1.0)
        with pytest.raises(StorageError):
            ArchivalStore(bandwidth_bytes_per_s=0.0)

    def test_total_bytes(self, sequence):
        store = ArchivalStore()
        size = store.store(0, sequence)
        assert store.total_bytes() == size
        assert len(store) == 1


class TestLocalStore:
    def test_store_and_retrieve(self, representation):
        store = LocalStore()
        store.store(3, representation)
        restored = store.retrieve(3)
        assert len(restored) == len(representation)

    def test_tagged_variants(self, representation, sequence):
        store = LocalStore()
        store.store(0, representation, tag="regression")
        other = representation.refit(sequence, "interpolation")
        store.store(0, other, tag="interpolation")
        assert store.retrieve(0, "interpolation").curve_kind == "interpolation"
        assert (0, "regression") in store
        assert 0 in store
        assert len(store) == 2

    def test_duplicate_tag_rejected(self, representation):
        store = LocalStore()
        store.store(0, representation)
        with pytest.raises(StorageError):
            store.store(0, representation)

    def test_missing_rejected(self):
        with pytest.raises(StorageError):
            LocalStore().retrieve(0)
