"""Failure injection for the binary codec and the stores.

A production library must fail loudly and precisely on corrupt bytes —
silent misdecoding of a representation would corrupt every downstream
query answer.
"""

from __future__ import annotations

import struct

import pytest

from repro.core.errors import StorageError
from repro.segmentation import InterpolationBreaker
from repro.storage.serialization import (
    decode_representation,
    decode_sequence,
    encode_representation,
    encode_sequence,
)
from repro.workloads import goalpost_fever


@pytest.fixture
def sequence_blob():
    return encode_sequence(goalpost_fever(noise=0.0))


@pytest.fixture
def representation_blob():
    rep = InterpolationBreaker(0.5).represent(goalpost_fever(noise=0.0), curve_kind="regression")
    return encode_representation(rep)


class TestSequenceCorruption:
    def test_truncated_header(self, sequence_blob):
        with pytest.raises((StorageError, struct.error, ValueError)):
            decode_sequence(sequence_blob[:3])

    def test_truncated_body(self, sequence_blob):
        with pytest.raises((StorageError, struct.error, ValueError)):
            decode_sequence(sequence_blob[: len(sequence_blob) // 2])

    def test_wrong_magic(self, sequence_blob):
        corrupted = b"ZZZZ" + sequence_blob[4:]
        with pytest.raises(StorageError):
            decode_sequence(corrupted)

    def test_representation_blob_rejected_as_sequence(self, representation_blob):
        with pytest.raises(StorageError):
            decode_sequence(representation_blob)

    def test_empty_blob(self):
        with pytest.raises((StorageError, struct.error, ValueError)):
            decode_sequence(b"")


class TestRepresentationCorruption:
    def test_truncated_segment_block(self, representation_blob):
        with pytest.raises((StorageError, struct.error, ValueError)):
            decode_representation(representation_blob[: len(representation_blob) - 10])

    def test_wrong_magic(self, representation_blob):
        with pytest.raises(StorageError):
            decode_representation(b"QQQQ" + representation_blob[4:])

    def test_sequence_blob_rejected_as_representation(self, sequence_blob):
        with pytest.raises(StorageError):
            decode_representation(sequence_blob)

    def test_unknown_family_tag(self, representation_blob):
        # Locate the first segment record and stomp its family tag.
        # Header: magic(4) + name_len(2)+name + kind_len(2)+kind +
        # source_length+epsilon(12) + n_segments(4).
        view = bytearray(representation_blob)
        offset = 4
        (name_len,) = struct.unpack_from("<H", view, offset)
        offset += 2 + name_len
        (kind_len,) = struct.unpack_from("<H", view, offset)
        offset += 2 + kind_len
        offset += 12 + 4
        view[offset] = 250  # no such family tag
        with pytest.raises(StorageError):
            decode_representation(bytes(view))

    def test_roundtrip_still_clean_after_copy(self, representation_blob):
        # Control: an uncorrupted copy decodes fine.
        rep = decode_representation(bytes(bytearray(representation_blob)))
        assert len(rep) > 0
