"""Result-cache snapshots: warm after restart, invalid after mutation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import StorageError
from repro.query import (
    IntervalQuery,
    PatternQuery,
    PeakCountQuery,
    SequenceDatabase,
    ShapeQuery,
    SteepnessQuery,
)
from repro.segmentation import InterpolationBreaker
from repro.storage.catalog import engine_state_digest, load_result_cache, save_result_cache
from repro.storage.serialization import decode_cache_snapshot, encode_cache_snapshot
from repro.workloads import fever_corpus, goalpost_fever, k_peak_sequence

GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"


def _db(n_shards=None):
    db = SequenceDatabase(breaker=InterpolationBreaker(0.5), n_shards=n_shards)
    db.insert_all(fever_corpus(n_two_peak=4, n_one_peak=3, n_three_peak=3))
    return db


def _queries():
    return [
        PatternQuery(GOALPOST),
        PeakCountQuery(2, count_tolerance=1),
        IntervalQuery(12.0, 2.0),
        SteepnessQuery(3.0, slope_tolerance=1.5),
        ShapeQuery(goalpost_fever(), duration_tolerance=0.5, amplitude_tolerance=0.5),
    ]


class TestRoundTrip:
    @pytest.mark.parametrize("n_shards", [None, 2, 7])
    def test_restart_is_warm(self, tmp_path, n_shards):
        db = _db(n_shards)
        expected = {}
        for query in _queries():
            expected[query.fingerprint()] = db.query(query)
        path = tmp_path / "cache.snap"
        assert save_result_cache(db, path) == len(expected)

        # "Restart": a fresh process rebuilds the same database, then
        # adopts the snapshot.
        restarted = _db(n_shards)
        assert load_result_cache(restarted, path) == len(expected)
        for query in _queries():
            assert "cache-hit" in restarted.explain(query)
            assert restarted.query(query) == expected[query.fingerprint()]
        # Every answer above came from the adopted entries.
        assert restarted.result_cache.hits == len(expected)
        assert restarted.result_cache.misses == 0

    def test_adopted_entries_delta_revalidate_after_restart(self, tmp_path):
        db = _db()
        query = PeakCountQuery(2, count_tolerance=1)
        db.query(query)
        path = tmp_path / "cache.snap"
        save_result_cache(db, path)
        restarted = _db()
        load_result_cache(restarted, path)
        new_id = restarted.insert(
            k_peak_sequence([6.0, 18.0], noise=0.0, name="post-restart")
        )
        answer = restarted.query(query)
        assert new_id in {m.sequence_id for m in answer}
        assert answer == restarted.query(query, cache=False)
        assert restarted.result_cache.delta_hits == 1

    def test_db_convenience_methods(self, tmp_path):
        db = _db()
        db.query(PeakCountQuery(2))
        path = tmp_path / "cache.snap"
        assert db.save_result_cache(path) == 1
        restarted = _db()
        assert restarted.load_result_cache(path) == 1

    def test_adopted_count_reflects_resident_entries(self, tmp_path):
        # Loading into a cache too small for the snapshot must report
        # only the entries that actually stuck, not everything offered.
        from repro.engine import PlanResultCache

        db = _db()
        for query in _queries():
            db.query(query)
        path = tmp_path / "cache.snap"
        written = save_result_cache(db, path)
        assert written == len(_queries())
        restarted = _db()
        restarted.result_cache = PlanResultCache(max_entries=2)
        adopted = load_result_cache(restarted, path)
        assert adopted == 2 == len(restarted.result_cache)

    def test_stale_entries_are_not_persisted(self, tmp_path):
        db = _db()
        db.query(PeakCountQuery(2))
        db.query(SteepnessQuery(1.0))
        db.insert(k_peak_sequence([6.0], noise=0.0, name="staler"))
        db.query(SteepnessQuery(1.0))  # revalidated: warm again
        path = tmp_path / "cache.snap"
        assert save_result_cache(db, path) == 1  # only the warm entry


class TestInvalidation:
    def test_mutated_database_adopts_nothing(self, tmp_path):
        db = _db()
        db.query(PeakCountQuery(2))
        path = tmp_path / "cache.snap"
        save_result_cache(db, path)
        mutated = _db()
        mutated.insert(k_peak_sequence([6.0], noise=0.0, name="drift"))
        assert load_result_cache(mutated, path) == 0
        assert len(mutated.result_cache) == 0
        assert "cache-miss" in mutated.explain(PeakCountQuery(2))

    def test_different_names_adopt_nothing(self, tmp_path):
        # QueryMatch carries the sequence name, so a rebuild with the
        # same values but different names must not adopt the snapshot —
        # it would serve matches labelled with the old names.
        a = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        a.insert(k_peak_sequence([6.0, 18.0], noise=0.0, name="alice"))
        a.query(PeakCountQuery(2))
        path = tmp_path / "cache.snap"
        save_result_cache(a, path)
        b = SequenceDatabase(breaker=InterpolationBreaker(0.5))
        b.insert(k_peak_sequence([6.0, 18.0], noise=0.0, name="bob"))
        assert load_result_cache(b, path) == 0
        assert [m.name for m in b.query(PeakCountQuery(2))] == ["bob"]

    def test_different_raw_values_adopt_nothing(self, tmp_path):
        # The exemplar query grades archived raw bytes; a corpus whose
        # representations coincide but whose raw samples differ must
        # digest differently.
        import numpy as np

        from repro.core.sequence import Sequence

        def build(jitter):
            db = SequenceDatabase(breaker=InterpolationBreaker(10.0))
            values = np.array([0.0, 1.0, 2.0, 1.0, 0.0]) + jitter
            db.insert(Sequence.from_values(values, name="r"))
            return db

        a = build(0.0)
        a.query(PeakCountQuery(1))
        path = tmp_path / "cache.snap"
        save_result_cache(a, path)
        b = build(0.05)  # same breakpoints under the loose epsilon
        assert load_result_cache(b, path) == 0

    def test_different_config_adopts_nothing(self, tmp_path):
        db = _db()
        db.query(PeakCountQuery(2))
        path = tmp_path / "cache.snap"
        save_result_cache(db, path)
        other = SequenceDatabase(breaker=InterpolationBreaker(0.5), theta=0.2)
        other.insert_all(fever_corpus(n_two_peak=4, n_one_peak=3, n_three_peak=3))
        assert load_result_cache(other, path) == 0

    def test_corrupted_snapshot_fails_loudly(self, tmp_path):
        db = _db()
        db.query(PeakCountQuery(2))
        path = tmp_path / "cache.snap"
        save_result_cache(db, path)
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(StorageError, match="checksum"):
            load_result_cache(db, path)
        path.write_bytes(b"garbage")
        with pytest.raises(StorageError, match="magic"):
            load_result_cache(db, path)


class TestDigestAndCodec:
    def test_digest_tracks_content_not_history(self):
        # Two databases with the same live data but different mutation
        # histories digest identically — snapshots survive a rebuild
        # that took a different path to the same state.
        a = _db()
        b = _db()
        assert engine_state_digest(a) == engine_state_digest(b)
        victim = a.ids()[0]
        a.delete(victim)
        assert engine_state_digest(a) != engine_state_digest(b)
        b.delete(victim)
        assert engine_state_digest(a) == engine_state_digest(b)

    def test_snapshot_codec_roundtrips_infinities(self):
        payload = {
            "version": 1,
            "entries": [{"key": [["Q", 1.5, True], False], "amount": float("inf")}],
        }
        decoded = decode_cache_snapshot(encode_cache_snapshot(payload))
        assert decoded["entries"][0]["amount"] == float("inf")
        assert decoded["entries"][0]["key"] == [["Q", 1.5, True], False]
