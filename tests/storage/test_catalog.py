"""Tests for the multi-representation catalog."""

from __future__ import annotations

import pytest

from repro.core.errors import StorageError
from repro.segmentation import InterpolationBreaker
from repro.storage.catalog import RepresentationCatalog
from repro.workloads import goalpost_fever


@pytest.fixture
def catalog_with_variants():
    seq = goalpost_fever()
    coarse = InterpolationBreaker(2.0).represent(seq, curve_kind="regression")
    fine = InterpolationBreaker(0.2).represent(seq, curve_kind="regression")
    catalog = RepresentationCatalog()
    catalog.put(0, "coarse", coarse)
    catalog.put(0, "fine", fine)
    catalog.put(1, "coarse", coarse)
    return catalog


class TestCatalog:
    def test_put_and_get(self, catalog_with_variants):
        assert len(catalog_with_variants.get(0, "fine")) >= len(
            catalog_with_variants.get(0, "coarse")
        )

    def test_variants_listing(self, catalog_with_variants):
        assert catalog_with_variants.variants_of(0) == ["coarse", "fine"]
        assert catalog_with_variants.variants_of(1) == ["coarse"]
        assert catalog_with_variants.variants_of(99) == []

    def test_sequences_with(self, catalog_with_variants):
        assert catalog_with_variants.sequences_with("coarse") == [0, 1]
        assert catalog_with_variants.sequences_with("fine") == [0]

    def test_contains_and_len(self, catalog_with_variants):
        assert (0, "fine") in catalog_with_variants
        assert (1, "fine") not in catalog_with_variants
        assert len(catalog_with_variants) == 3

    def test_duplicate_rejected(self, catalog_with_variants):
        rep = catalog_with_variants.get(0, "coarse")
        with pytest.raises(StorageError):
            catalog_with_variants.put(0, "coarse", rep)

    def test_empty_variant_rejected(self, catalog_with_variants):
        rep = catalog_with_variants.get(0, "coarse")
        with pytest.raises(StorageError):
            catalog_with_variants.put(5, "", rep)

    def test_missing_rejected(self, catalog_with_variants):
        with pytest.raises(StorageError):
            catalog_with_variants.get(0, "bogus")

    def test_total_bytes(self, catalog_with_variants):
        total = catalog_with_variants.total_bytes()
        coarse_only = catalog_with_variants.total_bytes("coarse")
        fine_only = catalog_with_variants.total_bytes("fine")
        assert total == coarse_only + fine_only
        assert coarse_only > 0
