"""Tests for the shift/scale-invariant baseline ([GK95]/[ALSS95])."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.shift_scale import ShiftScaleMatcher, normalized_distance
from repro.core.errors import QueryError
from repro.core.sequence import Sequence
from repro.core.transformations import AmplitudeScale, AmplitudeShift
from repro.workloads import figure3_sequence


class TestNormalizedDistance:
    def test_shift_and_scale_invariant(self):
        base = figure3_sequence()
        moved = AmplitudeShift(25.0)(AmplitudeScale(3.0)(base))
        assert normalized_distance(base, moved) < 1e-9

    def test_different_shapes_distant(self):
        rng = np.random.default_rng(81)
        a = Sequence.from_values(np.sin(np.linspace(0, 6, 50)))
        b = Sequence.from_values(rng.normal(0, 1, 50))
        assert normalized_distance(a, b) > 0.5

    def test_metrics(self):
        a = figure3_sequence()
        b = AmplitudeShift(1.0)(a)
        assert normalized_distance(a, b, "linf") == pytest.approx(0.0, abs=1e-9)
        assert normalized_distance(a, b, "l2") == pytest.approx(0.0, abs=1e-9)
        with pytest.raises(QueryError):
            normalized_distance(a, b, "manhattan")

    def test_length_mismatch_rejected(self):
        with pytest.raises(QueryError):
            normalized_distance(figure3_sequence(49), figure3_sequence(48))


class TestShiftScaleMatcher:
    def test_accepts_amplitude_transforms(self):
        base = figure3_sequence()
        matcher = ShiftScaleMatcher(base, epsilon=0.01)
        assert matcher.matches(AmplitudeShift(-6.0)(base))
        assert matcher.matches(AmplitudeScale(1.8)(base))

    def test_still_fails_on_dilation(self):
        """The gap the paper fills: normalization does not make matching
        dilation-invariant (sample counts and positions change)."""
        base = figure3_sequence()
        matcher = ShiftScaleMatcher(base, epsilon=0.2)
        dilated_values = np.interp(
            np.linspace(0, 24, len(base)) / 2.0,  # half the support: contraction view
            base.times,
            base.values,
        )
        contracted = Sequence(base.times, dilated_values)
        assert not matcher.matches(contracted)

    def test_length_mismatch_rejected_quietly(self):
        base = figure3_sequence()
        matcher = ShiftScaleMatcher(base, epsilon=1.0)
        assert not matcher.matches(figure3_sequence(25))

    def test_filter(self):
        base = figure3_sequence()
        matcher = ShiftScaleMatcher(base, epsilon=0.01)
        shifted = AmplitudeShift(5.0)(base)
        rng = np.random.default_rng(82)
        noise = Sequence(base.times, rng.normal(0, 1, len(base)))
        assert matcher.filter([shifted, noise]) == [shifted]

    def test_negative_epsilon_rejected(self):
        with pytest.raises(QueryError):
            ShiftScaleMatcher(figure3_sequence(), -0.5)
