"""Tests for the DFT F-index baseline, including the lower-bounding
lemma that guarantees no false dismissals."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dft import (
    FIndex,
    SubsequenceIndex,
    dft_features,
    dominant_frequency,
    feature_distance,
)
from repro.core.errors import QueryError
from repro.core.sequence import Sequence
from repro.core.transformations import TimeScale


class TestFeatures:
    def test_feature_vector_shape(self):
        feats = dft_features(np.arange(32, dtype=float), k=3)
        assert feats.shape == (6,)

    def test_k_capped_at_length(self):
        feats = dft_features(np.arange(4, dtype=float), k=100)
        assert feats.shape == (8,)

    def test_bad_k_rejected(self):
        with pytest.raises(QueryError):
            dft_features(np.zeros(8), k=0)

    def test_full_transform_is_isometry(self):
        """Parseval with the 1/sqrt(n) convention."""
        rng = np.random.default_rng(71)
        values = rng.normal(0, 1, 64)
        coeffs = np.fft.fft(values) / np.sqrt(64)
        assert np.dot(values, values) == pytest.approx(float(np.sum(np.abs(coeffs) ** 2)))

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(min_value=-50, max_value=50, allow_nan=False), min_size=8, max_size=8),
        st.lists(st.floats(min_value=-50, max_value=50, allow_nan=False), min_size=8, max_size=8),
        st.integers(min_value=1, max_value=4),
    )
    def test_lower_bounding_lemma(self, a, b, k):
        """Feature distance never exceeds true Euclidean distance."""
        fa = dft_features(np.asarray(a), k)
        fb = dft_features(np.asarray(b), k)
        true = float(np.linalg.norm(np.asarray(a) - np.asarray(b)))
        assert feature_distance(fa, fb) <= true + 1e-9

    def test_feature_shape_mismatch_rejected(self):
        with pytest.raises(QueryError):
            feature_distance(np.zeros(4), np.zeros(6))


class TestFIndex:
    def make_corpus(self, n=20, length=64, seed=72):
        rng = np.random.default_rng(seed)
        return [Sequence.from_values(np.cumsum(rng.normal(0, 1, length))) for __ in range(n)]

    def test_no_false_dismissals(self):
        corpus = self.make_corpus()
        index = FIndex(k=4)
        for i, seq in enumerate(corpus):
            index.add(i, seq)
        query = corpus[3]
        for epsilon in (0.5, 2.0, 10.0):
            exact = [
                i
                for i, seq in enumerate(corpus)
                if float(np.linalg.norm(seq.values - query.values)) <= epsilon
            ]
            assert index.query(query, epsilon) == exact
            # Candidates are a superset of true hits.
            assert set(exact) <= set(index.candidates(query, epsilon))

    def test_candidate_filter_prunes(self):
        corpus = self.make_corpus(n=50)
        index = FIndex(k=2)
        for i, seq in enumerate(corpus):
            index.add(i, seq)
        candidates = index.candidates(corpus[0], epsilon=1.0)
        assert len(candidates) < len(corpus)

    def test_length_mismatch_rejected(self):
        index = FIndex()
        index.add(0, Sequence.from_values(np.zeros(16)))
        with pytest.raises(QueryError):
            index.add(1, Sequence.from_values(np.zeros(8)))

    def test_duplicate_id_rejected(self):
        index = FIndex()
        index.add(0, Sequence.from_values(np.zeros(16)))
        with pytest.raises(QueryError):
            index.add(0, Sequence.from_values(np.ones(16)))


class TestDominantFrequency:
    def test_pure_tone(self):
        t = np.arange(128, dtype=float)
        seq = Sequence(t, np.sin(2 * np.pi * t / 16))
        assert dominant_frequency(seq) == pytest.approx(1.0 / 16.0, rel=0.05)

    def test_dilation_changes_dominant_frequency(self):
        """The paper's Section 3 argument: main frequencies are not
        dilation-invariant, so frequency-domain similarity misses
        dilated/contracted variants."""
        t = np.arange(128, dtype=float)
        seq = Sequence(t, np.sin(2 * np.pi * t / 16))
        dilated = TimeScale(2.0)(seq)
        f_base = dominant_frequency(seq)
        f_dilated = dominant_frequency(dilated)
        assert f_dilated == pytest.approx(f_base / 2.0, rel=0.1)
        assert abs(f_dilated - f_base) / f_base > 0.4


class TestSubsequenceIndex:
    def test_exact_window_found(self):
        rng = np.random.default_rng(73)
        seq = Sequence.from_values(np.cumsum(rng.normal(0, 1, 100)))
        index = SubsequenceIndex(window=16, k=3)
        index.add(0, seq)
        pattern = seq.subsequence(20, 35).shifted_to_origin()
        hits = index.query(pattern, epsilon=1e-9)
        assert (0, 20) in hits

    def test_window_count(self):
        seq = Sequence.from_values(np.zeros(50))
        index = SubsequenceIndex(window=10)
        index.add(0, seq)
        assert index.window_count() == 41

    def test_no_false_dismissals_on_windows(self):
        rng = np.random.default_rng(74)
        seq = Sequence.from_values(np.cumsum(rng.normal(0, 1, 80)))
        index = SubsequenceIndex(window=8, k=2)
        index.add(0, seq)
        pattern = Sequence.from_values(rng.normal(0, 1, 8))
        epsilon = 5.0
        expected = []
        for offset in range(len(seq) - 8 + 1):
            window = seq.values[offset : offset + 8]
            if float(np.linalg.norm(window - pattern.values)) <= epsilon:
                expected.append((0, offset))
        assert index.query(pattern, epsilon) == expected

    def test_bad_pattern_length_rejected(self):
        index = SubsequenceIndex(window=8)
        index.add(0, Sequence.from_values(np.zeros(20)))
        with pytest.raises(QueryError):
            index.query(Sequence.from_values(np.zeros(9)), 1.0)

    def test_short_sequence_rejected(self):
        index = SubsequenceIndex(window=30)
        with pytest.raises(QueryError):
            index.add(0, Sequence.from_values(np.zeros(10)))
