"""Tests for value-based epsilon matching (the Figure 1 baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.euclidean import EpsilonMatcher, l2_distance, linf_distance
from repro.core.errors import QueryError
from repro.core.sequence import Sequence
from repro.workloads import figure3_sequence, figure4_fluctuated, figure5_variants


class TestDistances:
    def test_linf(self):
        a = Sequence.from_values([0.0, 0.0, 0.0])
        b = Sequence.from_values([1.0, -3.0, 2.0])
        assert linf_distance(a, b) == 3.0

    def test_l2(self):
        a = Sequence.from_values([0.0, 0.0])
        b = Sequence.from_values([3.0, 4.0])
        assert l2_distance(a, b) == 5.0

    def test_length_mismatch_rejected(self):
        a = Sequence.from_values([0.0, 0.0])
        b = Sequence.from_values([0.0])
        with pytest.raises(QueryError):
            linf_distance(a, b)

    def test_symmetry(self):
        rng = np.random.default_rng(61)
        a = Sequence.from_values(rng.normal(0, 1, 20))
        b = Sequence.from_values(rng.normal(0, 1, 20))
        assert linf_distance(a, b) == linf_distance(b, a)
        assert l2_distance(a, b) == l2_distance(b, a)

    def test_identity(self):
        a = Sequence.from_values([1.0, 2.0])
        assert linf_distance(a, a) == 0.0
        assert l2_distance(a, a) == 0.0


class TestEpsilonMatcher:
    def test_band_acceptance(self):
        exemplar = figure3_sequence()
        matcher = EpsilonMatcher(exemplar, epsilon=1.0)
        assert matcher.matches(exemplar)
        assert matcher.matches(figure4_fluctuated(delta=1.0))

    def test_figure5_variants_all_rejected(self):
        """The paper's central negative result for the value-based notion.

        Time alignment reads both the exemplar and the candidate on the
        same 24-hour clock, as the paper's temperature grids do.
        """
        exemplar = figure3_sequence()
        matcher = EpsilonMatcher(exemplar, epsilon=1.0, align="time")
        for label, __, variant in figure5_variants(exemplar):
            assert not matcher.matches(variant), f"{label} should not match value-wise"

    def test_time_alignment_accepts_unmoved_copy(self):
        exemplar = figure3_sequence()
        matcher = EpsilonMatcher(exemplar, epsilon=1.0, align="time")
        assert matcher.matches(figure4_fluctuated(delta=1.0))

    def test_bad_align_rejected(self):
        with pytest.raises(QueryError):
            EpsilonMatcher(figure3_sequence(), 1.0, align="dtw")

    def test_metric_choice(self):
        exemplar = Sequence.from_values(np.zeros(100))
        near = Sequence.from_values(np.full(100, 0.2))
        assert EpsilonMatcher(exemplar, 0.5, metric="linf").matches(near)
        # Accumulated L2 distance is 2.0 > 0.5.
        assert not EpsilonMatcher(exemplar, 0.5, metric="l2").matches(near)

    def test_filter(self):
        exemplar = figure3_sequence()
        matcher = EpsilonMatcher(exemplar, epsilon=0.5)
        candidates = [exemplar, figure4_fluctuated(delta=0.4), figure4_fluctuated(delta=5.0, seed=9)]
        kept = matcher.filter(candidates)
        assert exemplar in kept
        assert len(kept) <= 2

    def test_invalid_parameters(self):
        with pytest.raises(QueryError):
            EpsilonMatcher(figure3_sequence(), -1.0)
        with pytest.raises(QueryError):
            EpsilonMatcher(figure3_sequence(), 1.0, metric="cosine")
