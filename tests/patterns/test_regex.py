"""Tests for the symbol-regex engine, including equivalence with
Python's ``re`` on a translated alphabet."""

from __future__ import annotations

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import PatternSyntaxError
from repro.patterns.regex import TWO_PEAKS, SymbolPattern


class TestFullmatch:
    @pytest.mark.parametrize(
        "pattern,accepted,rejected",
        [
            ("+", ["+"], ["-", "0", "++", ""]),
            ("+-", ["+-"], ["-+", "+", "+-0"]),
            ("+*", ["", "+", "+++"], ["-", "+-"]),
            ("+^+", ["+", "++"], ["", "-"]),
            ("+?", ["", "+"], ["++"]),
            ("(+|-)0", ["+0", "-0"], ["00", "+-"]),
            (".", ["+", "-", "0"], ["", "+-"]),
            ("[+0]", ["+", "0"], ["-"]),
            ("[^0]", ["+", "-"], ["0"]),
            ("+{2}", ["++"], ["+", "+++"]),
            ("+{1,2}", ["+", "++"], ["", "+++"]),
            ("+{2,}", ["++", "++++"], ["+", ""]),
            ("()", [""], ["+"]),
            ("(+-)^+", ["+-", "+-+-"], ["+", "+-+"]),
        ],
    )
    def test_cases(self, pattern, accepted, rejected):
        compiled = SymbolPattern.compile(pattern)
        for s in accepted:
            assert compiled.fullmatch(s), f"{pattern!r} should accept {s!r}"
        for s in rejected:
            assert not compiled.fullmatch(s), f"{pattern!r} should reject {s!r}"

    def test_whitespace_ignored(self):
        assert SymbolPattern.compile("( + | - ) 0").fullmatch("+0")

    def test_escaped_literals(self):
        assert SymbolPattern.compile("\\+\\-").fullmatch("+-")

    def test_compile_idempotent(self):
        p = SymbolPattern.compile("+")
        assert SymbolPattern.compile(p) is p


class TestGoalpostPattern:
    @pytest.mark.parametrize(
        "symbols,matches",
        [
            ("+-+-", True),  # bare two peaks
            ("0+-+-0", True),  # flats around
            ("-+-+-", True),  # falling prefix
            ("+-", False),  # one peak
            ("+-+-+-", False),  # three peaks
            ("++", False),
            ("", False),
            ("+0-+-", True),  # plateau at the first peak's top is still one peak
            ("+-0+-", True),  # flat valley between the peaks
        ],
    )
    def test_two_peak_language(self, symbols, matches):
        compiled = SymbolPattern.compile(TWO_PEAKS)
        assert compiled.fullmatch(symbols) == matches

    def test_paper_written_form(self):
        # The exact query string from the paper, with '^+' for one-or-more.
        compiled = SymbolPattern.compile("(0|-)* + (0|-)^+ + (0|-)*")
        assert compiled.fullmatch("0+-+0")
        assert not compiled.fullmatch("0+0")


class TestSearchAndFinditer:
    def test_finditer_positions(self):
        compiled = SymbolPattern.compile("+-")
        assert list(compiled.finditer("+-0+-")) == [(0, 2), (3, 5)]

    def test_longest_match_reported(self):
        compiled = SymbolPattern.compile("+^+")
        assert list(compiled.finditer("+++")) == [(0, 3), (1, 3), (2, 3)]

    def test_search_first(self):
        compiled = SymbolPattern.compile("-0")
        assert compiled.search("++-0-0") == (2, 4)
        assert compiled.search("+++") is None

    def test_match_prefix(self):
        compiled = SymbolPattern.compile("+*")
        assert compiled.match_prefix("++-") == 2
        assert compiled.match_prefix("-") == 0  # empty prefix matches
        assert SymbolPattern.compile("-").match_prefix("+") is None

    def test_zero_length_matches_suppressed(self):
        compiled = SymbolPattern.compile("+*")
        spans = list(compiled.finditer("-0-"))
        assert spans == []


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "(",
            ")",
            "(+",
            "+)",
            "*",
            "?",
            "+^",
            "+^-",
            "[",
            "[]",
            "[+",
            "+{",
            "+{}",
            "+{2,1}",
            "+{a}",
            "\\",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(PatternSyntaxError):
            SymbolPattern.compile(bad)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(PatternSyntaxError):
            SymbolPattern.compile("+)+")


class TestEquivalenceWithRe:
    """Translate to Python re over letters and compare languages."""

    TRANSLATION = str.maketrans({"+": "u", "-": "d", "0": "z"})

    def to_re(self, pattern: str) -> str:
        # '^+' is our one-or-more operator; protect it before the literal
        # '+' (and the other symbols) get renamed to letters.
        protected = pattern.replace(" ", "").replace("^+", "\x01")
        out = []
        for ch in protected:
            if ch == "+":
                out.append("u")
            elif ch == "-":
                out.append("d")
            elif ch == "0":
                out.append("z")
            elif ch == "\x01":
                out.append("+")
            else:
                out.append(ch)
        return "".join(out)

    # Patterns built from a safe generative grammar subset.
    @settings(max_examples=80, deadline=None)
    @given(
        pattern=st.sampled_from(
            [
                "(0|-)*+(0|-)^+ +(0|-)*",
                "(+|-)^+",
                "0*+0*",
                "(+-)^+0?",
                "(+|0)*-",
                "+{1,3}-",
                ".^+",
                "(.0)*",
                "[+0]^+-?",
                "[^-]*",
            ]
        ),
        symbols=st.text(alphabet="+-0", max_size=12),
    )
    def test_fullmatch_agrees(self, pattern, symbols):
        ours = SymbolPattern.compile(pattern).fullmatch(symbols)
        # '^+' -> '+' translation happens in to_re; map symbols too.
        theirs = re.fullmatch(self.to_re(pattern), symbols.translate(self.TRANSLATION)) is not None
        assert ours == theirs, f"pattern={pattern!r} symbols={symbols!r}"
