"""Tests for the tabulated DFA compiler (subset construction)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.errors import PatternSyntaxError
from repro.patterns.automata import SLOPE_ALPHABET, compile_table
from repro.patterns.regex import TWO_PEAKS, SymbolPattern

PATTERNS = [
    TWO_PEAKS,
    "(0|-)* + (0|-)^+ + (0|-)*",
    ".*",
    ".*+.*",
    "[^0]{2,4}",
    "(+|-)?0*",
    "+^+-",
    "\\+{2}",
    "",
    "0{3,}",
    "(+-)^+0?",
    "[+0]* - [+0]*",
]


def all_strings(max_length: int):
    for length in range(max_length + 1):
        for chars in itertools.product(SLOPE_ALPHABET, repeat=length):
            yield "".join(chars)


class TestTableAgreesWithNfa:
    @pytest.mark.parametrize("source", PATTERNS)
    def test_exhaustive_parity_up_to_length_five(self, source):
        pattern = SymbolPattern(source)
        table = compile_table(pattern)
        for text in all_strings(5):
            assert table.fullmatch(text) == pattern.fullmatch(text), (source, text)

    def test_goalpost_examples(self):
        table = compile_table(TWO_PEAKS)
        assert table.fullmatch("+-+-")
        assert table.fullmatch("0+-0+0")
        assert not table.fullmatch("+-")
        assert not table.fullmatch("+-+-+-")


class TestTableStructure:
    def test_dead_state_is_absorbing_and_rejecting(self):
        table = compile_table("+-")
        assert not table.accepting[table.dead]
        np.testing.assert_array_equal(
            table.table[table.dead], np.full(len(table.alphabet), table.dead)
        )

    def test_dead_state_exists_even_when_unreachable(self):
        # ".*" accepts every continuation, so subset construction never
        # reaches the empty state set; one is appended for the callers.
        table = compile_table(".*")
        assert 0 <= table.dead < table.n_states
        assert not table.accepting[table.dead]

    def test_symbols_outside_alphabet_reject(self):
        table = compile_table(".*")
        assert table.fullmatch("+-0")
        assert not table.fullmatch("x")

    def test_state_budget_enforced(self):
        with pytest.raises(PatternSyntaxError):
            compile_table("+*", max_states=1)

    def test_bad_alphabet_rejected(self):
        with pytest.raises(PatternSyntaxError):
            compile_table("+", alphabet="")
        with pytest.raises(PatternSyntaxError):
            compile_table("+", alphabet="++0")
