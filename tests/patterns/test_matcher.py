"""Tests for pattern-vs-representation matching."""

from __future__ import annotations

import pytest

from repro.patterns.matcher import find_pattern_spans, matches_pattern
from repro.patterns.regex import TWO_PEAKS
from repro.segmentation import InterpolationBreaker
from repro.workloads import k_peak_sequence


@pytest.fixture
def rep_two_peaks():
    seq = k_peak_sequence([6.0, 18.0], noise=0.0)
    return InterpolationBreaker(0.5).represent(seq, curve_kind="regression")


@pytest.fixture
def rep_three_peaks():
    seq = k_peak_sequence([4.0, 12.0, 20.0], noise=0.0)
    return InterpolationBreaker(0.5).represent(seq, curve_kind="regression")


class TestMatchesPattern:
    def test_two_peaks_match(self, rep_two_peaks):
        assert matches_pattern(rep_two_peaks, TWO_PEAKS, theta=0.05)

    def test_three_peaks_rejected(self, rep_three_peaks):
        assert not matches_pattern(rep_three_peaks, TWO_PEAKS, theta=0.05)

    def test_uncollapsed_option(self, rep_two_peaks):
        # Without collapsing, the rise may span several '+' symbols, so
        # the strict single-'+' pattern can fail; the pattern written
        # with '^+' postfixes still matches.
        robust = "(0|-)* +^+ (0|-)^+ +^+ (0|-)*"
        assert matches_pattern(rep_two_peaks, robust, theta=0.05, collapse_runs=False)


class TestFindSpans:
    def test_spans_map_to_segments(self, rep_two_peaks):
        spans = find_pattern_spans(rep_two_peaks, "+^+ (0|-)^+", theta=0.05)
        assert spans
        for span in spans:
            assert span.first_segment <= span.last_segment
            assert span.start_time < span.end_time
            assert len(span.segments) == span.last_segment - span.first_segment + 1

    def test_rise_fall_rise_span_present(self, rep_three_peaks):
        spans = find_pattern_spans(rep_three_peaks, "+^+ (0|-)^+ +^+", theta=0.05)
        assert spans

    def test_no_match_no_spans(self, rep_two_peaks):
        # Four alternations never appear in a two-peak sequence.
        spans = find_pattern_spans(rep_two_peaks, "(+^+ -^+){4}", theta=0.05)
        assert spans == []


class TestMatchesPatternMany:
    def test_agrees_with_scalar_matcher(self):
        from repro.patterns import matches_pattern, matches_pattern_many
        from repro.segmentation import InterpolationBreaker
        from repro.workloads import fever_corpus

        breaker = InterpolationBreaker(0.5)
        reps = [
            breaker.represent(seq, curve_kind="regression")
            for seq in fever_corpus(n_two_peak=3, n_one_peak=2, n_three_peak=2)
        ]
        pattern = "(0|-)* + (0|-)^+ + (0|-)*"
        batch = matches_pattern_many(reps, pattern)
        assert batch == [matches_pattern(rep, pattern) for rep in reps]
        assert any(batch) and not all(batch)
