"""Tests for the slope-sign alphabet."""

from __future__ import annotations

import pytest

from repro.core.errors import PatternSyntaxError
from repro.patterns.alphabet import FALLING, FLAT, RISING, classify_slope, validate_symbols


class TestClassify:
    def test_zero_theta(self):
        assert classify_slope(0.5) == RISING
        assert classify_slope(-0.5) == FALLING
        assert classify_slope(0.0) == FLAT

    def test_theta_band(self):
        assert classify_slope(0.05, theta=0.1) == FLAT
        assert classify_slope(-0.05, theta=0.1) == FLAT
        assert classify_slope(0.15, theta=0.1) == RISING
        assert classify_slope(-0.15, theta=0.1) == FALLING

    def test_boundary_is_flat(self):
        assert classify_slope(0.1, theta=0.1) == FLAT
        assert classify_slope(-0.1, theta=0.1) == FLAT

    def test_negative_theta_rejected(self):
        with pytest.raises(PatternSyntaxError):
            classify_slope(1.0, theta=-0.1)


class TestValidate:
    def test_valid_passthrough(self):
        assert validate_symbols("+-0") == "+-0"
        assert validate_symbols("") == ""

    def test_invalid_symbol_rejected(self):
        with pytest.raises(PatternSyntaxError):
            validate_symbols("+-x0")


class TestScalarVectorLockstep:
    def test_classify_slope_agrees_with_classify_slopes(self):
        """The scalar fast path and the vectorized single source must
        apply identical comparisons, including at the theta boundary."""
        import numpy as np

        from repro.core.representation import classify_slopes, decode_symbols
        from repro.patterns.alphabet import classify_slope

        rng = np.random.default_rng(23)
        for theta in [0.0, 0.05, 1.0]:
            slopes = list(rng.uniform(-3, 3, 200)) + [
                theta, -theta, np.nextafter(theta, 10), np.nextafter(-theta, -10), 0.0
            ]
            scalar = "".join(classify_slope(float(s), theta) for s in slopes)
            vector = decode_symbols(classify_slopes(slopes, theta))
            assert scalar == vector
