"""Delta revalidation: patched cached answers equal cold re-runs, always.

The acceptance contract of the journal-backed cache: after any
interleaving of insert / append / delete, a stale cached answer that is
delta-revalidated (only the journal-dirty ids re-graded) must be
byte-identical to evaluating the query from scratch — for every query
type, every shard count, and with the parallel executor.  When the
journal has compacted past the entry, the cache must fall back to a
full re-grade and still be right.
"""

from __future__ import annotations

import pytest

from repro.query import (
    ExemplarQuery,
    IntervalQuery,
    PatternQuery,
    PeakCountQuery,
    SequenceDatabase,
    ShapeQuery,
    SteepnessQuery,
)
from repro.segmentation.online import IncrementalRegressionBreaker
from repro.workloads import fever_corpus, goalpost_fever, k_peak_sequence

GOALPOST = "(0|-)* + (0|-)^+ + (0|-)*"
SHARD_COUNTS = [None, 2, 7]


def _fever_db(n_shards, max_workers=None):
    db = SequenceDatabase(
        breaker=IncrementalRegressionBreaker(0.5),
        n_shards=n_shards,
        max_workers=max_workers,
    )
    db.insert_all(fever_corpus(n_two_peak=6, n_one_peak=4, n_three_peak=4))
    return db


def _queries():
    return [
        PatternQuery(GOALPOST),
        PatternQuery("(0|-)* + (0|-|\\+)*", collapse_runs=False),
        PeakCountQuery(2, count_tolerance=1),
        IntervalQuery(12.0, 2.0),
        SteepnessQuery(3.0, slope_tolerance=1.5),
        ShapeQuery(goalpost_fever(), duration_tolerance=0.5, amplitude_tolerance=0.5),
        ExemplarQuery(k_peak_sequence([6.0, 18.0], noise=0.0), epsilon=0.5),
    ]


def _mutate_script(db):
    """Interleaved insert / append / delete steps, yielding after each."""
    yield "insert", db.insert(k_peak_sequence([7.0, 19.0], noise=0.0, name="fresh"))
    victims = db.ids()[1:3]
    db.delete_many(victims)
    yield "delete", victims
    appended = db.ids()[0]
    db.append(appended, [1.5, 9.0, 1.5])
    yield "append", appended
    yield "insert_all", db.insert_all(
        fever_corpus(n_two_peak=1, n_one_peak=1, n_three_peak=0)
    )
    db.delete(db.ids()[-1])
    yield "delete-last", None
    db.append(db.ids()[2], [2.0, 2.5])
    yield "append-2", None


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
class TestDeltaEqualsCold:
    def test_interleaved_mutations_all_query_types(self, n_shards):
        db = _fever_db(n_shards)
        queries = _queries()
        # Warm every entry.
        for query in queries:
            for include_approximate in (True, False):
                db.query(query, include_approximate)
        for step, __ in _mutate_script(db):
            for query in queries:
                for include_approximate in (True, False):
                    delta = db.query(query, include_approximate)
                    cold = db.query(query, include_approximate, cache=False)
                    assert delta == cold, f"{type(query).__name__} diverged after {step}"
        # Every stale refresh went through the journal, never a fallback.
        stats = db.result_cache.stats()
        assert stats["delta_hits"] > 0
        assert stats["delta_fallbacks"] == 0

    def test_parallel_executor_agrees(self, n_shards):
        if n_shards is None:
            pytest.skip("workers only scatter over shards")
        serial = _fever_db(n_shards)
        parallel = _fever_db(n_shards, max_workers=4)
        query = PeakCountQuery(2, count_tolerance=1)
        for db in (serial, parallel):
            db.query(query)
            db.insert(k_peak_sequence([6.0, 18.0], noise=0.0, name="par"))
            db.append(db.ids()[0], [3.0, 8.0])
        assert serial.query(query) == parallel.query(query)
        assert parallel.result_cache.delta_hits > 0


class TestDeltaMechanics:
    def test_delta_skips_clean_sequences(self):
        from repro.query.queries import PeakCountQuery as Base

        class CountingQuery(Base):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.graded_ids = []

            def _vector_filter(self, database, store, candidate_ids):
                if candidate_ids is not None:
                    self.graded_ids.extend(candidate_ids)
                else:
                    self.graded_ids.extend(int(s) for s in store.sequence_ids)
                return super()._vector_filter(database, store, candidate_ids)

        db = _fever_db(None)
        query = CountingQuery(2, count_tolerance=1)
        db.query(query)
        full_count = len(query.graded_ids)
        assert full_count == len(db)
        new_id = db.insert(k_peak_sequence([6.0, 18.0], noise=0.0, name="one"))
        query.graded_ids.clear()
        db.query(query)
        assert query.graded_ids == [new_id]  # only the dirty id re-graded

    def test_journal_compaction_falls_back_to_full_regrade(self):
        db = _fever_db(None)
        query = PeakCountQuery(2, count_tolerance=1)
        db.query(query)
        db.store.journal.max_entries = 2
        for i in range(5):
            db.insert(k_peak_sequence([6.0 + i], noise=0.0, name=f"c{i}"))
        delta = db.query(query)
        assert delta == db.query(query, cache=False)
        stats = db.result_cache.stats()
        assert stats["delta_fallbacks"] == 1
        assert stats["revalidations"] == 1
        # The refreshed entry is a plain hit afterwards.
        db.query(query)
        assert db.result_cache.hits >= 1

    def test_bulk_dirty_set_falls_back_to_full_regrade(self):
        # Doubling the corpus dirties more than a quarter of the store:
        # a subset re-grade would cost more than starting over, so the
        # revalidation runs the stages in full (counted as a fallback)
        # and still answers identically.
        db = _fever_db(None)
        query = PeakCountQuery(2, count_tolerance=1)
        db.query(query)
        db.insert_all(fever_corpus(n_two_peak=6, n_one_peak=4, n_three_peak=4))
        assert db.query(query) == db.query(query, cache=False)
        stats = db.result_cache.stats()
        assert stats["delta_fallbacks"] == 1
        assert stats["delta_hits"] == 0
        db.query(query)
        assert db.result_cache.hits >= 1  # refreshed in place

    def test_config_change_bypasses_delta(self):
        db = _fever_db(None)
        query = ShapeQuery(goalpost_fever(), duration_tolerance=0.5, amplitude_tolerance=0.5)
        db.query(query)
        db.breaker = IncrementalRegressionBreaker(2.0)
        assert db.query(query) == db.query(query, cache=False)
        stats = db.result_cache.stats()
        assert stats["revalidations"] == 0  # recomputed, not revalidated

    def test_explain_reports_dirty_count(self):
        db = _fever_db(2)
        query = SteepnessQuery(1.0)
        db.query(query)
        db.insert_all(
            [
                k_peak_sequence([6.0], noise=0.0, name="a"),
                k_peak_sequence([7.0], noise=0.0, name="b"),
            ]
        )
        db.delete(db.ids()[0])
        # Three journal-dirty ids, but one is the deleted sequence: the
        # verdict counts the two a revalidation would actually re-grade.
        assert "cache: delta-revalidated (2 dirty)" in db.explain(query)
        db.query(query)
        assert "cache-hit" in db.explain(query)

    def test_explain_matches_the_fallback_decision(self):
        # On a tiny database one dirty id already exceeds the 4x
        # threshold: explain must report cache-miss (the evaluation will
        # run a full-re-grade fallback), never a delta it won't take.
        db = SequenceDatabase(breaker=IncrementalRegressionBreaker(0.5))
        db.insert(k_peak_sequence([6.0, 18.0], noise=0.0, name="a"))
        db.insert(k_peak_sequence([7.0], noise=0.0, name="b"))
        query = PeakCountQuery(2, count_tolerance=1)
        db.query(query)
        db.append(db.ids()[0], [1.0, 9.0])
        assert "cache-miss" in db.explain(query)
        assert "delta-revalidated" not in db.explain(query)
        db.query(query)
        stats = db.result_cache.stats()
        assert stats["delta_fallbacks"] == 1
        assert stats["delta_hits"] == 0

    def test_insert_then_delete_nets_out(self):
        # A sequence inserted and deleted between lookups is dirty but
        # dead; the patched answer must simply not contain it.
        db = _fever_db(None)
        query = PeakCountQuery(2, count_tolerance=1)
        before = db.query(query)
        doomed = db.insert(k_peak_sequence([6.0, 18.0], noise=0.0, name="doomed"))
        db.delete(doomed)
        after = db.query(query)
        assert after == before
        assert db.result_cache.delta_hits == 1
